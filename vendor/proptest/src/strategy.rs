//! The `Strategy` trait and the combinators the workspace uses: `prop_map`,
//! boxing, unions (`prop_oneof!`), tuples, and integer/float ranges.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests. Unlike real proptest there is
/// no value tree / shrinking: `sample` draws one concrete value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Trait object form, produced by [`Strategy::boxed`] and `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Equal-weight union of strategies; backs `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::SampleUniform + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
