//! Offline API-compatible subset of `proptest`.
//!
//! Implements the surface the workspace's property tests use — `proptest!`,
//! `Strategy`, `any`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, tuple/range strategies, `ProptestConfig` and the
//! `prop_assert*` macros — as plain random sampling without shrinking
//! (`max_shrink_iters` is accepted and ignored). Case generation is
//! deterministic: every run uses a fixed base seed, so a failing case
//! reproduces on the next run. The case count honours the `PROPTEST_CASES`
//! environment variable as an upper bound (default cap 64) to keep
//! `cargo test -q` fast.

pub mod strategy;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),+ $(,)?) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)` — vectors of strategy-generated
    /// elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }

    /// `prop::sample::select(values)` — pick uniformly from a fixed set.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Default upper bound on cases per property when `PROPTEST_CASES` is
    /// unset, keeping the full suite inside a `cargo test -q` budget.
    pub const DEFAULT_MAX_CASES: u32 = 64;

    /// RNG handed to strategies. Deterministically seeded so failures
    /// reproduce run-to-run.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        pub fn deterministic(salt: u64) -> Self {
            TestRng {
                inner: StdRng::seed_from_u64(0x70726F70_74657374 ^ salt),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Subset of proptest's run configuration. `max_shrink_iters`, `fork`
    /// and `timeout` are accepted for source compatibility; this
    /// implementation never shrinks, forks or times out.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub fork: bool,
        pub timeout: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: DEFAULT_MAX_CASES,
                max_shrink_iters: 0,
                fork: false,
                timeout: 0,
            }
        }
    }

    impl ProptestConfig {
        /// Cases to actually run: the configured count, clamped by the
        /// `PROPTEST_CASES` environment variable when it is set.
        pub fn effective_cases(&self) -> u32 {
            let env_cap = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok());
            match env_cap {
                Some(cap) => self.cases.min(cap.max(1)),
                None => self.cases,
            }
        }
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assertion macros: plain asserts (no shrink machinery to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Union of same-valued strategies, each picked with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` test-definition macro: each `fn` becomes a `#[test]` that
/// samples its strategies `config.effective_cases()` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                // Salt the RNG with the test name so sibling properties do
                // not replay identical streams.
                let salt = {
                    let name = stringify!($name);
                    name.bytes().fold(0u64, |h, b| {
                        h.wrapping_mul(0x100000001b3).wrapping_add(b as u64)
                    })
                };
                let mut rng = $crate::test_runner::TestRng::deterministic(salt);
                $(let $arg = $strategy;)+
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut rng);)+
                    let run = move || $body;
                    if let Err(panic) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest: property '{}' failed on case {}/{} (deterministic seed; rerun reproduces)",
                            stringify!($name), case + 1, cases,
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
