//! Offline API-compatible subset of `rand` 0.8.
//!
//! The container has no crates.io access, so this crate implements the part
//! of the `rand` API the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges and `Rng::gen_bool` — on top of
//! a xoshiro256** generator seeded through splitmix64. The workloads only
//! need a deterministic, well-mixed stream, not the exact ChaCha12 sequence
//! of the real `StdRng`; seeds produce stable streams across runs and
//! platforms, which is what the golden-model and determinism tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A value in `[0, 1)` built from the top 53 bits of a `u64`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi]` (both ends inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draw uniformly from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty => $uty:ty),+ $(,)?) => {$(
        impl SampleUniform for $ty {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $uty).wrapping_sub(lo as $uty) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                // Modulo draw: the tiny bias is irrelevant for workload
                // synthesis and property-test case generation.
                let v = rng.next_u64() % (span + 1);
                lo.wrapping_add(v as $ty)
            }
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                Self::sample_inclusive(rng, lo, hi - 1)
            }
        }
    )+};
}

impl_uniform_int!(
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
);

macro_rules! impl_uniform_float {
    ($($ty:ty),+) => {$(
        impl SampleUniform for $ty {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_exclusive(rng, lo, hi)
            }
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + unit_f64(rng.next_u64()) as $ty * (hi - lo)
            }
        }
    )+};
}

impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&v));
            let f = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let u = r.gen_range(1..=4usize);
            assert!((1..=4).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
