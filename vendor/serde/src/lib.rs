//! Offline stand-in for `serde` (+ `serde_json`): a real, minimal
//! self-describing serialization framework.
//!
//! The first bootstrap shipped this crate as a pair of no-op marker traits so
//! that workspace types could keep their `#[derive(Serialize, Deserialize)]`
//! annotations without crates.io access.  The experiment engine now actually
//! serialises data (JSON report backends, the on-disk simulation point
//! cache), so the stub grew into a miniserde-style implementation:
//!
//! * [`value::Value`] — a self-describing data model (null / bool / integers
//!   / float / string / sequence / map);
//! * [`Serialize`] / [`Deserialize`] — conversions to and from [`value::Value`],
//!   generated for workspace types by the (now real) `serde_derive` macros;
//! * [`json`] — a JSON writer and recursive-descent parser over
//!   [`value::Value`], standing in for `serde_json`.
//!
//! Design notes:
//!
//! * Integers are kept as `U64`/`I64` (never routed through `f64`), so `u64`
//!   counters round-trip bit-identically — the point cache relies on this.
//! * `f64` values are written with Rust's shortest round-trip `Display`
//!   formatting, so finite floats also round-trip exactly.
//! * Maps preserve insertion order, which makes [`value::Value::canonical`]
//!   a stable fingerprint input for content-addressed caching.
//!
//! The API intentionally differs from real serde's visitor architecture: it
//! is the smallest surface that supports the workspace.  Swapping in the real
//! crates (see `vendor/README.md`) requires porting the few call sites of
//! `serde::json::*` to `serde_json::*`.

pub mod value {
    use std::fmt;

    /// Self-describing serialized data.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null` (also the encoding of `None` and unit structs).
        Null,
        /// Boolean.
        Bool(bool),
        /// Unsigned integer (all `u8`–`u64`/`usize` values).
        U64(u64),
        /// Signed integer (all `i8`–`i64`/`isize` values).
        I64(i64),
        /// Floating point.
        F64(f64),
        /// String (also the encoding of unit enum variants).
        Str(String),
        /// Sequence (`Vec`, arrays, tuples, multi-field tuple structs).
        Seq(Vec<Value>),
        /// Map with insertion-ordered keys (structs; single-entry maps encode
        /// data-carrying enum variants).
        Map(Vec<(String, Value)>),
    }

    /// (De)serialization error: a human-readable message.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Error(pub String);

    impl Error {
        /// Build an error from anything displayable.
        pub fn msg<T: fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "serde: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    impl Value {
        /// Name of the variant, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::U64(_) => "unsigned integer",
                Value::I64(_) => "signed integer",
                Value::F64(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "sequence",
                Value::Map(_) => "map",
            }
        }

        /// Look up a map entry by key.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as an unsigned integer, if it is one.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::U64(v) => Some(v),
                Value::I64(v) if v >= 0 => Some(v as u64),
                _ => None,
            }
        }

        /// The value as a float (integers are widened).
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::U64(v) => Some(v as f64),
                Value::I64(v) => Some(v as f64),
                Value::F64(v) => Some(v),
                _ => None,
            }
        }

        /// The value as a string slice, if it is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a sequence, if it is one.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(items) => Some(items),
                _ => None,
            }
        }

        /// Deterministic compact rendering (keys in insertion order) — the
        /// fingerprint input for content-addressed caching.
        pub fn canonical(&self) -> String {
            crate::json::write_compact(self)
        }
    }
}

use value::{Error, Value};

/// Conversion into the self-describing [`Value`] model.
pub trait Serialize {
    /// Serialize `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the self-describing [`Value`] model.
///
/// The `'de` lifetime mirrors real serde's signature; this implementation
/// always copies out of the input, so it is unused.
pub trait Deserialize<'de>: Sized {
    /// Deserialize an instance of `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Helper used by derived `Deserialize` impls: extract and convert one
/// struct field from a map.
pub fn __field<'de, T: Deserialize<'de>>(
    entries: &[(String, Value)],
    key: &str,
    type_name: &str,
) -> Result<T, Error> {
    let value = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("{type_name}: missing field '{key}'")))?;
    T::from_value(value).map_err(|e| Error(format!("{type_name}.{key}: {}", e.0)))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error(format!(
                        "expected unsigned integer, found {}",
                        value.kind()
                    ))
                })?;
                <$ty>::try_from(raw)
                    .map_err(|_| Error(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match *value {
                    Value::I64(v) => v,
                    Value::U64(v) => i64::try_from(v)
                        .map_err(|_| Error(format!("{v} out of range for i64")))?,
                    ref other => {
                        return Err(Error(format!(
                            "expected signed integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw)
                    .map_err(|_| Error(format!("{raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error(format!("expected sequence, found {}", value.kind())))?;
        if items.len() != N {
            return Err(Error(format!(
                "expected sequence of length {N}, found {}",
                items.len()
            )));
        }
        let converted: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
        converted?
            .try_into()
            .map_err(|_| Error("array length mismatch".to_string()))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$index.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $index; 1 })+;
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error(format!("expected tuple, found {}", value.kind())))?;
                if items.len() != LEN {
                    return Err(Error(format!(
                        "expected tuple of length {LEN}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$index])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

pub mod json {
    //! JSON text over [`Value`](super::value::Value) — the `serde_json`
    //! stand-in used by the experiment report backends and the point cache.

    use super::value::{Error, Value};
    use super::{Deserialize, Serialize};
    use std::fmt::Write as _;

    /// Serialize any value to compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        write_compact(&value.to_value())
    }

    /// Serialize any value to human-readable, indented JSON.
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_pretty(&value.to_value(), 0, &mut out);
        out
    }

    /// Parse JSON text and deserialize it into `T`.
    pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
        T::from_value(&parse(text)?)
    }

    /// Render a [`Value`] as compact JSON.
    pub fn write_compact(value: &Value) -> String {
        let mut out = String::new();
        write_value(value, &mut out);
        out
    }

    fn write_value(value: &Value, out: &mut String) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_f64(*v, out),
            Value::Str(s) => write_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(item, out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (key, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    write_value(item, out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(value: &Value, indent: usize, out: &mut String) {
        let pad = |n: usize, out: &mut String| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match value {
            Value::Seq(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(indent + 1, out);
                    write_pretty(item, indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(indent, out);
                out.push(']');
            }
            Value::Map(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (key, item)) in entries.iter().enumerate() {
                    pad(indent + 1, out);
                    write_string(key, out);
                    out.push_str(": ");
                    write_pretty(item, indent + 1, out);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(indent, out);
                out.push('}');
            }
            other => write_value(other, out),
        }
    }

    /// Finite floats use Rust's shortest round-trip `Display` form (with a
    /// forced `.0` so they re-parse as floats); non-finite values become
    /// `null`, as in `serde_json`.
    fn write_f64(v: f64, out: &mut String) {
        if !v.is_finite() {
            out.push_str("null");
            return;
        }
        let text = format!("{v}");
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parse JSON text into a [`Value`].
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(Error(format!(
                "trailing characters at offset {}",
                parser.pos
            )));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_whitespace(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, byte: u8) -> Result<(), Error> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error(format!(
                    "expected '{}' at offset {}",
                    byte as char, self.pos
                )))
            }
        }

        fn eat_literal(&mut self, literal: &str) -> bool {
            if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
                self.pos += literal.len();
                true
            } else {
                false
            }
        }

        fn parse_value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
                Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
                Some(b'"') => self.parse_string().map(Value::Str),
                Some(b'[') => self.parse_seq(),
                Some(b'{') => self.parse_map(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
                _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
            }
        }

        fn parse_seq(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_whitespace();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                self.skip_whitespace();
                items.push(self.parse_value()?);
                self.skip_whitespace();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at {}", self.pos))),
                }
            }
        }

        fn parse_map(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_whitespace();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                self.skip_whitespace();
                let key = self.parse_string()?;
                self.skip_whitespace();
                self.expect(b':')?;
                self.skip_whitespace();
                let value = self.parse_value()?;
                entries.push((key, value));
                self.skip_whitespace();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at {}", self.pos))),
                }
            }
        }

        fn parse_string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                    self.pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
                );
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let escape = self
                            .peek()
                            .ok_or_else(|| Error("unterminated escape".to_string()))?;
                        self.pos += 1;
                        match escape {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| Error("bad \\u escape".to_string()))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("bad \\u code point".to_string()))?,
                                );
                            }
                            other => {
                                return Err(Error(format!("bad escape '\\{}'", other as char)))
                            }
                        }
                    }
                    _ => return Err(Error("unterminated string".to_string())),
                }
            }
        }

        fn parse_number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            let mut is_float = false;
            if self.peek() == Some(b'.') {
                is_float = true;
                self.pos += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error("invalid number".to_string()))?;
            if !is_float {
                if let Ok(v) = text.parse::<u64>() {
                    return Ok(Value::U64(v));
                }
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            }
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::to_string(&-7i64), "-7");
        assert_eq!(json::to_string(&2.5f64), "2.5");
        assert_eq!(json::to_string(&2.0f64), "2.0");
        assert_eq!(json::to_string("hi\n"), "\"hi\\n\"");
        assert_eq!(json::from_str::<u64>("42").unwrap(), 42);
        assert_eq!(json::from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(json::from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(json::from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(json::from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(json::to_string(&v), "[1,2,3]");
        assert_eq!(json::from_str::<Vec<u64>>("[1,2,3]").unwrap(), v);
        assert_eq!(json::to_string(&Option::<u64>::None), "null");
        assert_eq!(json::from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(json::from_str::<Option<u64>>("9").unwrap(), Some(9));
        let arr: [u32; 3] = [4, 5, 6];
        assert_eq!(json::from_str::<[u32; 3]>("[4,5,6]").unwrap(), arr);
        let tup: (u64, f64, String) = (1, 2.5, "x".to_string());
        let text = json::to_string(&tup);
        assert_eq!(json::from_str::<(u64, f64, String)>(&text).unwrap(), tup);
    }

    #[test]
    fn exact_u64_and_f64_round_trip() {
        // u64 beyond f64's 53-bit mantissa must survive exactly.
        let big = u64::MAX - 1;
        assert_eq!(json::from_str::<u64>(&json::to_string(&big)).unwrap(), big);
        // Shortest-display floats reparse to the same bits.
        for v in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let text = json::to_string(&v);
            assert_eq!(
                json::from_str::<f64>(&text).unwrap().to_bits(),
                v.to_bits(),
                "{text}"
            );
        }
    }

    #[test]
    fn canonical_is_stable_and_ordered() {
        let value = Value::Map(vec![
            ("b".to_string(), Value::U64(1)),
            (
                "a".to_string(),
                Value::Seq(vec![Value::Null, Value::Bool(false)]),
            ),
        ]);
        assert_eq!(value.canonical(), "{\"b\":1,\"a\":[null,false]}");
        assert_eq!(json::parse(&value.canonical()).unwrap(), value);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("12 34").is_err());
        assert!(json::parse("\"unterminated").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let value = Value::Map(vec![
            (
                "x".to_string(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)]),
            ),
            ("y".to_string(), Value::Str("s".to_string())),
        ]);
        let pretty = {
            struct Wrap(Value);
            impl Serialize for Wrap {
                fn to_value(&self) -> Value {
                    self.0.clone()
                }
            }
            json::to_string_pretty(&Wrap(value.clone()))
        };
        assert!(pretty.contains('\n'));
        assert_eq!(json::parse(&pretty).unwrap(), value);
    }
}
