//! Offline stub of the `serde` facade.
//!
//! Provides the `Serialize`/`Deserialize` trait names and (behind the
//! `derive` feature) the derive macros, so workspace types can keep their
//! `#[derive(Serialize, Deserialize)]` annotations while the container has no
//! crates.io access. The derives expand to nothing; swap this stub for the
//! real crate by deleting the `vendor/serde*` path deps once networked.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
