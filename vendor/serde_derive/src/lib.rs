//! No-op stand-ins for serde's `Serialize`/`Deserialize` derives.
//!
//! The container has no network access to crates.io, and nothing in this
//! workspace actually serialises data yet — the derives only mark types as
//! serialisable for future tooling. These macros accept the same attribute
//! grammar (`#[serde(...)]`) and expand to nothing, so `#[derive(Serialize,
//! Deserialize)]` compiles without pulling in the real implementation.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
