//! Real (but minimal) `Serialize`/`Deserialize` derives for the offline
//! serde stand-in.
//!
//! The derives are written against `proc_macro` alone — the container has no
//! crates.io access, so `syn`/`quote` are unavailable and the item is parsed
//! by a small hand-rolled token walker.  Supported shapes (everything the
//! workspace uses):
//!
//! * structs with named fields;
//! * tuple structs (arity 1 serialises transparently, like real serde's
//!   newtype structs; higher arities as a sequence);
//! * enums with unit variants (serialised as the variant-name string) and
//!   tuple variants (serialised as a single-entry map, externally tagged);
//!
//! Not supported (and absent from the workspace): generics, struct variants,
//! `#[serde(...)]` attribute customisation (accepted but ignored), and types
//! whose fields contain top-level commas inside angle brackets (e.g.
//! `HashMap<K, V>`; wrap such fields in a newtype if ever needed).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

enum Shape {
    /// Struct with named fields.
    Named(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: (variant name, tuple arity; 0 = unit variant).
    Enum(Vec<(String, usize)>),
}

struct Item {
    name: String,
    shape: Shape,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute or doc comment: skip the following [...] group.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly pub(crate)/pub(super).
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut tokens);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut tokens);
            }
            Some(other) => panic!("serde derive: unexpected token '{other}'"),
            None => panic!("serde derive: no struct or enum found"),
        }
    }
}

fn item_name(tokens: &mut Tokens) -> String {
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type '{name}' is not supported by the offline stub");
    }
    name
}

fn parse_struct(tokens: &mut Tokens) -> Item {
    let name = item_name(tokens);
    let shape = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_segments(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
            panic!("serde derive: where clauses are not supported by the offline stub")
        }
        other => panic!("serde derive: unexpected struct body {other:?}"),
    };
    Item { name, shape }
}

fn parse_enum(tokens: &mut Tokens) -> Item {
    let name = item_name(tokens);
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde derive: expected enum body, found {other:?}"),
    };
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes / doc comments on the variant.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let variant = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: unexpected token '{other}' in enum {name}"),
            None => break,
        };
        let mut arity = 0usize;
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_segments(g.stream());
                iter.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde derive: struct variant {name}::{variant} is not supported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde derive: discriminant on {name}::{variant} is not supported")
            }
            _ => {}
        }
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push((variant, arity));
    }
    Item {
        name,
        shape: Shape::Enum(variants),
    }
}

/// Parse `field: Type, ...` pairs, skipping attributes and visibility.
/// Commas nested in groups or angle brackets do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next();
                }
                match iter.next() {
                    Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                    other => panic!("serde derive: expected field name, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => panic!("serde derive: unexpected token '{other}' in fields"),
            None => break,
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected ':', found {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i64;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
    }
    fields
}

/// Count comma-separated segments at the top level of a token stream
/// (angle-bracket aware) — the arity of a tuple struct or tuple variant.
fn count_segments(stream: TokenStream) -> usize {
    let mut segments = 0usize;
    let mut current_nonempty = false;
    let mut angle_depth = 0i64;
    for token in stream {
        match &token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                current_nonempty = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if current_nonempty {
                    segments += 1;
                }
                current_nonempty = false;
            }
            _ => current_nonempty = true,
        }
    }
    if current_nonempty {
        segments += 1;
    }
    segments
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut entries = String::new();
            for field in fields {
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{field}\"), \
                     ::serde::Serialize::to_value(&self.{field})),"
                );
            }
            format!("::serde::value::Value::Map(vec![{entries}])")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", items.join(","))
        }
        Shape::Unit => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (variant, arity) in variants {
                match arity {
                    0 => {
                        let _ = write!(
                            arms,
                            "{name}::{variant} => ::serde::value::Value::Str(\
                             ::std::string::String::from(\"{variant}\")),"
                        );
                    }
                    1 => {
                        let _ = write!(
                            arms,
                            "{name}::{variant}(__f0) => ::serde::value::Value::Map(vec![(\
                             ::std::string::String::from(\"{variant}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{variant}({binders}) => ::serde::value::Value::Map(vec![(\
                             ::std::string::String::from(\"{variant}\"), \
                             ::serde::value::Value::Seq(vec![{values}]))]),",
                            binders = binders.join(","),
                            values = values.join(","),
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for field in fields {
                let _ = write!(
                    inits,
                    "{field}: ::serde::__field(__entries, \"{field}\", \"{name}\")?,"
                );
            }
            format!(
                "match __value {{\n\
                     ::serde::value::Value::Map(__entries) => \
                         ::std::result::Result::Ok({name} {{ {inits} }}),\n\
                     __other => ::std::result::Result::Err(::serde::value::Error(\
                         ::std::format!(\"{name}: expected map, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::value::Value::Seq(__items) if __items.len() == {arity} => \
                         ::std::result::Result::Ok({name}({items})),\n\
                     __other => ::std::result::Result::Err(::serde::value::Error(\
                         ::std::format!(\"{name}: expected sequence of {arity}, found {{}}\", \
                         __other.kind()))),\n\
                 }}",
                items = items.join(","),
            )
        }
        Shape::Unit => format!("{{ let _ = __value; ::std::result::Result::Ok({name}) }}"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (variant, arity) in variants {
                match arity {
                    0 => {
                        let _ = write!(
                            arms,
                            "::serde::value::Value::Str(__s) if __s == \"{variant}\" => \
                             ::std::result::Result::Ok({name}::{variant}),"
                        );
                    }
                    1 => {
                        let _ = write!(
                            arms,
                            "::serde::value::Value::Map(__entries) if __entries.len() == 1 \
                             && __entries[0].0 == \"{variant}\" => ::std::result::Result::Ok(\
                             {name}::{variant}(::serde::Deserialize::from_value(&__entries[0].1)?)),"
                        );
                    }
                    n => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        let _ = write!(
                            arms,
                            "::serde::value::Value::Map(__entries) if __entries.len() == 1 \
                             && __entries[0].0 == \"{variant}\" => match &__entries[0].1 {{\n\
                                 ::serde::value::Value::Seq(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{variant}({items})),\n\
                                 __other => ::std::result::Result::Err(::serde::value::Error(\
                                     ::std::format!(\"{name}::{variant}: expected sequence of {n}, \
                                     found {{}}\", __other.kind()))),\n\
                             }},",
                            items = items.join(","),
                        );
                    }
                }
            }
            format!(
                "match __value {{\n\
                     {arms}\n\
                     __other => ::std::result::Result::Err(::serde::value::Error(\
                         ::std::format!(\"{name}: no matching variant in {{}}\", \
                         __other.canonical()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::value::Error> {{ {body} }}\n\
         }}"
    )
}
