//! Offline API-compatible subset of `criterion`.
//!
//! Supports the benchmark surface the workspace uses — `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — with a
//! simple timer instead of criterion's statistical engine: each benchmark is
//! warmed up once, run for a fixed number of timed iterations, and the mean
//! per-iteration wall time is printed. Good enough to spot order-of-magnitude
//! regressions offline; swap in the real crate for publication-grade numbers.

use std::time::Instant;

pub use std::hint::black_box;

/// Timed iterations per benchmark (after one warm-up batch).
const MEASURE_ITERS: u32 = 10;

/// Name of one benchmark within a group; mirrors `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl ToString) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / MEASURE_ITERS as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    let per_iter = b.nanos_per_iter;
    if per_iter >= 1_000_000.0 {
        println!("bench {name:<60} {:>12.3} ms/iter", per_iter / 1_000_000.0);
    } else if per_iter >= 1_000.0 {
        println!("bench {name:<60} {:>12.3} µs/iter", per_iter / 1_000.0);
    } else {
        println!("bench {name:<60} {:>12.1} ns/iter", per_iter);
    }
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the stub's fixed iteration count
    /// is not affected.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; ignored by the stub timer.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label()), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
