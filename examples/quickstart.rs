//! Quickstart: build a small program, run it through the cycle-level
//! simulator under the conventional and extended release policies, and print
//! the paper's headline metrics (IPC and register-release behaviour).
//!
//! Run with: `cargo run --release --example quickstart`

use earlyreg::core::{ReleasePolicy, RenameConfig};
use earlyreg::isa::{ArchReg, BranchCond, ProgramBuilder};
use earlyreg::sim::{verify_against_emulator, MachineConfig, RunLimits, Simulator};

fn main() {
    // ------------------------------------------------------------------
    // 1. Build a tiny FP kernel with the structured program builder.
    //    Each iteration loads two values, runs a short FP dependence chain
    //    and stores the result — enough to create register pressure.
    // ------------------------------------------------------------------
    let mut b = ProgramBuilder::new("quickstart");
    b.set_memory_words(1 << 12);
    let data: Vec<f64> = (0..256).map(|k| 1.0 + k as f64 * 0.01).collect();
    let base_addr = b.data_f64(&data);

    let i = ArchReg::int(1);
    let base = ArchReg::int(2);
    let idx = ArchReg::int(3);
    let addr = ArchReg::int(4);
    let acc = ArchReg::fp(0);
    let x = ArchReg::fp(1);
    let y = ArchReg::fp(2);
    let prod = ArchReg::fp(3);
    let quot = ArchReg::fp(4);

    b.li(i, 2_000);
    b.li(base, base_addr);
    b.fli(acc, 0.0);
    let top = b.here();
    b.iopi(earlyreg::isa::Opcode::IAndImm, idx, i, 255);
    b.add(addr, base, idx);
    b.load_fp(x, addr, 0);
    b.load_fp(y, addr, 1);
    b.fmul(prod, x, y);
    b.fadd(quot, x, y);
    b.fdiv(prod, prod, quot);
    b.fadd(acc, acc, prod);
    b.store_fp(addr, 256, acc);
    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);
    b.halt();
    let program = b.build().expect("the quickstart kernel is a valid program");

    println!(
        "program: {} ({} static instructions)\n",
        program.name,
        program.len()
    );

    // ------------------------------------------------------------------
    // 2. Run it on the paper's Table 2 machine with a *tight* register file
    //    (48 int + 48 fp) under two release policies.
    // ------------------------------------------------------------------
    let mut results = Vec::new();
    for policy in [ReleasePolicy::Conventional, ReleasePolicy::Extended] {
        let config = MachineConfig::icpp02(policy, 48, 48);
        let mut sim = Simulator::new(config, program.clone());
        let stats = sim.run(RunLimits::default());

        // The committed state must match the architectural emulator.
        let verify = verify_against_emulator(&sim, &program);
        assert!(verify.is_match(), "simulation diverged: {verify:?}");

        println!("policy = {policy}");
        println!("  cycles               {:>10}", stats.cycles);
        println!("  committed            {:>10}", stats.committed);
        println!("  IPC                  {:>10.3}", stats.ipc());
        println!(
            "  free-list stalls     {:>10}",
            stats.rename_stalls.free_list
        );
        println!(
            "  avg idle FP registers{:>10.2}",
            stats.occupancy_fp.avg_idle()
        );
        println!(
            "  early releases (fp)  {:>10}",
            stats.release.fp.total_early()
        );
        println!();
        results.push((policy, stats));
    }

    // ------------------------------------------------------------------
    // 3. Summarise the early-release benefit.
    // ------------------------------------------------------------------
    let conv = &results[0].1;
    let ext = &results[1].1;
    println!(
        "extended vs conventional: {:+.1}% IPC, {:.1}x fewer idle FP register-cycles",
        (ext.ipc() / conv.ipc() - 1.0) * 100.0,
        conv.occupancy_fp.avg_idle() / ext.occupancy_fp.avg_idle().max(1e-9)
    );

    // The rename configuration is ordinary data — print what was simulated.
    let rename: RenameConfig = MachineConfig::icpp02(ReleasePolicy::Extended, 48, 48).rename;
    println!(
        "machine: {} int + {} fp physical registers, {} pending branches, reuse = {}",
        rename.phys_int, rename.phys_fp, rename.max_pending_branches, rename.reuse_on_committed_lu
    );
}
