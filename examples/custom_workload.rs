//! Build custom workloads with the parameterised generator and explore which
//! program properties make early register release pay off: FP register
//! pressure and branch predictability (the two axes the paper's discussion
//! revolves around).
//!
//! Run with: `cargo run --release --example custom_workload`

use earlyreg::core::ReleasePolicy;
use earlyreg::sim::{MachineConfig, RunLimits, Simulator};
use earlyreg::workloads::{generic_workload, GenericWorkloadConfig};

fn measure(config: GenericWorkloadConfig, registers: usize) -> (f64, f64) {
    let program = generic_workload(config);
    let mut ipc = [0.0f64; 2];
    for (slot, policy) in [ReleasePolicy::Conventional, ReleasePolicy::Extended]
        .iter()
        .enumerate()
    {
        let machine = MachineConfig::icpp02(*policy, registers, registers);
        let mut sim = Simulator::new(machine, program.clone());
        let stats = sim.run(RunLimits {
            max_instructions: 40_000,
            max_cycles: 6_000_000,
        });
        ipc[slot] = stats.ipc();
    }
    (ipc[0], ipc[1])
}

fn main() {
    let registers = 48;
    println!("extended-release benefit as a function of workload properties ({registers}+{registers} registers)\n");

    println!("FP working set sweep (higher pressure -> larger benefit):");
    println!(
        "{:>14}  {:>8}  {:>9}  {:>9}",
        "fp working set", "conv IPC", "ext IPC", "speedup"
    );
    for fp_ws in [4usize, 12, 20, 28] {
        let config = GenericWorkloadConfig {
            iterations: 1_500,
            fp_working_set: fp_ws,
            fp_divides_per_iteration: 1,
            branches_per_iteration: 1,
            branch_entropy: 0.1,
            ..GenericWorkloadConfig::default()
        };
        let (conv, ext) = measure(config, registers);
        println!(
            "{:>14}  {:>8.3}  {:>9.3}  {:>8.1}%",
            fp_ws,
            conv,
            ext,
            (ext / conv - 1.0) * 100.0
        );
    }

    println!("\nBranch entropy sweep (harder-to-predict branches limit the benefit,");
    println!("because redefinitions decoded under unresolved branches must stay conditional):");
    println!(
        "{:>14}  {:>8}  {:>9}  {:>9}",
        "branch entropy", "conv IPC", "ext IPC", "speedup"
    );
    for entropy in [0.0f64, 0.2, 0.5] {
        let config = GenericWorkloadConfig {
            iterations: 1_500,
            fp_working_set: 20,
            branches_per_iteration: 4,
            branch_entropy: entropy,
            ..GenericWorkloadConfig::default()
        };
        let (conv, ext) = measure(config, registers);
        println!(
            "{:>14.1}  {:>8.3}  {:>9.3}  {:>8.1}%",
            entropy,
            conv,
            ext,
            (ext / conv - 1.0) * 100.0
        );
    }

    println!(
        "\nThese are the two effects the paper reports: numerical codes (high FP pressure, \n\
         predictable branches) gain the most, while branch-intensive integer codes gain \n\
         only when the register file is very tight."
    );
}
