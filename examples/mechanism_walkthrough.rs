//! Walk through the paper's worked examples (Figures 4, 6 and 8) by driving
//! the rename/release engine directly, printing what each mechanism does at
//! every step: last-use identification, early-release bit scheduling,
//! immediate reuse, and the Release Queue's conditional releases.
//!
//! Run with: `cargo run --example mechanism_walkthrough`

use earlyreg::core::{ReleasePolicy, RenameConfig, RenameUnit};
use earlyreg::isa::{ArchReg, BranchCond, Instruction, Opcode};

fn define(reg: usize) -> Instruction {
    Instruction {
        op: Opcode::ILoadImm,
        dst: Some(ArchReg::int(reg)),
        src1: None,
        src2: None,
        imm: 7,
    }
}

fn add(dst: usize, a: usize, b: usize) -> Instruction {
    Instruction {
        op: Opcode::IAdd,
        dst: Some(ArchReg::int(dst)),
        src1: Some(ArchReg::int(a)),
        src2: Some(ArchReg::int(b)),
        imm: 0,
    }
}

fn branch(on: usize) -> Instruction {
    Instruction {
        op: Opcode::Branch(BranchCond::Ne),
        dst: None,
        src1: Some(ArchReg::int(on)),
        src2: None,
        imm: 0,
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    // ------------------------------------------------------------------
    // Figure 4.a with the BASIC mechanism: i defines r1, LU reads it for the
    // last time, NV redefines it.  The release of the old version is retimed
    // to LU's commit.
    // ------------------------------------------------------------------
    banner("Figure 4.a — basic mechanism retimes the release to the last-use commit");
    let mut ru = RenameUnit::new(RenameConfig::icpp02(ReleasePolicy::Basic, 48, 48));
    let i = ru.rename(&define(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    println!("i : r1 = ...          r1 -> {p7}");
    let lu = ru.rename(&add(3, 2, 1), 1).unwrap();
    println!("LU: r3 = r2 + r1      reads {p7}");
    let nv = ru.rename(&define(1), 2).unwrap();
    println!(
        "NV: r1 = ...          r1 -> {} (previous version {p7})",
        nv.dst.unwrap().phys
    );
    ru.commit(i.id, 10);
    let released = ru.commit(lu.id, 11).released.clone();
    println!(
        "LU commits            released: {:?}",
        released.iter().map(|e| e.phys).collect::<Vec<_>>()
    );
    let released = ru.commit(nv.id, 12).released.clone();
    println!(
        "NV commits            released: {:?} (nothing — rel_old was cleared)",
        released
    );

    // ------------------------------------------------------------------
    // Figure 6-style immediate reuse: the last use has already committed when
    // NV is decoded, so the same physical register is reused.
    // ------------------------------------------------------------------
    banner("Section 3.2 — immediate reuse when the last use has already committed");
    let mut ru = RenameUnit::new(RenameConfig::icpp02(ReleasePolicy::Basic, 48, 48));
    let i = ru.rename(&define(1), 0).unwrap();
    let lu = ru.rename(&add(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 5);
    ru.commit(lu.id, 6);
    let free_before = ru.free_count(earlyreg::isa::RegClass::Int);
    let nv = ru.rename(&define(1), 10).unwrap();
    let d = nv.dst.unwrap();
    println!(
        "NV decoded after LU committed: reused = {}, register = {}, free list unchanged ({} -> {})",
        d.reused,
        d.phys,
        free_before,
        ru.free_count(earlyreg::isa::RegClass::Int)
    );
    ru.commit(nv.id, 11);

    // ------------------------------------------------------------------
    // Figure 8 — EXTENDED mechanism: a redefinition decoded under a pending
    // branch schedules a *conditional* release in the Release Queue.
    // ------------------------------------------------------------------
    banner("Figure 8 — extended mechanism: conditional releases in the Release Queue");
    let mut ru = RenameUnit::new(RenameConfig::icpp02(ReleasePolicy::Extended, 48, 48));
    let i = ru.rename(&define(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&add(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 2);
    ru.commit(lu.id, 3);
    println!("i and LU committed; r1 is held in {p7}");
    let br = ru.rename(&branch(3), 4).unwrap();
    let _nv = ru.rename(&define(1), 5).unwrap();
    println!(
        "branch pending, NV decoded: {} conditional release(s) scheduled (RwNS form)",
        ru.release_queue_marks()
    );
    let released = ru.resolve_branch_correct(br.id, 6);
    println!(
        "branch confirmed: branch-confirm release of {:?}",
        released.iter().map(|e| e.phys).collect::<Vec<_>>()
    );

    // The misprediction path: the same setup, but the branch was wrong.
    let mut ru = RenameUnit::new(RenameConfig::icpp02(ReleasePolicy::Extended, 48, 48));
    let i = ru.rename(&define(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&add(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 2);
    ru.commit(lu.id, 3);
    let br = ru.rename(&branch(3), 4).unwrap();
    let _nv = ru.rename(&define(1), 5).unwrap();
    println!(
        "\nsame again, but the branch mispredicts: {} mark(s) before recovery",
        ru.release_queue_marks()
    );
    let squashed = ru.recover_branch_mispredict(br.id, 6).squashed;
    println!(
        "misprediction recovery: {} squashed, {} mark(s) left, r1 still mapped to {} = {}",
        squashed,
        ru.release_queue_marks(),
        ru.mapping(ArchReg::int(1)),
        p7
    );
    ru.commit(br.id, 7);
    ru.check_invariants()
        .expect("the rename state is consistent after recovery");
    println!("\ninvariants hold after every scenario — see crates/core tests for the full matrix");
}
