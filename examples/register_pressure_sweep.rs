//! Sweep the physical register file size for one floating-point workload and
//! print the IPC of the three release policies — a single-benchmark slice of
//! the paper's Figure 11.
//!
//! Run with: `cargo run --release --example register_pressure_sweep [workload]`

use earlyreg::core::PAPER_POLICIES;
use earlyreg::sim::{MachineConfig, RunLimits, Simulator};
use earlyreg::workloads::{workload_by_name, Scale};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "swim".to_string());
    let workload = workload_by_name(&name, Scale::Bench).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'; available: compress gcc go li perl mgrid tomcatv applu swim hydro2d");
        std::process::exit(2);
    });
    println!(
        "register-pressure sweep for '{}' ({}, {} static instructions)\n",
        workload.name(),
        workload.spec.description,
        workload.program.len()
    );
    println!(
        "{:>9}  {:>8}  {:>8}  {:>8}  {:>10}  {:>10}",
        "registers", "conv", "basic", "extended", "basic/conv", "ext/conv"
    );
    println!("{}", "-".repeat(64));

    for size in [40usize, 48, 56, 64, 72, 80, 96, 128] {
        let mut ipc = Vec::new();
        for policy in PAPER_POLICIES {
            let config = MachineConfig::icpp02(policy, size, size);
            let mut sim = Simulator::new(config, workload.program.clone());
            let stats = sim.run(RunLimits {
                max_instructions: 60_000,
                max_cycles: 8_000_000,
            });
            ipc.push(stats.ipc());
        }
        println!(
            "{:>9}  {:>8.3}  {:>8.3}  {:>8.3}  {:>9.1}%  {:>9.1}%",
            size,
            ipc[0],
            ipc[1],
            ipc[2],
            (ipc[1] / ipc[0] - 1.0) * 100.0,
            (ipc[2] / ipc[0] - 1.0) * 100.0
        );
    }
    println!(
        "\nThe gap closes as the file grows towards the loose regime (P >= L + N = {}).",
        32 + 128
    );
}
