//! Figure 2 / Figure 3 in miniature: measure how long physical registers
//! spend in the Empty, Ready and Idle states for one workload under each
//! release policy.  The Idle component is the waste the paper's mechanisms
//! reclaim.
//!
//! Run with: `cargo run --release --example lifetime_trace [workload]`

use earlyreg::sim::{MachineConfig, RunLimits, Simulator};
use earlyreg::workloads::{workload_by_name, Scale, WorkloadClass};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tomcatv".to_string());
    let workload = workload_by_name(&name, Scale::Bench).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'");
        std::process::exit(2);
    });
    let registers = 96;
    println!(
        "register lifetime breakdown for '{}' with {registers}+{registers} physical registers\n",
        workload.name()
    );
    println!(
        "{:>12}  {:>7}  {:>7}  {:>7}  {:>10}  {:>12}",
        "policy", "empty", "ready", "idle", "allocated", "idle/(e+r)"
    );
    println!("{}", "-".repeat(66));

    // Every registered scheme, including any added after the paper's three.
    for policy in earlyreg::core::registry::registered() {
        let config = MachineConfig::icpp02(policy, registers, registers);
        let mut sim = Simulator::new(config, workload.program.clone());
        let stats = sim.run(RunLimits {
            max_instructions: 60_000,
            max_cycles: 8_000_000,
        });
        let occ = match workload.class() {
            WorkloadClass::Int => &stats.occupancy_int,
            WorkloadClass::Fp => &stats.occupancy_fp,
        };
        println!(
            "{:>12}  {:>7.1}  {:>7.1}  {:>7.1}  {:>10.1}  {:>11.1}%",
            policy.label(),
            occ.avg_empty(),
            occ.avg_ready(),
            occ.avg_idle(),
            occ.avg_allocated(),
            occ.idle_overhead() * 100.0
        );
    }

    println!(
        "\nPaper, Figure 2: a register is Empty from allocation to writeback, Ready until the\n\
         commit of its last use, and Idle (pure waste) until the redefinition commits.\n\
         Early release removes most of the Idle component; the conventional row shows how much\n\
         of the file the waste occupies."
    );
}
