//! # earlyreg — Hardware Schemes for Early Register Release (ICPP 2002)
//!
//! Umbrella crate for the reproduction of Monreal, Viñals, González and
//! Valero, *"Hardware Schemes for Early Register Release"*, ICPP 2002.
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports them under stable module names so examples and downstream users
//! can depend on a single package:
//!
//! * [`isa`] — mini RISC ISA, program builder and architectural emulator.
//! * [`core`] — the paper's contribution: register renaming with the
//!   conventional, *basic* and *extended* early-release mechanisms.
//! * [`sim`] — cycle-level out-of-order simulator (SimpleScalar-style machine
//!   model from the paper's Table 2).
//! * [`rfmodel`] — analytic register-file delay/energy model (Figure 9,
//!   Section 4.4).
//! * [`workloads`] — SPEC95-like synthetic workloads (Table 3 analogue).
//! * [`experiments`] — harness regenerating every table and figure.
//! * [`conformance`] — differential scheme-conformance fuzzing: hazard-stress
//!   program generation, per-cycle lockstep checking against the emulator,
//!   failure minimization and regression fixtures (see `docs/FUZZING.md`).
//!
//! See `README.md` for a quickstart, the workspace inventory and the
//! experiment index.

pub use earlyreg_conformance as conformance;
pub use earlyreg_core as core;
pub use earlyreg_experiments as experiments;
pub use earlyreg_isa as isa;
pub use earlyreg_rfmodel as rfmodel;
pub use earlyreg_sim as sim;
pub use earlyreg_workloads as workloads;
