//! Chaos load driver for the serve resolver chain: measures how the tiered
//! resolver (memory → disk → peer → local) behaves *under injected faults*
//! and records the trajectory in `BENCH_serve_chaos.json`.
//!
//! The harness is three in-process components: an upstream serve node, a
//! deterministic fault proxy in front of it, and a front node whose only
//! peer is the proxy.  The driver sends single-point requests through the
//! front node — revisiting points so the memory tier sees traffic too —
//! and records per-request latency plus the per-tier and per-fault counts
//! at the end.  A fixed `--seed` reproduces the exact same fault sequence,
//! so two runs of this binary are comparable measurements, not two
//! different storms.
//!
//! Usage:
//!   bench_serve_chaos [--requests N] [--unique N] [--seed S]
//!                     [--schedule SPEC] [--max-instructions N]
//!                     [--deadline-ms N] [--retries N] [--out FILE]
//!
//! `--schedule` overrides the seeded full-menu schedule with any spec the
//! fault proxy accepts (e.g. `pass` for a fault-free control run, or
//! `refuse,pass` for a 50% refusal storm).

use earlyreg_serve::client;
use earlyreg_serve::fault::{FaultProxy, FaultSchedule};
use earlyreg_serve::{start, ResolverConfig, ServeConfig, ServiceConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Args {
    requests: usize,
    unique: usize,
    seed: u64,
    schedule: Option<String>,
    max_instructions: u64,
    deadline_ms: u64,
    retries: u32,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_serve_chaos [--requests N] [--unique N] [--seed S] [--schedule SPEC] \
         [--max-instructions N] [--deadline-ms N] [--retries N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 60,
        unique: 12,
        seed: 1337,
        schedule: None,
        max_instructions: 4000,
        deadline_ms: 500,
        retries: 1,
        out: "BENCH_serve_chaos.json".into(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--requests" => args.requests = value().parse().unwrap_or_else(|_| usage()),
            "--unique" => args.unique = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--schedule" => args.schedule = Some(value()),
            "--max-instructions" => {
                args.max_instructions = value().parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => args.deadline_ms = value().parse().unwrap_or_else(|_| usage()),
            "--retries" => args.retries = value().parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = value(),
            _ => usage(),
        }
    }
    if args.requests == 0 || args.unique == 0 {
        usage();
    }
    args
}

/// The `i`-th distinct point body: cycles workloads and register-file
/// sizes so the unique set spreads across the LRU and the peer shards.
fn point_body(i: usize, max_instructions: u64) -> String {
    const WORKLOADS: [&str; 3] = ["swim", "perl", "gcc"];
    const POLICIES: [&str; 2] = ["extended", "conventional"];
    let workload = WORKLOADS[i % WORKLOADS.len()];
    let policy = POLICIES[(i / WORKLOADS.len()) % POLICIES.len()];
    let size = 48 + 8 * (i % 5);
    format!(
        r#"{{"scale":"smoke","max_instructions":{max_instructions},"points":[{{"workload":"{workload}","policy":"{policy}","phys_int":{size},"phys_fp":{size}}}]}}"#
    )
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    let index = (sorted.len().saturating_sub(1) * p) / 100;
    sorted[index]
}

fn main() {
    let args = parse_args();
    let schedule_spec = args
        .schedule
        .clone()
        .unwrap_or_else(|| format!("seed:{}", args.seed));
    let schedule = FaultSchedule::parse(&schedule_spec)
        .unwrap_or_else(|error| panic!("invalid --schedule: {error}"));

    let node = |resolver: ResolverConfig| ServeConfig {
        workers: 4,
        queue_capacity: 64,
        service: ServiceConfig {
            cache_dir: None,
            sim_threads: 2,
            resolver,
            ..ServiceConfig::default()
        },
        ..ServeConfig::default()
    };
    let upstream = start(node(ResolverConfig::default())).expect("bind upstream node");
    let proxy = FaultProxy::start(upstream.addr.to_string(), schedule).expect("start fault proxy");
    let front = start(node(ResolverConfig {
        peers: vec![proxy.addr().to_string()],
        deadline_ms: args.deadline_ms,
        retries: args.retries,
        backoff_base_ms: 2,
        backoff_cap_ms: 20,
        ..ResolverConfig::default()
    }))
    .expect("bind front node");
    let front_addr = front.addr.to_string();
    println!(
        "chaos: {} requests over {} unique points, schedule '{schedule_spec}' \
         (front {front_addr} -> proxy {} -> upstream {})",
        args.requests,
        args.unique,
        proxy.addr(),
        upstream.addr
    );

    // The driver itself talks to the *front* node, which is healthy — a
    // generous client deadline here measures the chain, not the driver.
    let client_deadline = Duration::from_secs(60);
    let mut latencies = Vec::with_capacity(args.requests);
    let mut failures = 0usize;
    let run_started = Instant::now();
    for i in 0..args.requests {
        let body = point_body(i % args.unique, args.max_instructions);
        let started = Instant::now();
        match client::post_json(&front_addr, "/points", &body, client_deadline) {
            Ok(_) => latencies.push(started.elapsed()),
            Err(error) => {
                failures += 1;
                eprintln!("request {i} failed: {error}");
            }
        }
    }
    let wall = run_started.elapsed();

    let service = front.service();
    let lru_hits = service.lru_hits();
    let peer_hits = service.peer_hits();
    let peer_failures = service.peer_failures();
    let simulations = service.simulations();
    let breaker_trips = service.chain().breaker_trips();
    let fault_counts = proxy.counts();

    let mut sorted = latencies.clone();
    sorted.sort();
    let (p50, p99, max) = if sorted.is_empty() {
        (Duration::ZERO, Duration::ZERO, Duration::ZERO)
    } else {
        (
            percentile(&sorted, 50),
            percentile(&sorted, 99),
            *sorted.last().expect("non-empty"),
        )
    };

    println!(
        "tiers: lru={lru_hits} peer={peer_hits} local={simulations} \
         peer_failures={peer_failures} breaker_trips={breaker_trips}"
    );
    println!(
        "latency: p50={:.1}ms p99={:.1}ms max={:.1}ms over {} ok / {failures} failed in {:.2}s",
        p50.as_secs_f64() * 1000.0,
        p99.as_secs_f64() * 1000.0,
        max.as_secs_f64() * 1000.0,
        latencies.len(),
        wall.as_secs_f64()
    );

    let mut json = String::from("{\n  \"benchmark\": \"serve_chaos\",\n");
    let _ = writeln!(json, "  \"schedule\": \"{schedule_spec}\",");
    let _ = writeln!(
        json,
        "  \"requests\": {}, \"unique_points\": {}, \"failed_requests\": {failures},",
        args.requests, args.unique
    );
    let _ = writeln!(
        json,
        "  \"resolver\": {{\"deadline_ms\": {}, \"retries\": {}}},",
        args.deadline_ms, args.retries
    );
    let _ = writeln!(
        json,
        "  \"tiers\": {{\"lru_hits\": {lru_hits}, \"peer_hits\": {peer_hits}, \
         \"local_simulations\": {simulations}, \"peer_failures\": {peer_failures}, \
         \"breaker_trips\": {breaker_trips}}},"
    );
    let faults: Vec<String> = fault_counts
        .iter()
        .map(|(name, count)| format!("\"{name}\": {count}"))
        .collect();
    let _ = writeln!(json, "  \"faults_injected\": {{{}}},", faults.join(", "));
    let _ = writeln!(
        json,
        "  \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},",
        p50.as_secs_f64() * 1000.0,
        p99.as_secs_f64() * 1000.0,
        max.as_secs_f64() * 1000.0
    );
    let _ = writeln!(json, "  \"wall_seconds\": {:.3}", wall.as_secs_f64());
    json.push_str("}\n");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);

    front.stop();
    proxy.stop();
    upstream.stop();
    if failures > 0 {
        // The front node must absorb *peer* faults; a failed driver request
        // means the chain itself broke its degraded-but-correct contract.
        std::process::exit(1);
    }
}
