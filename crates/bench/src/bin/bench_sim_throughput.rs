//! Simulator-throughput benchmark: host-side speed, not simulated IPC.
//!
//! Every experiment in the paper is a sweep of independent cycle-level
//! simulations, so *simulated instructions per host-second* is the lever that
//! decides how many (workload, policy, register-file-size) points a run can
//! afford.  This binary measures it end to end and records the result in
//! `BENCH_sim_throughput.json`, the committed perf-trajectory baseline the
//! README's "Simulator performance" section tracks PR-over-PR.
//!
//! Three kinds of measurement:
//!
//! * **Per-point** (always): one fixed-budget run per (workload, policy,
//!   front-end mode) — `live` is the classic decode-and-execute front-end,
//!   `replay` is the decode-once trace-replay front-end the sweep paths use
//!   by default (including its one-time capture cost).
//! * **Sweep** (`--sweep`): the fig10 full sweep (whole suite x paper
//!   policies x 48 registers) with a cold cache, cold (live) vs
//!   trace-replay, recording wall time and aggregate throughput.
//! * **Regression gate** (`--baseline FILE`): compare this run's per-point
//!   geometric-mean throughput against a committed baseline JSON and exit
//!   non-zero if it regressed more than `--max-regression` percent.
//!
//! `--profile` prints the per-phase breakdown after each measured run;
//! `--profile-json FILE` additionally writes every measured run's table as
//! JSON (CI's profiling-smoke step parses it to pin the rename+commit share
//! of phase time).  Build with `--features profile` (forwards to
//! `earlyreg-sim/profile`) to compile the scope timers in.
//!
//! Workloads come from the string-keyed workload registry: `--workloads`
//! takes registered ids/aliases plus the keywords `all`, `paper` (the
//! synthetic Table 3 set) and `asm` (the assembled real kernels).  The
//! default measures one synthetic member of each class plus one assembled
//! kernel of each class, so the committed baseline tracks both front-ends
//! over both program sources.
//!
//! Usage:
//!   bench_sim_throughput [--instructions N] [--workloads swim,gcc,asm]
//!                        [--out BENCH_sim_throughput.json] [--sweep]
//!                        [--baseline FILE] [--max-regression PCT]
//!                        [--profile]

use earlyreg_core::{registry, ReleasePolicy};
use earlyreg_experiments::config::ExperimentOptions;
use earlyreg_experiments::runner::{cross_points, run_sweep_with_lane_stats};
use earlyreg_sim::profile::prof;
use earlyreg_sim::{
    decoded_trace_for, LaneStats, MachineConfig, RunLimits, Simulator, TRACE_SLACK,
};
use earlyreg_workloads::registry as workloads_registry;
use earlyreg_workloads::{shared_suite, workload_with_target_instructions, Scale, WorkloadKind};
use std::fmt::Write as _;
use std::time::Instant;

struct Args {
    instructions: u64,
    workloads: Vec<String>,
    out: String,
    sweep: bool,
    baseline: Option<String>,
    max_regression: f64,
    profile: bool,
    profile_json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_sim_throughput [--instructions N] [--workloads name,name,...] [--out FILE] \
         [--sweep] [--baseline FILE] [--max-regression PCT] [--profile] [--profile-json FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        instructions: 1_000_000,
        workloads: vec![
            "swim".into(),
            "gcc".into(),
            "matmul".into(),
            "quicksort".into(),
        ],
        out: "BENCH_sim_throughput.json".into(),
        sweep: false,
        baseline: None,
        max_regression: 25.0,
        profile: false,
        profile_json: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--instructions" => args.instructions = value().parse().unwrap_or_else(|_| usage()),
            "--workloads" => {
                args.workloads = value().split(',').map(str::to_owned).collect();
            }
            "--out" => args.out = value(),
            "--sweep" => args.sweep = true,
            "--baseline" => args.baseline = Some(value()),
            "--max-regression" => args.max_regression = value().parse().unwrap_or_else(|_| usage()),
            "--profile" => args.profile = true,
            "--profile-json" => args.profile_json = Some(value()),
            _ => usage(),
        }
    }
    args
}

struct Measurement {
    workload: String,
    policy: ReleasePolicy,
    mode: &'static str,
    committed: u64,
    cycles: u64,
    seconds: f64,
}

impl Measurement {
    /// Simulated (committed) instructions per host-second.
    fn mips(&self) -> f64 {
        if self.seconds > 0.0 {
            self.committed as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Simulated cycles per host-second.
    fn cps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.cycles as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// One timed sweep pass (cold cache): wall time + aggregate throughput +
/// lane-group occupancy.
struct SweepMeasurement {
    mode: &'static str,
    points: usize,
    committed: u64,
    seconds: f64,
    lane_stats: LaneStats,
}

impl SweepMeasurement {
    fn mips(&self) -> f64 {
        if self.seconds > 0.0 {
            self.committed as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// A drained per-phase profile table for one measured run, kept for
/// `--profile-json`.
struct ProfileCapture {
    label: String,
    rows: Vec<prof::PhaseRow>,
}

/// Drain the per-phase profile after a measured run: print it under
/// `--profile`, keep it for `--profile-json`.  Draining even when only one of
/// the two was requested keeps runs independent (the thread-local table is
/// cumulative).
fn maybe_profile(args: &Args, label: &str, captures: &mut Vec<ProfileCapture>) {
    if !args.profile && args.profile_json.is_none() {
        return;
    }
    let rows = prof::take_table();
    if args.profile {
        println!("--- per-phase profile: {label} ---");
        print!("{}", prof::render_rows(&rows));
    }
    if args.profile_json.is_some() {
        captures.push(ProfileCapture {
            label: label.to_string(),
            rows,
        });
    }
}

/// Serialize the captured per-phase tables as JSON (one entry per measured
/// label, phases in pipeline order).
fn write_profile_json(path: &str, captures: &[ProfileCapture]) {
    let mut json = String::from("{\n  \"benchmark\": \"sim_throughput_phases\",\n  \"runs\": [\n");
    for (i, c) in captures.iter().enumerate() {
        let total: u64 = c.rows.iter().map(|r| r.nanos).sum();
        let _ = write!(
            json,
            "    {{\"label\": \"{}\", \"total_nanos\": {}, \"phases\": [",
            c.label, total
        );
        for (j, row) in c.rows.iter().enumerate() {
            let _ = write!(
                json,
                "{}{{\"phase\": \"{}\", \"nanos\": {}, \"calls\": {}}}",
                if j > 0 { ", " } else { "" },
                row.phase.name(),
                row.nanos,
                row.calls,
            );
        }
        let _ = writeln!(json, "]}}{}", if i + 1 < captures.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}

/// The fig10 full sweep (whole suite x paper policies x 48 registers) with a
/// cold point cache, in `mode` (`live` forces `EARLYREG_NO_REPLAY`).
fn run_fig10_sweep(mode: &'static str, max_instructions: u64) -> SweepMeasurement {
    let options = ExperimentOptions {
        scale: Scale::Smoke,
        threads: 0,
        max_instructions,
    };
    // fig10's default plan covers the paper's Table 3 suite only, so the
    // timed sweep filters the registry the same way.  `shared_suite` is the
    // same memoized handle `run_sweep` uses internally: point enumeration
    // needs the suite anyway, so the timed region below measures simulation,
    // not a redundant second suite build.
    let workloads: Vec<_> = shared_suite(options.scale)
        .iter()
        .filter(|w| w.spec.paper)
        .cloned()
        .collect();
    let points = cross_points(&workloads, &registry::PAPER_POLICIES, &[48]);
    let n = points.len();
    if mode == "live" {
        std::env::set_var("EARLYREG_NO_REPLAY", "1");
    } else {
        std::env::remove_var("EARLYREG_NO_REPLAY");
    }
    let start = Instant::now();
    let (results, lane_stats) = run_sweep_with_lane_stats(&options, points);
    let seconds = start.elapsed().as_secs_f64();
    std::env::remove_var("EARLYREG_NO_REPLAY");
    SweepMeasurement {
        mode,
        points: n,
        committed: results.iter().map(|r| r.stats.committed).sum(),
        seconds,
        lane_stats,
    }
}

/// Geometric mean of the `sim_instr_per_host_sec` values in a benchmark
/// JSON's `points` array (schema-light: scans for the field).
fn baseline_geomean(json: &str) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut count = 0u32;
    for chunk in json.split("\"sim_instr_per_host_sec\":").skip(1) {
        let value: f64 = chunk
            .trim_start()
            .split(|c: char| c != '.' && !c.is_ascii_digit())
            .next()?
            .parse()
            .ok()?;
        if value > 0.0 {
            log_sum += value.ln();
            count += 1;
        }
    }
    (count > 0).then(|| (log_sum / count as f64).exp())
}

/// Expand `--workloads` entries into canonical registered ids: `all`,
/// `paper` and `asm` pull groups out of the workload registry; anything else
/// must parse as a registered id or alias.
fn expand_workloads(requested: &[String]) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = Vec::new();
    for entry in requested {
        match entry.as_str() {
            "all" => names.extend(workloads_registry::ids()),
            "paper" => names.extend(workloads_registry::paper_descriptors().map(|d| d.id)),
            "asm" => names.extend(
                workloads_registry::descriptors()
                    .iter()
                    .filter(|d| d.kind() == WorkloadKind::Asm)
                    .map(|d| d.id),
            ),
            name => match workloads_registry::parse(name) {
                Ok(d) => names.push(d.id),
                Err(e) => {
                    eprintln!("{e} (or the keywords: all, paper, asm)");
                    std::process::exit(2);
                }
            },
        }
    }
    names.dedup();
    names
}

fn main() {
    let args = parse_args();
    // One throughput point per registered policy: new schemes join the
    // benchmark automatically through the registry.
    let policies: Vec<ReleasePolicy> = registry::registered().collect();

    let mut measurements = Vec::new();
    let mut profile_captures = Vec::new();
    for name in expand_workloads(&args.workloads) {
        // Size the program a little above the budget so the run is limited by
        // `max_instructions`, not by the program halting early.
        let workload = workload_with_target_instructions(name, args.instructions * 2)
            .expect("expand_workloads only returns registered ids");
        for &policy in &policies {
            for mode in ["live", "replay"] {
                let config = MachineConfig::icpp02(policy, 80, 80);
                let start = Instant::now();
                let mut sim = if mode == "replay" {
                    // The capture is memoized per program, so only the first
                    // replay lane of each workload pays it — exactly like a
                    // sweep.  Time it inside the measurement to stay honest.
                    let trace = decoded_trace_for(
                        &workload.program,
                        args.instructions.saturating_add(TRACE_SLACK),
                    );
                    Simulator::with_replay(config, workload.program.clone(), trace)
                } else {
                    Simulator::new(config, workload.program.clone())
                };
                let stats = sim.run(RunLimits::instructions(args.instructions));
                let seconds = start.elapsed().as_secs_f64();
                let m = Measurement {
                    workload: name.to_string(),
                    policy,
                    mode,
                    committed: stats.committed,
                    cycles: stats.cycles,
                    seconds,
                };
                println!(
                    "{:<10} {:<12} {:<7} {:>10} instructions in {:>7.3}s  ->  {:>10.0} sim-instr/s  \
                     ({:>10.0} sim-cycles/s)",
                    m.workload,
                    policy.label(),
                    m.mode,
                    m.committed,
                    m.seconds,
                    m.mips(),
                    m.cps(),
                );
                maybe_profile(
                    &args,
                    &format!("{name}/{}/{mode}", policy.label()),
                    &mut profile_captures,
                );
                measurements.push(m);
            }
        }
    }

    let sweeps: Vec<SweepMeasurement> = if args.sweep {
        ["live", "replay"]
            .into_iter()
            .map(|mode| {
                let m = run_fig10_sweep(mode, args.instructions);
                println!(
                    "fig10 sweep {:<7} {:>3} points, {:>12} instructions in {:>7.3}s  ->  \
                     {:>10.0} sim-instr/s  (lane occupancy {:.2}/{} over {} rounds)",
                    m.mode,
                    m.points,
                    m.committed,
                    m.seconds,
                    m.mips(),
                    m.lane_stats.occupancy(),
                    earlyreg_experiments::runner::MAX_LANE_WIDTH,
                    m.lane_stats.rounds,
                );
                maybe_profile(&args, &format!("fig10 sweep/{mode}"), &mut profile_captures);
                m
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut json = String::from("{\n  \"benchmark\": \"sim_throughput\",\n  \"unit\": \"simulated instructions per host-second\",\n  \"points\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"policy\": \"{}\", \"mode\": \"{}\", \"instructions\": {}, \"cycles\": {}, \"seconds\": {:.6}, \"sim_instr_per_host_sec\": {:.1}, \"sim_cycles_per_host_sec\": {:.1}}}{}",
            m.workload,
            m.policy.label(),
            m.mode,
            m.committed,
            m.cycles,
            m.seconds,
            m.mips(),
            m.cps(),
            if i + 1 < measurements.len() { "," } else { "" },
        );
    }
    json.push_str("  ]");
    if !sweeps.is_empty() {
        json.push_str(",\n  \"sweep\": {\n    \"experiment\": \"fig10\",\n    \"passes\": [\n");
        for (i, m) in sweeps.iter().enumerate() {
            let ls = &m.lane_stats;
            let _ = writeln!(
                json,
                "      {{\"mode\": \"{}\", \"points\": {}, \"instructions\": {}, \"wall_seconds\": {:.6}, \"sim_instr_per_host_sec\": {:.1}, \"lanes\": {{\"lanes\": {}, \"rounds\": {}, \"live_lane_rounds\": {}, \"full_rounds\": {}, \"detached_lane_rounds\": {}, \"lane_cycles\": {}, \"occupancy\": {:.4}}}}}{}",
                m.mode,
                m.points,
                m.committed,
                m.seconds,
                m.mips(),
                ls.lanes,
                ls.rounds,
                ls.live_lane_rounds,
                ls.full_rounds,
                ls.detached_lane_rounds,
                ls.lane_cycles,
                ls.occupancy(),
                if i + 1 < sweeps.len() { "," } else { "" },
            );
        }
        json.push_str("    ]\n  }");
    }
    json.push_str("\n}\n");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);

    if let Some(path) = &args.profile_json {
        write_profile_json(path, &profile_captures);
    }

    // Regression gate: geometric mean across per-point measurements vs the
    // committed baseline.
    if let Some(path) = &args.baseline {
        let baseline = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let Some(expected) = baseline_geomean(&baseline) else {
            eprintln!("baseline {path} contains no throughput points");
            std::process::exit(2);
        };
        let measured = baseline_geomean(&json).expect("this run produced points");
        let floor = expected * (1.0 - args.max_regression / 100.0);
        println!(
            "regression gate: measured geomean {measured:.0} vs baseline {expected:.0} \
             (floor {floor:.0}, max regression {:.0}%)",
            args.max_regression
        );
        if measured < floor {
            eprintln!(
                "THROUGHPUT REGRESSION: {measured:.0} sim-instr/s is more than \
                 {:.0}% below the committed baseline {expected:.0}",
                args.max_regression
            );
            std::process::exit(1);
        }
    }
}
