//! Shared helpers for the Criterion benchmarks in `benches/`.
//!
//! Every paper table/figure has a corresponding benchmark target that runs a
//! scaled-down version of the experiment (smoke-scale workloads, a subset of
//! the benchmark suite) so that `cargo bench` finishes quickly while still
//! exercising exactly the same code paths as the full experiment binaries in
//! `earlyreg-experiments`.

use earlyreg_core::ReleasePolicy;
use earlyreg_sim::{MachineConfig, RunLimits, SimStats, Simulator};
use earlyreg_workloads::{workload_by_name, Scale, Workload};

/// Default committed-instruction budget for benchmark simulations.
pub const BENCH_INSTRUCTIONS: u64 = 20_000;

/// Fetch a smoke-scale workload by name (panics if the name is unknown —
/// benchmark configuration error).
pub fn smoke_workload(name: &str) -> Workload {
    workload_by_name(name, Scale::Smoke)
        .unwrap_or_else(|| panic!("unknown workload '{name}' in benchmark configuration"))
}

/// Run one simulation point on the Table 2 machine and return its statistics.
pub fn run_sim(workload: &Workload, policy: ReleasePolicy, registers: usize) -> SimStats {
    run_sim_limited(workload, policy, registers, BENCH_INSTRUCTIONS)
}

/// Run one simulation point with an explicit instruction budget.
pub fn run_sim_limited(
    workload: &Workload,
    policy: ReleasePolicy,
    registers: usize,
    max_instructions: u64,
) -> SimStats {
    let config = MachineConfig::icpp02(policy, registers, registers);
    let mut sim = Simulator::new(config, workload.program.clone());
    sim.run(RunLimits::instructions(max_instructions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_runnable_points() {
        let w = smoke_workload("perl");
        let stats = run_sim(&w, ReleasePolicy::Extended, 48);
        assert!(stats.committed > 1_000);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = smoke_workload("does-not-exist");
    }
}
