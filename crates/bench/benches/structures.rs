//! Micro-benchmarks of the core hardware structures: rename/commit
//! throughput under each policy, Release Queue operations, free list,
//! branch predictor and cache accesses.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use earlyreg_core::{
    FreeList, InstrId, PhysReg, ReleasePolicy, ReleaseQueue, RenameConfig, RenameUnit, UseKind,
};
use earlyreg_isa::{ArchReg, BranchCond, Instruction, Opcode, RegClass};
use earlyreg_sim::{Cache, CacheConfig, GsharePredictor};

fn rename_commit_loop(policy: ReleasePolicy, iterations: u64) -> u64 {
    let mut ru = RenameUnit::new(RenameConfig::icpp02(policy, 96, 96));
    let add = Instruction {
        op: Opcode::IAdd,
        dst: Some(ArchReg::int(1)),
        src1: Some(ArchReg::int(1)),
        src2: Some(ArchReg::int(2)),
        imm: 0,
    };
    let branch = Instruction {
        op: Opcode::Branch(BranchCond::Ne),
        dst: None,
        src1: Some(ArchReg::int(1)),
        src2: None,
        imm: 0,
    };
    let mut released = 0u64;
    let mut pending = std::collections::VecDeque::new();
    for cycle in 0..iterations {
        let instr = if cycle % 8 == 7 { &branch } else { &add };
        if let Ok(renamed) = ru.rename(instr, cycle) {
            pending.push_back((renamed.id, instr.op.is_cond_branch()));
        }
        if pending.len() > 32 {
            let (id, is_branch) = pending.pop_front().unwrap();
            if is_branch {
                ru.resolve_branch_correct(id, cycle);
            }
            released += ru.commit(id, cycle).released.len() as u64;
        }
    }
    released
}

fn bench_rename_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("rename_unit");
    // Registry-driven: a newly registered scheme shows up here by itself.
    // Schemes that need a program trace (the oracle) cannot be driven with
    // this synthetic rename/commit stream; the fig10/fig11 whole-simulator
    // benches cover them.
    for descriptor in earlyreg_core::registry::descriptors() {
        if descriptor.needs_kill_plan {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("rename_commit", descriptor.id),
            &descriptor.policy,
            |b, &policy| b.iter(|| rename_commit_loop(black_box(policy), 2_000)),
        );
    }
    group.finish();
}

fn bench_release_queue(c: &mut Criterion) {
    c.bench_function("release_queue/schedule_confirm", |b| {
        b.iter(|| {
            let mut q = ReleaseQueue::new(160, 160);
            for level in 0..16u64 {
                q.push_level(InstrId(level * 10));
                for reg in 0..8u16 {
                    q.mark_committed_lu(RegClass::Int, PhysReg(reg + level as u16));
                }
                q.mark_inflight_lu(InstrId(level * 10 + 1), UseKind::Dst);
            }
            let mut released = 0;
            for level in 0..16u64 {
                released += q.confirm(InstrId(level * 10)).release_now.len();
            }
            black_box(released)
        })
    });
}

fn bench_free_list(c: &mut Criterion) {
    c.bench_function("free_list/allocate_release", |b| {
        b.iter(|| {
            let mut fl = FreeList::new(160, 32);
            let mut held = Vec::with_capacity(128);
            for _ in 0..128 {
                held.push(fl.allocate().unwrap());
            }
            for p in held {
                fl.release(p);
            }
            black_box(fl.free_count())
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("gshare/predict_resolve", |b| {
        let mut predictor = GsharePredictor::new(18);
        let mut toggle = false;
        b.iter(|| {
            toggle = !toggle;
            let p = predictor.predict(black_box(1234));
            predictor.resolve(&p, toggle);
            if p.taken != toggle {
                predictor.repair(&p, toggle);
            }
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("dcache/strided_access", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        });
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xf_ffff;
            black_box(cache.access(addr))
        })
    });
}

criterion_group!(
    benches,
    bench_rename_unit,
    bench_release_queue,
    bench_free_list,
    bench_predictor,
    bench_cache
);
criterion_main!(benches);
