//! Figure 9 benchmark: the analytic register-file delay/energy sweep
//! (40–160 registers) plus the Section 4.4 energy balance.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use earlyreg_rfmodel::{access_energy_pj, access_time_ns, energy_balance, RfGeometry};

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("fig09/delay_energy_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for registers in (40..=160).step_by(8) {
                total += access_time_ns(RfGeometry::int_file(registers));
                total += access_time_ns(RfGeometry::fp_file(registers));
                total += access_energy_pj(RfGeometry::int_file(registers));
                total += access_energy_pj(RfGeometry::fp_file(registers));
            }
            total += access_time_ns(RfGeometry::lus_table());
            total += access_energy_pj(RfGeometry::lus_table());
            black_box(total)
        })
    });
    c.bench_function("sec44/energy_balance", |b| {
        b.iter(|| black_box(energy_balance(64, 79, 56, 72).relative_difference()))
    });
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);
