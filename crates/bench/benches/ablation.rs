//! Ablation benchmarks for the reproduction's design choices:
//!
//! * register **reuse** on a committed last use (Section 3.2 optimisation)
//!   versus releasing and reallocating;
//! * the depth of the speculation window (maximum pending branches), which
//!   bounds both the checkpoint stack and the Release Queue;
//! * the extended mechanism's Release Queue versus falling back to the
//!   conventional path under speculation (i.e. extended vs basic).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use earlyreg_bench::smoke_workload;
use earlyreg_core::ReleasePolicy;
use earlyreg_sim::{MachineConfig, RunLimits, Simulator};
use earlyreg_workloads::Workload;

fn run_with(
    workload: &Workload,
    policy: ReleasePolicy,
    registers: usize,
    reuse: bool,
    max_pending_branches: usize,
) -> f64 {
    let mut config = MachineConfig::icpp02(policy, registers, registers);
    config.rename.reuse_on_committed_lu = reuse;
    config.rename.max_pending_branches = max_pending_branches;
    let mut sim = Simulator::new(config, workload.program.clone());
    sim.run(RunLimits {
        max_instructions: 20_000,
        max_cycles: 2_000_000,
    })
    .ipc()
}

fn bench_reuse_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_reuse");
    group.sample_size(10);
    let workload = smoke_workload("tomcatv");
    for reuse in [true, false] {
        group.bench_with_input(
            BenchmarkId::new(
                "extended_48",
                if reuse { "reuse" } else { "release_realloc" },
            ),
            &reuse,
            |b, &reuse| {
                b.iter(|| black_box(run_with(&workload, ReleasePolicy::Extended, 48, reuse, 20)))
            },
        );
    }
    group.finish();
}

fn bench_speculation_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pending_branches");
    group.sample_size(10);
    let workload = smoke_workload("gcc");
    for depth in [4usize, 20] {
        group.bench_with_input(
            BenchmarkId::new("extended_48", format!("depth_{depth}")),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    black_box(run_with(
                        &workload,
                        ReleasePolicy::Extended,
                        48,
                        true,
                        depth,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_release_queue_vs_fallback(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_conditional_release");
    group.sample_size(10);
    let workload = smoke_workload("gcc");
    for policy in [ReleasePolicy::Basic, ReleasePolicy::Extended] {
        group.bench_with_input(
            BenchmarkId::new("gcc_44", policy.label()),
            &policy,
            |b, &policy| b.iter(|| black_box(run_with(&workload, policy, 44, true, 20))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reuse_ablation,
    bench_speculation_depth,
    bench_release_queue_vs_fallback
);
criterion_main!(benches);
