//! Figure 10 benchmark: IPC at 48int + 48FP registers under every policy in
//! the registry (one integer and one FP workload, smoke scale) — newly
//! registered schemes are benchmarked automatically.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use earlyreg_bench::{run_sim, smoke_workload};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_ipc48");
    group.sample_size(10);
    for name in ["compress", "hydro2d"] {
        let workload = smoke_workload(name);
        for policy in earlyreg_core::registry::registered() {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_48"), policy.label()),
                &(workload.clone(), policy),
                |b, (w, policy)| b.iter(|| black_box(run_sim(w, *policy, 48).ipc())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
