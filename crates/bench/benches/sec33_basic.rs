//! Section 3.3 benchmark: basic-mechanism speedup at very tight register
//! files (40 registers per class).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use earlyreg_bench::{run_sim, smoke_workload};
use earlyreg_core::ReleasePolicy;

fn bench_sec33(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec33_basic");
    group.sample_size(10);
    for name in ["go", "mgrid"] {
        let workload = smoke_workload(name);
        for policy in [ReleasePolicy::Conventional, ReleasePolicy::Basic] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_40"), policy.label()),
                &(workload.clone(), policy),
                |b, (w, policy)| b.iter(|| black_box(run_sim(w, *policy, 40).ipc())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sec33);
criterion_main!(benches);
