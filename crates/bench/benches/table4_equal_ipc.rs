//! Table 4 benchmark: the equal-IPC search — measure the conventional IPC at
//! a reference size, sample the extended curve and interpolate the matching
//! (smaller) register file size.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use earlyreg_bench::{run_sim, smoke_workload};
use earlyreg_core::ReleasePolicy;
use earlyreg_experiments::interpolate_equal_ipc;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_equal_ipc");
    group.sample_size(10);
    let workload = smoke_workload("applu");
    group.bench_function("applu_69_to_extended", |b| {
        b.iter(|| {
            let target = run_sim(&workload, ReleasePolicy::Conventional, 69).ipc();
            let curve: Vec<(usize, f64)> = [48usize, 56, 64, 72]
                .iter()
                .map(|&size| {
                    (
                        size,
                        run_sim(&workload, ReleasePolicy::Extended, size).ipc(),
                    )
                })
                .collect();
            black_box(interpolate_equal_ipc(&curve, target))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
