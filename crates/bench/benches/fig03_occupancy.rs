//! Figure 3 benchmark: Empty/Ready/Idle occupancy measurement under
//! conventional renaming (one integer and one FP workload, smoke scale).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use earlyreg_bench::{run_sim, smoke_workload};
use earlyreg_core::ReleasePolicy;

fn bench_fig03(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig03_occupancy");
    group.sample_size(10);
    for name in ["gcc", "swim"] {
        let workload = smoke_workload(name);
        group.bench_with_input(
            BenchmarkId::new("conventional_96", name),
            &workload,
            |b, w| {
                b.iter(|| {
                    let stats = run_sim(w, ReleasePolicy::Conventional, 96);
                    // The figure's metric: average idle registers (the waste the
                    // early-release mechanisms reclaim).
                    black_box(stats.occupancy_int.avg_idle() + stats.occupancy_fp.avg_idle())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig03);
criterion_main!(benches);
