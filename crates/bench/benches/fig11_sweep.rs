//! Figure 11 benchmark: the IPC-vs-register-file-size sweep (three sizes,
//! every registered policy, one FP workload, smoke scale) — newly registered
//! schemes are benchmarked automatically.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use earlyreg_bench::{run_sim, smoke_workload};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_sweep");
    group.sample_size(10);
    let workload = smoke_workload("swim");
    for &size in &[40usize, 64, 128] {
        for policy in earlyreg_core::registry::registered() {
            group.bench_with_input(
                BenchmarkId::new(format!("swim_{size}"), policy.label()),
                &(size, policy),
                |b, &(size, policy)| b.iter(|| black_box(run_sim(&workload, policy, size).ipc())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
