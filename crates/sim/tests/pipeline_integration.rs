//! End-to-end pipeline tests: small hand-written programs run to completion
//! under every release policy, and the committed state must match the
//! architectural emulator (the golden model).

use earlyreg_core::ReleasePolicy;
use earlyreg_isa::{ArchReg, BranchCond, Opcode, Program, ProgramBuilder};
use earlyreg_sim::{verify_against_emulator, MachineConfig, RunLimits, Simulator};

/// Sum of 1..=n with the result stored to memory.
fn sum_program(n: i64) -> Program {
    let mut b = ProgramBuilder::new("sum");
    let i = ArchReg::int(1);
    let acc = ArchReg::int(2);
    let base = ArchReg::int(3);
    b.li(i, n);
    b.li(acc, 0);
    b.li(base, 0);
    let top = b.here();
    b.add(acc, acc, i);
    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);
    b.store_int(base, 0, acc);
    b.halt();
    b.build().unwrap()
}

/// A branchy program with data-dependent directions (hard to predict) and
/// frequent redefinitions — exercises mispredict recovery plus early release.
fn branchy_program(iterations: i64) -> Program {
    let mut b = ProgramBuilder::new("branchy");
    b.set_memory_words(1 << 12);
    let i = ArchReg::int(1);
    let x = ArchReg::int(2);
    let acc = ArchReg::int(3);
    let tmp = ArchReg::int(4);
    let base = ArchReg::int(5);
    let bit = ArchReg::int(6);
    b.li(i, iterations);
    b.li(x, 0x9e37_79b9);
    b.li(acc, 0);
    b.li(base, 16);
    let top = b.here();
    // x = x * 1103515245 + 12345 (LCG), bit = (x >> 16) & 1
    b.li(tmp, 1103515245);
    b.mul(x, x, tmp);
    b.addi(x, x, 12345);
    b.iopi(Opcode::IShrImm, bit, x, 16);
    b.iopi(Opcode::IAndImm, bit, bit, 1);
    let odd = b.new_label();
    let join = b.new_label();
    b.branch(BranchCond::Ne, bit, None, odd);
    b.addi(acc, acc, 3);
    b.jump(join);
    b.bind(odd);
    b.iopi(Opcode::IShlImm, tmp, acc, 1);
    b.sub(acc, tmp, acc);
    b.addi(acc, acc, -1);
    b.bind(join);
    // store and reload the accumulator to exercise the LSQ
    b.store_int(base, 0, acc);
    b.load_int(acc, base, 0);
    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);
    b.store_int(base, 1, acc);
    b.halt();
    b.build().unwrap()
}

/// An FP kernel with long dependence chains, many live values and loads and
/// stores — exercises FP latencies and register pressure.
fn fp_program(iterations: i64) -> Program {
    let mut b = ProgramBuilder::new("fpkernel");
    b.set_memory_words(1 << 12);
    let data: Vec<f64> = (0..64).map(|k| 1.0 + k as f64 * 0.25).collect();
    let base_addr = b.data_f64(&data);
    let i = ArchReg::int(1);
    let base = ArchReg::int(2);
    let idx = ArchReg::int(3);
    let f: Vec<ArchReg> = (0..10).map(ArchReg::fp).collect();
    b.li(i, iterations);
    b.li(base, base_addr);
    b.li(idx, 0);
    b.fli(f[0], 0.0);
    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, 63);
    let addr = ArchReg::int(4);
    b.add(addr, base, idx);
    b.load_fp(f[1], addr, 0);
    b.load_fp(f[2], addr, 1);
    b.fmul(f[3], f[1], f[2]);
    b.fadd(f[4], f[1], f[2]);
    b.fdiv(f[5], f[3], f[4]);
    b.fsub(f[6], f[3], f[5]);
    b.fmul(f[7], f[6], f[1]);
    b.fadd(f[8], f[7], f[5]);
    b.fadd(f[0], f[0], f[8]);
    b.store_fp(addr, 64, f[0]);
    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);
    b.halt();
    b.build().unwrap()
}

fn run_and_verify(program: &Program, policy: ReleasePolicy, phys: usize) -> earlyreg_sim::SimStats {
    let config = MachineConfig::icpp02(policy, phys, phys);
    let mut sim = Simulator::new(config, program.clone());
    let stats = sim.run(RunLimits::default());
    assert!(
        stats.halted,
        "{} did not halt under {policy:?}",
        program.name
    );
    let outcome = verify_against_emulator(&sim, program);
    assert!(
        outcome.is_match(),
        "{} diverged from the emulator under {policy:?} with {phys} registers: {outcome:?}",
        program.name
    );
    assert_eq!(stats.oracle_violations, 0);
    stats
}

#[test]
fn sum_program_matches_emulator_under_all_policies() {
    let p = sum_program(200);
    for policy in earlyreg_core::registry::registered() {
        let stats = run_and_verify(&p, policy, 64);
        assert!(stats.ipc() > 0.5, "IPC unexpectedly low: {}", stats.ipc());
    }
}

#[test]
fn branchy_program_matches_emulator_under_all_policies() {
    let p = branchy_program(300);
    for policy in earlyreg_core::registry::registered() {
        let stats = run_and_verify(&p, policy, 48);
        assert!(
            stats.mispredicted_branches > 0,
            "the LCG branch should mispredict sometimes"
        );
        assert!(stats.committed_branches > 0);
    }
}

#[test]
fn fp_program_matches_emulator_under_all_policies() {
    let p = fp_program(300);
    for policy in earlyreg_core::registry::registered() {
        let stats = run_and_verify(&p, policy, 48);
        assert!(stats.committed_loads > 0);
        assert!(stats.committed_stores > 0);
    }
}

#[test]
fn very_tight_register_files_still_produce_correct_results() {
    // 34 physical registers = 32 architectural + 2 rename buffers: maximum
    // pressure, lots of rename stalls, still correct.
    let p = fp_program(100);
    for policy in earlyreg_core::registry::registered() {
        let stats = run_and_verify(&p, policy, 34);
        assert!(
            stats.rename_stalls.free_list > 0,
            "tight file must cause free-list stalls"
        );
    }
}

#[test]
fn early_release_does_not_hurt_and_usually_helps_ipc() {
    let p = fp_program(400);
    let conv = run_and_verify(&p, ReleasePolicy::Conventional, 40).ipc();
    let basic = run_and_verify(&p, ReleasePolicy::Basic, 40).ipc();
    let extended = run_and_verify(&p, ReleasePolicy::Extended, 40).ipc();
    // Allow a sliver of noise, but the ordering conv <= basic <= extended
    // must hold in the tight-register regime.
    assert!(basic >= conv * 0.98, "basic {basic} vs conv {conv}");
    assert!(
        extended >= basic * 0.98,
        "extended {extended} vs basic {basic}"
    );
    assert!(
        extended > conv,
        "extended {extended} should beat conventional {conv}"
    );
}

#[test]
fn idle_registers_shrink_with_early_release() {
    let p = fp_program(400);
    let config = MachineConfig::icpp02(ReleasePolicy::Conventional, 96, 96);
    let mut conv = Simulator::new(config, p.clone());
    let conv_stats = conv.run(RunLimits::default());

    let config = MachineConfig::icpp02(ReleasePolicy::Extended, 96, 96);
    let mut ext = Simulator::new(config, p.clone());
    let ext_stats = ext.run(RunLimits::default());

    assert!(
        ext_stats.occupancy_fp.avg_idle() < conv_stats.occupancy_fp.avg_idle(),
        "extended idle {} must be below conventional idle {}",
        ext_stats.occupancy_fp.avg_idle(),
        conv_stats.occupancy_fp.avg_idle()
    );
}

#[test]
fn exception_injection_recovers_precisely() {
    let p = branchy_program(200);
    for policy in earlyreg_core::registry::registered() {
        let mut config = MachineConfig::icpp02(policy, 48, 48);
        config.exceptions.interval = Some(97);
        config.exceptions.handler_cycles = 20;
        let mut sim = Simulator::new(config, p.clone());
        let stats = sim.run(RunLimits::default());
        assert!(stats.halted);
        assert!(stats.exceptions > 0, "exceptions should have been injected");
        let outcome = verify_against_emulator(&sim, &p);
        assert!(
            outcome.is_match(),
            "{policy:?} diverged after exception recovery: {outcome:?}"
        );
        assert_eq!(stats.oracle_violations, 0);
    }
}

#[test]
fn committed_instruction_count_is_policy_independent() {
    // The release policy must never change *what* commits, only how fast.
    let p = branchy_program(150);
    let counts: Vec<u64> = earlyreg_core::registry::registered()
        .map(|policy| run_and_verify(&p, policy, 48).committed)
        .collect();
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "committed counts differ across policies: {counts:?}"
    );
}

#[test]
fn run_limits_stop_the_simulation() {
    let p = sum_program(100_000);
    let config = MachineConfig::icpp02(ReleasePolicy::Extended, 64, 64);
    let mut sim = Simulator::new(config, p.clone());
    let stats = sim.run(RunLimits::instructions(5_000));
    assert!(!stats.halted);
    assert!(stats.committed >= 5_000);
    assert!(stats.committed < 6_000);
}
