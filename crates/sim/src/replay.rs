//! Trace-replay support: per-program memoized [`DecodedTrace`] capture and
//! the fetch-side replay cursor.
//!
//! ## How replay works
//!
//! A [`DecodedTrace`] records one architectural-emulator pass over a program:
//! the committed instruction stream with resolved branch directions,
//! effective addresses, result values and register kill events.  A simulator
//! built with [`Simulator::with_replay`](crate::Simulator::with_replay)
//! walks a cursor through that trace during fetch:
//!
//! * A fetched instruction whose PC matches the cursor is **on-trace**: it is
//!   tagged with its trace index, and the execute stage later reads its
//!   outcome (result bits, branch direction, effective address) from the
//!   trace instead of reading operands and recomputing — *timing* is still
//!   simulated in full (operand readiness, functional units, caches, LSQ
//!   ordering), so statistics are bit-identical to live execution.
//! * When a conditional branch's *prediction* disagrees with the recorded
//!   direction, fetch has just turned onto the wrong path: the cursor stops
//!   and every subsequent fetch is executed **live**, exactly as without a
//!   trace (wrong-path instructions perturb predictor, caches and functional
//!   units, and the live semantics reproduce that bit-for-bit).
//! * Recovery re-synchronises the cursor: a mispredicted on-trace branch
//!   resumes the trace right after itself; a precise exception rewinds the
//!   cursor to the squashed head's trace position.
//! * A cursor that runs past the capture budget simply degrades to live
//!   fetch/execute — correct-path live execution computes the same values
//!   the trace would have carried.
//!
//! Because every divergence degrades to live execution, replay is safe by
//! construction: the trace is an *accelerator*, never an oracle the
//! simulation depends on.  `tests/stats_equivalence.rs` pins bit-identical
//! `SimStats` between the two front-ends for every registered policy.
//!
//! ## Disabling replay
//!
//! Set `EARLYREG_NO_REPLAY=1` to make the sweep paths
//! (`earlyreg-experiments`, `earlyreg-serve`, the throughput benchmark)
//! construct plain live-front-end simulators — useful when bisecting a
//! suspected replay bug, at the cost of sweep throughput.

use earlyreg_isa::{DecodedTrace, Program};
use std::sync::{Arc, Mutex, Weak};

/// Extra trace positions captured beyond the committed-instruction budget:
/// fetch runs ahead of commit by at most the reorder window plus the fetch
/// buffer, so this slack keeps the tail of a budget-limited run on-trace.
/// (Running off the end is still correct — fetch degrades to live.)
pub const TRACE_SLACK: u64 = 4096;

/// True when `EARLYREG_NO_REPLAY` is set (to anything non-empty): sweep
/// paths should build live-front-end simulators for debugging.
pub fn replay_disabled() -> bool {
    std::env::var_os("EARLYREG_NO_REPLAY").is_some_and(|v| !v.is_empty())
}

/// The decoded trace for a shared program, memoized by `Arc` identity like
/// the oracle kill plan: experiment sweeps hand the same `Arc<Program>` to
/// every lane, so the capture pass runs once per (program, budget) instead
/// of once per point.  A cached trace is reused when it already covers
/// `min_steps` (or the whole execution); a longer request replaces it.
/// Entries are dropped when their program is; a racing duplicate capture is
/// benign — the traces are identical.
pub fn decoded_trace_for(program: &Arc<Program>, min_steps: u64) -> Arc<DecodedTrace> {
    static CACHE: Mutex<Vec<(Weak<Program>, Arc<DecodedTrace>)>> = Mutex::new(Vec::new());

    let covers = |trace: &DecodedTrace| trace.halted() || trace.len() as u64 >= min_steps;
    let lookup = |cache: &mut Vec<(Weak<Program>, Arc<DecodedTrace>)>| {
        cache.retain(|(weak, _)| weak.strong_count() > 0);
        cache.iter().find_map(|(weak, trace)| {
            let strong = weak.upgrade()?;
            (Arc::ptr_eq(&strong, program) && covers(trace)).then(|| Arc::clone(trace))
        })
    };

    if let Some(trace) = lookup(&mut CACHE.lock().expect("trace cache poisoned")) {
        return trace;
    }
    let fresh = {
        let _t = crate::profile::prof::scope(crate::profile::prof::Phase::TraceCapture);
        Arc::new(DecodedTrace::capture(program, min_steps))
    };
    let mut cache = CACHE.lock().expect("trace cache poisoned");
    if let Some(trace) = lookup(&mut cache) {
        return trace; // a racing capture won; use its (identical) trace
    }
    // Replace a shorter capture of the same program instead of stacking.
    cache.retain(|(weak, _)| {
        weak.upgrade()
            .is_none_or(|strong| !Arc::ptr_eq(&strong, program))
    });
    cache.push((Arc::downgrade(program), Arc::clone(&fresh)));
    fresh
}

/// Fetch-side replay state: the shared trace and the cursor over it.
#[derive(Debug, Clone)]
pub struct ReplayCursor {
    /// The shared decoded trace.
    pub trace: Arc<DecodedTrace>,
    /// Next trace position to fetch while on-trace.
    pub cursor: usize,
    /// False while fetch is on the wrong path (or past the capture budget):
    /// instructions fetched now are not covered by the trace.
    pub on_trace: bool,
}

impl ReplayCursor {
    /// Start replaying `trace` from its beginning.
    pub fn new(trace: Arc<DecodedTrace>) -> Self {
        ReplayCursor {
            trace,
            cursor: 0,
            on_trace: true,
        }
    }

    /// Claim the trace position for an instruction fetched at `pc`, if fetch
    /// is on-trace and the trace covers (and agrees with) this fetch.
    /// Returns [`earlyreg_isa::NO_TRACE`] otherwise.
    #[inline]
    pub fn claim(&mut self, pc: usize) -> u32 {
        if !self.on_trace || self.cursor >= self.trace.len() {
            return earlyreg_isa::NO_TRACE;
        }
        if self.trace.pc(self.cursor) != pc {
            // Unreachable under the cursor protocol; degrade to live fetch
            // rather than replaying a wrong outcome.
            debug_assert!(false, "replay cursor desynchronised at pc {pc}");
            self.on_trace = false;
            return earlyreg_isa::NO_TRACE;
        }
        let idx = self.cursor as u32;
        self.cursor += 1;
        idx
    }

    /// Fetch turned onto the wrong path (a prediction disagreed with the
    /// recorded direction): stop claiming until a recovery re-synchronises.
    #[inline]
    pub fn diverge(&mut self) {
        self.on_trace = false;
    }

    /// A branch at trace position `idx` (or [`earlyreg_isa::NO_TRACE`] for a
    /// wrong-path branch) mispredicted and fetch restarts after it.
    #[inline]
    pub fn resume_after_branch(&mut self, idx: u32) {
        if idx == earlyreg_isa::NO_TRACE {
            // A wrong-path branch redirecting within the wrong path: fetch
            // stays off-trace until the on-trace branch below it resolves.
            self.on_trace = false;
        } else {
            self.cursor = idx as usize + 1;
            self.on_trace = true;
        }
    }

    /// A precise exception squashed everything and fetch restarts at the
    /// old head, whose trace position was `idx` ([`earlyreg_isa::NO_TRACE`]
    /// when the head was past the capture budget).
    #[inline]
    pub fn resume_at(&mut self, idx: u32) {
        if idx == earlyreg_isa::NO_TRACE {
            self.on_trace = false;
        } else {
            self.cursor = idx as usize;
            self.on_trace = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::{ArchReg, BranchCond, ProgramBuilder};

    fn tiny_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new("replay-tiny");
        let i = ArchReg::int(1);
        b.li(i, 3);
        let top = b.here();
        b.addi(i, i, -1);
        b.branch(BranchCond::Gt, i, None, top);
        b.halt();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn memoized_capture_is_shared_per_program() {
        let p = tiny_program();
        let a = decoded_trace_for(&p, 1_000);
        let b = decoded_trace_for(&p, 1_000);
        assert!(Arc::ptr_eq(&a, &b), "same program must share one trace");
        let other = tiny_program();
        let c = decoded_trace_for(&other, 1_000);
        assert!(!Arc::ptr_eq(&a, &c), "distinct Arcs get distinct traces");
        assert_eq!(a.fingerprint(), c.fingerprint(), "but identical content");
    }

    #[test]
    fn longer_request_replaces_a_capped_trace() {
        let mut b = ProgramBuilder::new("replay-long");
        let i = ArchReg::int(1);
        b.li(i, 1_000);
        let top = b.here();
        b.addi(i, i, -1);
        b.branch(BranchCond::Gt, i, None, top);
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let short = decoded_trace_for(&p, 10);
        assert_eq!(short.len(), 10);
        let long = decoded_trace_for(&p, 50);
        assert!(long.len() >= 50);
        // The longer capture replaced the short one in the cache.
        let again = decoded_trace_for(&p, 10);
        assert!(Arc::ptr_eq(&long, &again));
    }

    #[test]
    fn cursor_claims_and_recovers() {
        let p = tiny_program();
        let trace = decoded_trace_for(&p, 1_000);
        let mut cur = ReplayCursor::new(Arc::clone(&trace));
        assert_eq!(cur.claim(trace.pc(0)), 0);
        assert_eq!(cur.claim(trace.pc(1)), 1);
        cur.diverge();
        assert_eq!(cur.claim(trace.pc(2)), earlyreg_isa::NO_TRACE);
        cur.resume_after_branch(1);
        assert_eq!(cur.claim(trace.pc(2)), 2);
        cur.resume_at(0);
        assert_eq!(cur.claim(trace.pc(0)), 0);
        // Past the end: degrade to live.
        cur.cursor = trace.len();
        assert_eq!(cur.claim(0), earlyreg_isa::NO_TRACE);
    }
}
