//! The cycle-level out-of-order pipeline.
//!
//! The machine model follows the paper's Table 2 and SimpleScalar's
//! register-update-unit organisation: an 8-wide front end with an 18-bit
//! gshare predictor, a 128-entry reorder structure that doubles as the issue
//! window, a 64-entry load/store queue with forwarding and conservative load
//! scheduling, the Table 2 functional-unit mix, split 32 KB L1 caches backed
//! by a 1 MB L2 and 50-cycle memory, and 8-wide in-order commit.
//!
//! Register renaming and physical-register release are delegated entirely to
//! [`earlyreg_core::RenameUnit`], so the same pipeline runs under every
//! release scheme in the policy registry — the paper's conventional, basic
//! and extended mechanisms (exactly the experiment the paper performs) as
//! well as the oracle upper bound and any scheme registered later.  The only
//! policy-aware step here is construction: schemes whose descriptor asks for
//! a committed-trace kill plan get one derived from the architectural
//! emulator.
//!
//! Wrong-path instructions are fetched, renamed and executed (consuming
//! physical registers, issue slots and cache bandwidth) and are squashed when
//! the mispredicted branch resolves, as in `sim-outorder`.  Wrong-path stores
//! never modify architectural memory because stores write at commit.
//!
//! ## Hot-loop organisation
//!
//! The per-cycle loop is event-driven rather than scan-based: instead of
//! walking the whole 128-entry window every cycle for issue candidates and
//! completions, the pipeline maintains three incremental structures keyed by
//! `(InstrId, slot)` pairs into the ring-buffer reorder structure:
//!
//! * **wakeup lists** (`waiters`): per physical register, the dispatched
//!   consumers still waiting for it.  Writeback drains the destination's
//!   list and decrements each consumer's `waiting_srcs` count.
//! * **attention list** (`attention`): dispatched instructions that the
//!   issue stage must examine — fully source-ready candidates, plus stores
//!   whose base register is ready but whose address is not yet published to
//!   the LSQ.  The list is kept sorted by id so selection priority (oldest
//!   first, bounded by the issue width) matches the program-order scan it
//!   replaces.
//! * **completion buckets** (`completions`): a cycle-indexed ring of
//!   scheduled completion events, filled at issue time and drained at
//!   writeback.
//!
//! Entries referencing squashed instructions are dropped lazily: every
//! consumer revalidates the cached slot's id before acting.  All per-cycle
//! collections are persistent members, so steady-state cycles perform no
//! heap allocation.

use crate::branch::GsharePredictor;
use crate::cache::MemoryHierarchy;
use crate::config::MachineConfig;
use crate::frontend::{
    front_end_table_for, FetchBuffer, FetchedInstr, FrontEndTable, FETCH_BRANCH, FETCH_HALT,
    FETCH_JUMP,
};
use crate::fu::FuPool;
use crate::lsq::{ForwardResult, LoadStoreQueue};
use crate::profile::prof;
use crate::replay::ReplayCursor;
use crate::rob::{InstrState, ReorderBuffer, RobEntry};
use crate::stats::SimStats;
use earlyreg_core::{
    InstrId, KillPlan, PhysReg, RenameStall, RenameUnit, RenamedInstr, SchemeSeed,
};
use earlyreg_isa::{semantics, ArchReg, DecodedTrace, Opcode, Program, RegClass, NO_TRACE};
use std::sync::Arc;

/// The committed-trace kill plan for a shared program, memoized by `Arc`
/// identity: experiment sweeps hand the same `Arc<Program>` to every
/// simulator instance, so the architectural emulation behind an
/// oracle-style scheme runs once per program instead of once per point.
/// Entries are dropped when their program is (weak references), and the
/// derivation runs outside the lock so distinct programs build in parallel
/// (a racing duplicate derivation is benign — the plans are identical).
/// `build` supplies the plan on a miss: either a fresh emulator pass
/// ([`KillPlan::for_program`]) or a conversion of an already-captured
/// replay trace ([`KillPlan::from_trace`]) — the plans are identical.
fn memoized_kill_plan(
    program: &Arc<Program>,
    build: impl FnOnce() -> Result<KillPlan, String>,
) -> Result<Arc<earlyreg_core::KillPlan>, String> {
    use std::sync::{Mutex, Weak};
    static CACHE: Mutex<Vec<(Weak<Program>, Arc<KillPlan>)>> = Mutex::new(Vec::new());

    let lookup = |cache: &mut Vec<(Weak<Program>, Arc<KillPlan>)>| {
        cache.retain(|(weak, _)| weak.strong_count() > 0);
        cache.iter().find_map(|(weak, plan)| {
            let strong = weak.upgrade()?;
            Arc::ptr_eq(&strong, program).then(|| Arc::clone(plan))
        })
    };

    if let Some(plan) = lookup(&mut CACHE.lock().expect("kill-plan cache poisoned")) {
        return Ok(plan);
    }
    let fresh = Arc::new(build()?);
    let mut cache = CACHE.lock().expect("kill-plan cache poisoned");
    if let Some(plan) = lookup(&mut cache) {
        return Ok(plan); // a racing builder won; use its (identical) plan
    }
    cache.push((Arc::downgrade(program), Arc::clone(&fresh)));
    Ok(fresh)
}

fn kill_plan_for(program: &Arc<Program>) -> Result<Arc<earlyreg_core::KillPlan>, String> {
    memoized_kill_plan(program, || KillPlan::for_program(program))
}

/// Bytes per instruction (used to form I-cache addresses).
const INSTR_BYTES: u64 = 4;
/// Bytes per data word (used to form D-cache addresses).
const WORD_BYTES: u64 = 8;

/// Run limits for [`Simulator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimits {
    /// Stop after this many committed instructions (even if the program has
    /// not halted).
    pub max_instructions: u64,
    /// Hard cycle limit (guards against pathological configurations).
    pub max_cycles: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_instructions: u64::MAX,
            max_cycles: u64::MAX,
        }
    }
}

impl RunLimits {
    /// Cycle budget granted per requested instruction by
    /// [`RunLimits::instructions`]: even the most stall-bound configuration
    /// the paper sweeps stays well under 64 CPI.
    pub const MAX_CYCLES_PER_INSTRUCTION: u64 = 64;
    /// Floor of the derived cycle limit, so tiny instruction budgets still
    /// leave room for pathological-but-finite warm-up behaviour.
    pub const MIN_MAX_CYCLES: u64 = 10_000_000;

    /// Limit the number of committed instructions, deriving the guard cycle
    /// limit from it.  This is the single place that policy lives; the
    /// experiment runner, the throughput benchmark and the Criterion helpers
    /// all use it.
    pub fn instructions(n: u64) -> Self {
        RunLimits {
            max_instructions: n,
            max_cycles: n
                .saturating_mul(Self::MAX_CYCLES_PER_INSTRUCTION)
                .max(Self::MIN_MAX_CYCLES),
        }
    }
}

/// Reusable allocation carcasses salvaged from finished simulators.
///
/// Building a `Simulator` allocates ~1 MB of cold memory (the data-memory
/// image, the 2^18-entry predictor table, per-register wakeup queues, the
/// completion ring, ROB/LSQ storage); a fig10 sweep pays that ~30 times for
/// identically-shaped points.  A pool lets [`SimPool::reclaim`] keep those
/// buffers when a point finishes and the pooled constructors
/// ([`Simulator::with_replay_pooled`], [`Simulator::with_scheme_seed_pooled`])
/// re-initialise them instead of re-allocating.  Every reuse path restores
/// the exact freshly-constructed state (memory zeroed + data image copied,
/// counters weakly not-taken, queues empty), so pooled and unpooled
/// simulators are bit-identical — `tests/stats_equivalence.rs` pins this.
/// Per-class (int/fp) per-physical-register lists of `(id, slot)` waiters.
type WaiterTable = [Vec<Vec<(InstrId, u32)>>; 2];

#[derive(Debug, Default)]
pub struct SimPool {
    memories: Vec<Vec<u64>>,
    predictors: Vec<GsharePredictor>,
    hierarchies: Vec<MemoryHierarchy>,
    waiters: Vec<WaiterTable>,
    completions: Vec<Vec<Vec<(InstrId, u32)>>>,
    robs: Vec<ReorderBuffer>,
    lsqs: Vec<LoadStoreQueue>,
}

impl SimPool {
    /// Cap on salvaged carcasses of each kind; beyond it they are dropped
    /// (a lane group never runs wider than this).
    const MAX_POOLED: usize = 32;

    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tear a finished simulator down into the pool.
    pub fn reclaim(&mut self, mut sim: Simulator) {
        if self.memories.len() >= Self::MAX_POOLED {
            return;
        }
        sim.rob.clear();
        sim.lsq.clear();
        self.memories.push(sim.memory);
        self.predictors.push(sim.predictor);
        self.hierarchies.push(sim.mem_hierarchy);
        self.waiters.push(sim.waiters);
        self.completions.push(sim.completions);
        self.robs.push(sim.rob);
        self.lsqs.push(sim.lsq);
    }

    fn take_memory(&mut self, words: usize, data: &[u64]) -> Vec<u64> {
        let mut memory = match self.memories.pop() {
            Some(mut m) => {
                m.clear();
                m.resize(words, 0);
                m
            }
            None => vec![0u64; words],
        };
        memory[..data.len()].copy_from_slice(data);
        memory
    }

    fn take_predictor(&mut self, history_bits: u32) -> GsharePredictor {
        let entries = 1usize << history_bits;
        match self
            .predictors
            .iter()
            .position(|p| p.table_entries() == entries)
        {
            Some(i) => {
                let mut p = self.predictors.swap_remove(i);
                p.reset();
                p
            }
            None => GsharePredictor::new(history_bits),
        }
    }

    fn take_hierarchy(
        &mut self,
        icache: crate::config::CacheConfig,
        dcache: crate::config::CacheConfig,
        l2: crate::config::CacheConfig,
        memory_latency: u32,
    ) -> MemoryHierarchy {
        let pos = self
            .hierarchies
            .iter()
            .position(|h| h.built_with(&icache, &dcache, &l2, memory_latency));
        match pos {
            Some(i) => {
                let mut h = self.hierarchies.swap_remove(i);
                h.reset();
                h
            }
            None => MemoryHierarchy::new(icache, dcache, l2, memory_latency),
        }
    }

    fn take_waiters(&mut self, phys_int: usize, phys_fp: usize) -> WaiterTable {
        match self.waiters.pop() {
            Some(mut w) => {
                for (queues, len) in w.iter_mut().zip([phys_int, phys_fp]) {
                    queues.iter_mut().for_each(Vec::clear);
                    queues.resize_with(len, Vec::new);
                }
                w
            }
            None => [
                (0..phys_int).map(|_| Vec::new()).collect(),
                (0..phys_fp).map(|_| Vec::new()).collect(),
            ],
        }
    }

    fn take_completions(&mut self, buckets: usize) -> Vec<Vec<(InstrId, u32)>> {
        match self.completions.pop() {
            Some(mut c) => {
                c.truncate(buckets);
                c.iter_mut().for_each(Vec::clear);
                c.resize_with(buckets, Vec::new);
                c
            }
            None => (0..buckets).map(|_| Vec::new()).collect(),
        }
    }

    fn take_rob(&mut self, capacity: usize) -> ReorderBuffer {
        match self.robs.iter().position(|r| r.capacity() == capacity) {
            Some(i) => self.robs.swap_remove(i), // cleared at reclaim
            None => ReorderBuffer::new(capacity),
        }
    }

    fn take_lsq(&mut self, capacity: usize) -> LoadStoreQueue {
        match self.lsqs.iter().position(|q| q.capacity() == capacity) {
            Some(i) => self.lsqs.swap_remove(i), // cleared at reclaim
            None => LoadStoreQueue::new(capacity),
        }
    }
}

/// The subset of a [`RobEntry`] the issue/execute paths read.  Copying just
/// these fields (instead of the whole ~200-byte entry) keeps the issue loop's
/// working set small; everything issue *writes* goes through the slot.
struct IssueView {
    id: InstrId,
    pc: usize,
    instr: earlyreg_isa::Instruction,
    renamed: RenamedInstr,
    trace_idx: u32,
}

/// The cycle-level simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
    program: Arc<Program>,
    rename: RenameUnit,
    rob: ReorderBuffer,
    lsq: LoadStoreQueue,
    predictor: GsharePredictor,
    mem_hierarchy: MemoryHierarchy,
    fus: FuPool,

    // Physical register value files and ready bits, per class.
    int_values: Vec<u64>,
    fp_values: Vec<u64>,
    int_ready: Vec<bool>,
    fp_ready: Vec<bool>,

    /// Committed data memory (raw 64-bit words).
    memory: Vec<u64>,

    fetch_buffer: FetchBuffer,
    /// Shared static per-PC fetch facts (kind, I-cache line, target); one
    /// table per (program, line size) serves every lane of a sweep.
    fe_table: Arc<FrontEndTable>,
    fetch_pc: usize,
    fetch_halted: bool,
    fetch_stalled_until: u64,

    // Event-driven scheduling state (see the module documentation).
    /// Dispatched instructions the issue stage must examine.
    attention: Vec<(InstrId, u32)>,
    /// Per class and physical register: dispatched consumers waiting for it.
    waiters: WaiterTable,
    /// Cycle-indexed (power-of-two) ring of scheduled completion events.
    completions: Vec<Vec<(InstrId, u32)>>,
    /// Scratch for the completion events drained in the current cycle.
    completion_scratch: Vec<(InstrId, u32)>,

    /// Trace-replay front-end state (`None` = live front-end).
    replay: Option<ReplayCursor>,

    cycle: u64,
    halted: bool,
    stats: SimStats,
    last_exception_at: Option<u64>,
}

impl Simulator {
    /// Build a simulator for `program` under `config`.  The program is
    /// reference-counted, so sweeps running one workload across many
    /// configurations share a single copy.
    ///
    /// # Panics
    /// Panics if the configuration or the program is invalid.
    pub fn new(config: MachineConfig, program: impl Into<Arc<Program>>) -> Self {
        Self::with_scheme_seed(config, program, SchemeSeed::default())
    }

    /// As [`Simulator::new`], drawing large allocations from `pool` (see
    /// [`SimPool`]).  Bit-identical to the unpooled constructor; the sweep
    /// path uses this for live (no-replay) lanes.
    pub fn new_pooled(
        config: MachineConfig,
        program: impl Into<Arc<Program>>,
        pool: &mut SimPool,
    ) -> Self {
        Self::with_scheme_seed_pooled(config, program.into(), SchemeSeed::default(), pool)
    }

    /// Build a simulator that feeds its pipeline from a pre-captured
    /// [`DecodedTrace`] of `program` instead of re-decoding and re-executing
    /// every instruction (see [`crate::replay`]).  Simulated timing and
    /// statistics are bit-identical to [`Simulator::new`]; sweeps use this
    /// to share one capture pass across every policy×config lane.  When the
    /// scheme needs a kill plan and the trace covers the whole execution,
    /// the plan is derived from the trace — no second emulator pass.
    pub fn with_replay(
        config: MachineConfig,
        program: impl Into<Arc<Program>>,
        trace: Arc<DecodedTrace>,
    ) -> Self {
        let program: Arc<Program> = program.into();
        let mut seed = SchemeSeed::default();
        if config.rename.policy.descriptor().needs_kill_plan && trace.halted() {
            seed.kill_plan = memoized_kill_plan(&program, || KillPlan::from_trace(&trace)).ok();
        }
        let mut sim = Self::with_scheme_seed(config, program, seed);
        sim.replay = Some(ReplayCursor::new(trace));
        sim
    }

    /// As [`Simulator::with_replay`], drawing large allocations from `pool`
    /// (see [`SimPool`]).  Bit-identical to the unpooled constructor.
    pub fn with_replay_pooled(
        config: MachineConfig,
        program: impl Into<Arc<Program>>,
        trace: Arc<DecodedTrace>,
        pool: &mut SimPool,
    ) -> Self {
        let program: Arc<Program> = program.into();
        let mut seed = SchemeSeed::default();
        if config.rename.policy.descriptor().needs_kill_plan && trace.halted() {
            seed.kill_plan = memoized_kill_plan(&program, || KillPlan::from_trace(&trace)).ok();
        }
        let mut sim = Self::with_scheme_seed_pooled(config, program, seed, pool);
        sim.replay = Some(ReplayCursor::new(trace));
        sim
    }

    /// As [`Simulator::new`], with explicit scheme construction data.  The
    /// conformance harness uses this to inject deliberately-broken mutant
    /// schemes through [`SchemeSeed::scheme_override`]; a missing kill plan
    /// is still derived here when the policy's descriptor requires one.
    pub fn with_scheme_seed(
        config: MachineConfig,
        program: impl Into<Arc<Program>>,
        seed: SchemeSeed,
    ) -> Self {
        Self::with_scheme_seed_pooled(config, program.into(), seed, &mut SimPool::default())
    }

    /// As [`Simulator::with_scheme_seed`], drawing large allocations
    /// (memory image, predictor table, scheduling queues, ROB/LSQ) from
    /// `pool` instead of the allocator.  Reused buffers are re-initialised
    /// to exactly the freshly-constructed state, so simulation results are
    /// bit-identical to the unpooled constructors; sweeps use this to erase
    /// per-point construction cost.
    pub fn with_scheme_seed_pooled(
        config: MachineConfig,
        program: impl Into<Arc<Program>>,
        mut seed: SchemeSeed,
        pool: &mut SimPool,
    ) -> Self {
        let program: Arc<Program> = program.into();
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid machine configuration: {e}"));
        program
            .validate()
            .unwrap_or_else(|e| panic!("invalid program: {e}"));

        let memory = pool.take_memory(program.memory_words, &program.data);

        let phys_int = config.rename.phys_int;
        let phys_fp = config.rename.phys_fp;

        // Oracle-style schemes need future knowledge: the committed-stream
        // last-use plan, derived by running the architectural emulator over
        // the program once.  Plans are memoized per shared program, so a
        // sweep building many simulators over one `Arc<Program>` emulates it
        // once, not once per point.  Schemes that don't ask cost nothing.
        if seed.kill_plan.is_none()
            && seed.scheme_override.is_none()
            && config.rename.policy.descriptor().needs_kill_plan
        {
            let plan = kill_plan_for(&program).unwrap_or_else(|e| {
                panic!(
                    "cannot build the '{}' release scheme: {e}",
                    config.rename.policy
                )
            });
            seed.kill_plan = Some(plan);
        }
        let rename = RenameUnit::with_seed(config.rename, seed);

        Simulator {
            rename,
            rob: pool.take_rob(config.ros_size),
            lsq: pool.take_lsq(config.lsq_size),
            predictor: pool.take_predictor(config.predictor.gshare_bits),
            mem_hierarchy: pool.take_hierarchy(
                config.icache,
                config.dcache,
                config.l2,
                config.memory_latency,
            ),
            fus: FuPool::new(config.fu_counts),
            int_values: vec![0; phys_int],
            fp_values: vec![0; phys_fp],
            int_ready: vec![true; phys_int],
            fp_ready: vec![true; phys_fp],
            memory,
            fetch_buffer: FetchBuffer::new(config.fetch_buffer),
            fe_table: front_end_table_for(&program, config.icache.line_bytes as u64),
            fetch_pc: 0,
            fetch_halted: false,
            fetch_stalled_until: 0,
            attention: Vec::new(),
            waiters: pool.take_waiters(phys_int, phys_fp),
            // Sized past the longest fixed latency (an L1 miss that falls
            // through L2 to memory); grown on demand for exotic configs.
            completions: pool.take_completions(128),
            completion_scratch: Vec::new(),
            replay: None,
            cycle: 0,
            halted: false,
            stats: SimStats::default(),
            last_exception_at: None,
            program,
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True once the program's `Halt` has committed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Statistics gathered so far (occupancy/release fields are refreshed by
    /// [`Simulator::run`] when it returns).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The rename/release engine (for tests that want to inspect it).
    pub fn rename_unit(&self) -> &RenameUnit {
        &self.rename
    }

    /// Release high-water scratch capacity accumulated by branch-storm
    /// phases (checkpoint journal, squash buffers).  Lane groups call this
    /// at the point boundary so pooled carcasses don't carry peak-workload
    /// footprints forward.
    pub fn trim_scratch(&mut self) {
        self.rename.trim_scratch();
    }

    /// True when this simulator feeds its pipeline from a replay trace.
    pub fn replaying(&self) -> bool {
        self.replay.is_some()
    }

    /// True while the replay cursor is synchronised with fetch (false for
    /// live-front-end simulators, and while fetch runs a wrong path).  Lane
    /// groups use this as the divergence signal: a detached lane re-attaches
    /// once its cursor re-synchronises at recovery.
    pub fn replay_on_trace(&self) -> bool {
        self.replay.as_ref().is_some_and(|c| c.on_trace)
    }

    /// Committed data memory.
    pub fn committed_memory(&self) -> &[u64] {
        &self.memory
    }

    /// Architectural value of a logical register as a raw 64-bit pattern.
    pub fn arch_reg_bits(&self, reg: ArchReg) -> u64 {
        let phys = self.rename.arch_mapping(reg);
        match reg.class() {
            RegClass::Int => self.int_values[phys.index()],
            RegClass::Fp => self.fp_values[phys.index()],
        }
    }

    /// True when the architectural value of `reg` is a dead value discarded
    /// by early release (see `RenameUnit::arch_value_unreliable`).
    pub fn arch_value_unreliable(&self, reg: ArchReg) -> bool {
        self.rename.arch_value_unreliable(reg)
    }

    // ------------------------------------------------------------------
    // Register value helpers
    // ------------------------------------------------------------------

    fn phys_ready(&self, reg: ArchReg, phys: PhysReg) -> bool {
        match reg.class() {
            RegClass::Int => self.int_ready[phys.index()],
            RegClass::Fp => self.fp_ready[phys.index()],
        }
    }

    fn set_phys_ready(&mut self, class: RegClass, phys: PhysReg, ready: bool) {
        match class {
            RegClass::Int => self.int_ready[phys.index()] = ready,
            RegClass::Fp => self.fp_ready[phys.index()] = ready,
        }
    }

    fn write_phys(&mut self, class: RegClass, phys: PhysReg, bits: u64) {
        match class {
            RegClass::Int => self.int_values[phys.index()] = bits,
            RegClass::Fp => self.fp_values[phys.index()] = bits,
        }
    }

    fn operand_int(&self, operand: Option<(ArchReg, PhysReg)>) -> i64 {
        match operand {
            Some((arch, phys)) if arch.class() == RegClass::Int => {
                self.int_values[phys.index()] as i64
            }
            _ => 0,
        }
    }

    fn operand_fp(&self, operand: Option<(ArchReg, PhysReg)>) -> f64 {
        match operand {
            Some((arch, phys)) if arch.class() == RegClass::Fp => {
                f64::from_bits(self.fp_values[phys.index()])
            }
            _ => 0.0,
        }
    }

    // ------------------------------------------------------------------
    // Replay trace accessors (callers hold a valid trace index, which can
    // only have been claimed from an installed cursor)
    // ------------------------------------------------------------------

    #[inline]
    fn trace(&self) -> &DecodedTrace {
        &self
            .replay
            .as_ref()
            .expect("trace-tagged instruction without a replay trace")
            .trace
    }

    #[inline]
    fn trace_taken(&self, idx: u32) -> bool {
        self.trace().taken(idx as usize)
    }

    #[inline]
    fn trace_payload(&self, idx: u32) -> u64 {
        self.trace().payload(idx as usize)
    }

    #[inline]
    fn trace_mem_addr(&self, idx: u32) -> usize {
        self.trace()
            .mem_addr(idx as usize)
            .expect("traced memory operation has an address")
    }

    fn sources_ready(&self, renamed: &RenamedInstr) -> bool {
        let ok1 = renamed.src1.is_none_or(|(a, p)| self.phys_ready(a, p));
        let ok2 = renamed.src2.is_none_or(|(a, p)| self.phys_ready(a, p));
        ok1 && ok2
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Run until the program halts or a limit is reached.  Returns the final
    /// statistics (also available through [`Simulator::stats`]).
    pub fn run(&mut self, limits: RunLimits) -> SimStats {
        while !self.halted
            && self.stats.committed < limits.max_instructions
            && self.cycle < limits.max_cycles
        {
            self.step();
        }
        self.finalize_stats();
        self.stats.clone()
    }

    /// Run at most `cycle_budget` cycles toward `limits`.  Returns true when
    /// the run is finished (halted or a limit reached), finalising the
    /// statistics exactly as [`Simulator::run`] would; chaining slices until
    /// that point is bit-identical to one `run` call.  Lane groups use this
    /// to interleave many simulators in lockstep chunks.
    pub fn run_slice(&mut self, limits: RunLimits, cycle_budget: u64) -> bool {
        let mut budget = cycle_budget;
        while budget > 0
            && !self.halted
            && self.stats.committed < limits.max_instructions
            && self.cycle < limits.max_cycles
        {
            self.step();
            budget -= 1;
        }
        let done = self.halted
            || self.stats.committed >= limits.max_instructions
            || self.cycle >= limits.max_cycles;
        if done {
            self.finalize_stats();
        }
        done
    }

    /// Simulate a single cycle.
    pub fn step(&mut self) {
        self.fus.next_cycle();
        {
            let _t = prof::scope(prof::Phase::Commit);
            self.stage_commit();
        }
        if !self.halted {
            {
                let _t = prof::scope(prof::Phase::Writeback);
                self.stage_writeback();
            }
            {
                let _t = prof::scope(prof::Phase::Issue);
                self.stage_issue();
            }
            {
                let _t = prof::scope(prof::Phase::Rename);
                self.stage_rename();
            }
            {
                let _t = prof::scope(prof::Phase::Fetch);
                self.stage_fetch();
            }
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
    }

    fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.predictor = self.predictor.stats();
        self.stats.memory = self.mem_hierarchy.stats();
        self.stats.fu = self.fus.stats();
        self.stats.release = *self.rename.stats();
        self.stats.occupancy_int = self.rename.occupancy_totals(RegClass::Int, self.cycle);
        self.stats.occupancy_fp = self.rename.occupancy_totals(RegClass::Fp, self.cycle);
        self.stats.halted = self.halted;
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn stage_commit(&mut self) {
        for _ in 0..self.config.commit_width {
            let Some(head_slot) = self.rob.head_slot() else {
                break;
            };
            if self.rob.state(head_slot) != InstrState::Completed {
                break;
            }
            let head = self.rob.at_slot(head_slot).expect("head slot is occupied");
            // Copy only the fields commit reads, not the whole entry.
            let id = head.id;
            let instr = head.instr;
            let pc = head.pc;
            let trace_idx = head.trace_idx;
            let mem_addr = head.mem_addr;
            let store_data = head.store_data;

            // Injected precise exception at the commit point.
            if let Some(interval) = self.config.exceptions.interval {
                let count = self.stats.committed;
                if count > 0
                    && count.is_multiple_of(interval)
                    && self.last_exception_at != Some(count)
                    && instr.op != Opcode::Halt
                {
                    self.last_exception_at = Some(count);
                    self.stats.exceptions += 1;
                    self.recover_exception(pc, trace_idx);
                    return;
                }
            }

            // Oracle check (paper Section 4.3): no committed instruction may
            // read a logical register whose architectural value was discarded
            // by early release.
            for reg in instr.sources() {
                if self.rename.arch_value_unreliable(reg) {
                    self.stats.oracle_violations += 1;
                }
            }

            // Memory side effects.
            if instr.op.is_store() {
                let addr = mem_addr.expect("completed store has an address");
                let data = store_data.expect("completed store has data");
                self.memory[addr] = data;
                self.lsq.remove(id);
                self.stats.committed_stores += 1;
            } else if instr.op.is_load() {
                self.lsq.remove(id);
                self.stats.committed_loads += 1;
            }
            if instr.op.is_cond_branch() {
                self.stats.committed_branches += 1;
            }

            self.rename.commit(id, self.cycle);
            self.rob.pop_head(id);
            self.stats.committed += 1;

            if instr.op == Opcode::Halt {
                self.halted = true;
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Writeback / branch resolution
    // ------------------------------------------------------------------

    /// Wake up the dispatched consumers of a register whose value just
    /// became available: each sees one fewer outstanding source, and joins
    /// the issue attention list once fully ready — or immediately, for a
    /// store whose base register is now ready and whose effective address is
    /// still unpublished (store address generation is decoupled from the
    /// data, so the LSQ learns addresses as early as possible).
    fn wake_consumers(&mut self, class: RegClass, phys: PhysReg) {
        if self.waiters[class.index()][phys.index()].is_empty() {
            return;
        }
        let mut woken = std::mem::take(&mut self.waiters[class.index()][phys.index()]);
        for &(id, slot) in &woken {
            let Some(entry) = self.rob.at_slot(slot) else {
                continue; // squashed, slot vacant
            };
            if entry.id != id || self.rob.state(slot) != InstrState::Dispatched {
                continue; // squashed, slot reused
            }
            let store_addr_pending = entry.instr.op.is_store() && entry.mem_addr.is_none();
            let src1 = entry.renamed.src1;
            let waiting = self.rob.waiting_srcs(slot).saturating_sub(1);
            let join = !self.rob.in_attention(slot)
                && (waiting == 0
                    || (store_addr_pending && src1.is_none_or(|(a, p)| self.phys_ready(a, p))));
            self.rob.set_waiting_srcs(slot, waiting);
            if join {
                self.rob.set_in_attention(slot, true);
                self.attention.push((id, slot));
            }
        }
        woken.clear();
        self.waiters[class.index()][phys.index()] = woken;
    }

    fn stage_writeback(&mut self) {
        let mask = self.completions.len() - 1;
        let mut completing = std::mem::take(&mut self.completion_scratch);
        completing.clear();
        completing.append(&mut self.completions[(self.cycle as usize) & mask]);
        // Events scheduled in different cycles can share a bucket; process in
        // program order, as the window scan this replaces did.  Same-cycle
        // scheduling is itself id-ordered, so most buckets arrive sorted.
        if !completing.is_sorted_by_key(|&(id, _)| id) {
            completing.sort_unstable_by_key(|&(id, _)| id);
        }

        for &(id, slot) in completing.iter() {
            // The entry may have been squashed by an older branch that
            // completed earlier in this loop (or in an earlier cycle).
            let Some(entry) = self.rob.at_slot(slot) else {
                continue;
            };
            if entry.id != id {
                continue;
            }
            debug_assert!(
                matches!(self.rob.state(slot), InstrState::Issued { complete_at } if complete_at <= self.cycle)
            );
            // Copy only the fields writeback reads, not the whole entry.
            let dst_rename = entry.renamed.dst;
            let result = entry.result;
            let is_unresolved_branch = entry.instr.op.is_cond_branch() && !entry.resolved;
            let prediction = entry.prediction;
            let actual_taken = entry.actual_taken;
            let predicted_taken = entry.predicted_taken;
            let actual_next = entry.actual_next;
            let trace_idx = entry.trace_idx;

            // Write the result and wake up consumers.
            if let Some(dst) = dst_rename {
                let bits = result.unwrap_or(0);
                self.write_phys(dst.arch.class(), dst.phys, bits);
                self.set_phys_ready(dst.arch.class(), dst.phys, true);
                self.rename
                    .mark_value_written(dst.arch.class(), dst.phys, self.cycle);
                self.wake_consumers(dst.arch.class(), dst.phys);
            }
            self.rob.set_state(slot, InstrState::Completed);

            // Conditional branch resolution.
            if is_unresolved_branch {
                let prediction = prediction.expect("conditional branches carry a prediction");
                let actual_taken = actual_taken.expect("resolved branch has an outcome");
                self.predictor.resolve(&prediction, actual_taken);
                if let Some(e) = self.rob.at_slot_mut(slot) {
                    e.resolved = true;
                }
                if actual_taken != predicted_taken {
                    self.stats.mispredicted_branches += 1;
                    self.predictor.repair(&prediction, actual_taken);
                    self.recover_mispredict(id, actual_next, trace_idx);
                    // The rest of this cycle's list is strictly younger than
                    // the branch (sorted by id), so every remaining event
                    // refers to an instruction the recovery just squashed:
                    // nothing to defer, stop here.
                    break;
                } else {
                    self.rename.resolve_branch_correct(id, self.cycle);
                }
            }
        }

        completing.clear();
        self.completion_scratch = completing;
    }

    fn recover_mispredict(&mut self, branch_id: InstrId, correct_next: usize, branch_trace: u32) {
        let squashed_rename = self.rename.recover_branch_mispredict(branch_id, self.cycle);
        let squashed = squashed_rename.squashed;
        let squashed_rob = self.rob.squash_after(branch_id);
        debug_assert_eq!(squashed, squashed_rob);
        self.lsq.squash_after(branch_id);
        self.fetch_buffer.clear();
        self.stats.squashed += squashed_rob as u64;
        // Attention, wakeup and completion entries of squashed instructions
        // are dropped lazily: their slots are vacated (or reused under a new
        // id), which every consumer revalidates.

        // Re-synchronise the replay cursor: an on-trace branch resumes the
        // trace right after itself (its correct target is the next trace
        // position); a wrong-path branch leaves fetch off-trace until the
        // on-trace branch below it resolves.
        if let Some(cursor) = &mut self.replay {
            cursor.resume_after_branch(branch_trace);
        }

        self.fetch_pc = correct_next;
        self.fetch_halted = false;
        self.fetch_stalled_until = self
            .cycle
            .saturating_add(1 + self.config.predictor.mispredict_redirect_penalty as u64);
    }

    fn recover_exception(&mut self, restart_pc: usize, head_trace: u32) {
        self.rename.recover_exception(self.cycle);
        let squashed = self.rob.clear();
        self.lsq.clear();
        self.fetch_buffer.clear();
        self.stats.squashed += squashed as u64;
        // Everything in flight is gone: drop the scheduling state wholesale.
        self.attention.clear();
        for class in &mut self.waiters {
            for list in class.iter_mut() {
                list.clear();
            }
        }
        for bucket in &mut self.completions {
            bucket.clear();
        }

        // The squashed head re-executes first: rewind the cursor to it (the
        // head is always on the correct path, so it is off-trace only past
        // the capture budget — where fetch degrades to live anyway).
        if let Some(cursor) = &mut self.replay {
            cursor.resume_at(head_trace);
        }

        self.fetch_pc = restart_pc;
        self.fetch_halted = false;
        self.fetch_stalled_until = self
            .cycle
            .saturating_add(self.config.exceptions.handler_cycles);
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    /// Record that `(id, slot)` will produce its result at `complete_at`.
    fn schedule_completion(&mut self, id: InstrId, slot: u32, complete_at: u64) {
        let horizon = (complete_at - self.cycle) as usize;
        if horizon >= self.completions.len() {
            self.grow_completions(horizon);
        }
        let mask = self.completions.len() - 1;
        self.completions[(complete_at as usize) & mask].push((id, slot));
    }

    /// Resize the completion ring past `horizon` cycles and re-bucket the
    /// pending events (rare: only configs with latencies beyond the ring).
    fn grow_completions(&mut self, horizon: usize) {
        let new_len = (horizon + 1).next_power_of_two() * 2;
        let old: Vec<Vec<(InstrId, u32)>> = std::mem::take(&mut self.completions);
        self.completions = (0..new_len).map(|_| Vec::new()).collect();
        let mask = new_len - 1;
        for bucket in old {
            for (id, slot) in bucket {
                // Recover the event time from the live entry; events for
                // squashed instructions are dropped.
                let Some(entry) = self.rob.at_slot(slot) else {
                    continue;
                };
                if entry.id != id {
                    continue;
                }
                if let InstrState::Issued { complete_at } = self.rob.state(slot) {
                    // Every pending event is in the future: this cycle's
                    // bucket was already drained by writeback, and events for
                    // squashed instructions were filtered above.
                    debug_assert!(complete_at > self.cycle);
                    self.completions[(complete_at as usize) & mask].push((id, slot));
                }
            }
        }
    }

    fn stage_issue(&mut self) {
        if self.attention.is_empty() {
            return;
        }
        let mut attention = std::mem::take(&mut self.attention);
        // Entries join at dispatch (in order) and at wakeup (out of order);
        // restore program order so selection priority matches a window scan.
        // The kept prefix plus in-order dispatches is already sorted most
        // cycles, so check before paying for the sort.
        if !attention.is_sorted_by_key(|&(id, _)| id) {
            attention.sort_unstable_by_key(|&(id, _)| id);
        }

        let mut issued = 0;
        let mut kept = 0;
        for i in 0..attention.len() {
            let (id, slot) = attention[i];

            let Some(entry) = self.rob.at_slot(slot) else {
                continue; // squashed: drop from the attention list
            };
            if entry.id != id || self.rob.state(slot) != InstrState::Dispatched {
                continue;
            }
            if issued >= self.config.issue_width {
                // Out of issue slots: everything younger keeps its place for
                // next cycle, untouched (as the scan's early break did).
                attention[kept] = (id, slot);
                kept += 1;
                continue;
            }
            // Copy only what the issue paths read — not the whole ~200-byte
            // entry (twice, as the scan-based loop did).
            let view = IssueView {
                id,
                pc: entry.pc,
                instr: entry.instr,
                renamed: entry.renamed,
                trace_idx: entry.trace_idx,
            };
            let addr_pending = entry.mem_addr.is_none();

            // Store address generation is decoupled from the data: as soon as
            // the base register is ready the effective address is published
            // to the LSQ so that younger loads can apply the conservative
            // "all previous store addresses known" rule (Table 2) without
            // waiting for the store data to be produced.
            if view.instr.op.is_store() && addr_pending {
                let base_ready = view.renamed.src1.is_none_or(|(a, p)| self.phys_ready(a, p));
                if base_ready {
                    let addr = if view.trace_idx != NO_TRACE {
                        self.trace_mem_addr(view.trace_idx)
                    } else {
                        let base = self.operand_int(view.renamed.src1);
                        semantics::effective_addr(base, view.instr.imm, self.memory.len())
                    };
                    self.lsq.set_address(id, addr);
                    if let Some(e) = self.rob.at_slot_mut(slot) {
                        e.mem_addr = Some(addr);
                    }
                }
            }

            if !self.sources_ready(&view.renamed) {
                // Present only for address generation (store data pending):
                // stays listed until the data wakeup completes it.
                attention[kept] = (id, slot);
                kept += 1;
                continue;
            }
            let class = view.instr.op.fu_class();

            let did_issue = if view.instr.op.is_mem() {
                self.try_issue_mem(&view, slot)
            } else if self.fus.try_issue(class) {
                let latency = self.config.latency(class).max(1);
                self.execute_alu(&view, slot, latency);
                true
            } else {
                false
            };

            if did_issue {
                issued += 1;
                self.rob.set_in_attention(slot, false);
            } else {
                // Structural hazard or LSQ ordering: retry next cycle.
                attention[kept] = (id, slot);
                kept += 1;
            }
        }
        attention.truncate(kept);
        self.attention = attention;
    }

    /// Execute a non-memory instruction and schedule its completion.
    ///
    /// On-trace instructions read their outcome (result bits, branch
    /// direction) from the replay trace instead of reading operands and
    /// recomputing; wrong-path instructions execute live.  Both paths
    /// produce the same bits on the correct path (the trace *is* the
    /// architectural execution), so timing and statistics are identical.
    fn execute_alu(&mut self, entry: &IssueView, slot: u32, latency: u32) {
        let mut result = None;
        let mut actual_taken = None;
        let mut actual_next = entry.pc + 1;

        if entry.trace_idx != NO_TRACE {
            match entry.instr.op {
                Opcode::Branch(_) => {
                    let taken = self.trace_taken(entry.trace_idx);
                    actual_taken = Some(taken);
                    actual_next = if taken {
                        entry.instr.imm as usize
                    } else {
                        entry.pc + 1
                    };
                }
                Opcode::Jump => {
                    actual_next = entry.instr.imm as usize;
                }
                Opcode::Halt | Opcode::Nop => {}
                _ => {
                    if entry.instr.dst.is_some() {
                        result = Some(self.trace_payload(entry.trace_idx));
                    }
                }
            }
        } else {
            let a_int = self.operand_int(entry.renamed.src1);
            let b_int = self.operand_int(entry.renamed.src2);
            let a_fp = self.operand_fp(entry.renamed.src1);
            let b_fp = self.operand_fp(entry.renamed.src2);

            match entry.instr.op {
                Opcode::Branch(cond) => {
                    let taken = semantics::branch_taken(cond, a_int, b_int);
                    actual_taken = Some(taken);
                    actual_next = if taken {
                        entry.instr.imm as usize
                    } else {
                        entry.pc + 1
                    };
                }
                Opcode::Jump => {
                    actual_next = entry.instr.imm as usize;
                }
                Opcode::Halt | Opcode::Nop => {}
                op => {
                    let value = semantics::compute(op, a_int, b_int, a_fp, b_fp, entry.instr.imm);
                    result = match value {
                        semantics::ExecValue::Int(v) => Some(v as u64),
                        semantics::ExecValue::Fp(v) => Some(v.to_bits()),
                        semantics::ExecValue::None => None,
                    };
                }
            }
        }

        let complete_at = self.cycle + latency as u64;
        self.rob.set_state(slot, InstrState::Issued { complete_at });
        let e = self.rob.at_slot_mut(slot).expect("entry present");
        e.result = result;
        e.actual_taken = actual_taken;
        e.actual_next = actual_next;
        self.schedule_completion(entry.id, slot, complete_at);
    }

    /// Try to issue a load or store; returns true if it issued.
    ///
    /// On-trace operations take their effective address (and store data /
    /// load bits) from the replay trace; every *timing* decision — LSQ
    /// ordering, forwarding, functional-unit ports, cache access — runs
    /// unchanged, so the schedule is identical to live execution.
    fn try_issue_mem(&mut self, entry: &IssueView, slot: u32) -> bool {
        let addr = if entry.trace_idx != NO_TRACE {
            self.trace_mem_addr(entry.trace_idx)
        } else {
            let base = self.operand_int(entry.renamed.src1);
            semantics::effective_addr(base, entry.instr.imm, self.memory.len())
        };

        if entry.instr.op.is_store() {
            if !self.fus.try_issue(earlyreg_isa::FuClass::Mem) {
                return false;
            }
            let data = if entry.trace_idx != NO_TRACE {
                self.trace_payload(entry.trace_idx)
            } else {
                match entry.instr.op {
                    Opcode::StoreInt => {
                        semantics::int_to_word(self.operand_int(entry.renamed.src2))
                    }
                    Opcode::StoreFp => semantics::fp_to_word(self.operand_fp(entry.renamed.src2)),
                    _ => unreachable!(),
                }
            };
            self.lsq.set_address(entry.id, addr);
            self.lsq.set_store_data(entry.id, data);
            let complete_at = self.cycle + 1;
            self.rob.set_state(slot, InstrState::Issued { complete_at });
            let e = self.rob.at_slot_mut(slot).expect("entry present");
            e.mem_addr = Some(addr);
            e.store_data = Some(data);
            self.schedule_completion(entry.id, slot, complete_at);
            return true;
        }

        // Loads: conservative scheduling — wait until every older store
        // address is known (Table 2).
        if !self.lsq.prior_store_addresses_known(entry.id) {
            return false;
        }
        let forward = self.lsq.forward(entry.id, addr);
        if forward == ForwardResult::MustWait {
            return false;
        }
        if !self.fus.try_issue(earlyreg_isa::FuClass::Mem) {
            return false;
        }
        let (bits, latency) = match forward {
            ForwardResult::Forwarded(bits) => (bits, self.config.dcache.hit_latency),
            ForwardResult::NoMatch => {
                let latency = self.mem_hierarchy.access_data(addr as u64 * WORD_BYTES);
                let bits = if entry.trace_idx != NO_TRACE {
                    self.trace_payload(entry.trace_idx)
                } else {
                    self.memory[addr]
                };
                (bits, latency)
            }
            ForwardResult::MustWait => unreachable!(),
        };
        self.lsq.set_address(entry.id, addr);
        let complete_at = self.cycle + latency.max(1) as u64;
        self.rob.set_state(slot, InstrState::Issued { complete_at });
        let e = self.rob.at_slot_mut(slot).expect("entry present");
        e.mem_addr = Some(addr);
        e.result = Some(bits);
        self.schedule_completion(entry.id, slot, complete_at);
        true
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn stage_rename(&mut self) {
        let mut renamed = 0;
        while renamed < self.config.decode_width {
            let Some(fetched) = self.fetch_buffer.front().copied() else {
                break;
            };

            if self.rob.is_full() {
                self.stats.rename_stalls.ros_full += 1;
                break;
            }
            if fetched.instr.op.is_mem() && self.lsq.is_full() {
                self.stats.rename_stalls.lsq_full += 1;
                break;
            }
            let renamed_instr = match self.rename.rename(&fetched.instr, self.cycle) {
                Ok(r) => r,
                Err(RenameStall::NoFreePhysReg(_)) => {
                    self.stats.rename_stalls.free_list += 1;
                    break;
                }
                Err(RenameStall::TooManyPendingBranches) => {
                    self.stats.rename_stalls.pending_branches += 1;
                    break;
                }
            };
            self.fetch_buffer.pop();

            if let Some(dst) = renamed_instr.dst {
                self.set_phys_ready(dst.arch.class(), dst.phys, false);
            }
            if fetched.instr.op.is_mem() {
                self.lsq
                    .insert(renamed_instr.id, fetched.instr.op.is_store());
            }

            let id = renamed_instr.id;
            let slot = self.rob.push(RobEntry {
                id,
                pc: fetched.pc,
                instr: fetched.instr,
                renamed: renamed_instr,
                prediction: fetched.prediction,
                predicted_taken: fetched.predicted_taken,
                predicted_next: fetched.predicted_next,
                actual_taken: None,
                actual_next: fetched.pc + 1,
                resolved: false,
                result: None,
                mem_addr: None,
                store_data: None,
                dispatched_at: self.cycle,
                trace_idx: fetched.trace_idx,
            });

            // Register in the wakeup lists; join the attention list when
            // already issuable (all sources ready) or when a store can at
            // least publish its address (base ready).
            let mut waiting = 0u8;
            for (arch, phys) in [renamed_instr.src1, renamed_instr.src2]
                .into_iter()
                .flatten()
            {
                if !self.phys_ready(arch, phys) {
                    self.waiters[arch.class().index()][phys.index()].push((id, slot));
                    waiting += 1;
                }
            }
            let base_ready = renamed_instr
                .src1
                .is_none_or(|(a, p)| self.phys_ready(a, p));
            let join = waiting == 0 || (fetched.instr.op.is_store() && base_ready);
            self.rob.set_waiting_srcs(slot, waiting);
            if join {
                self.rob.set_in_attention(slot, true);
                self.attention.push((id, slot));
            }

            self.stats.renamed += 1;
            renamed += 1;
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn stage_fetch(&mut self) {
        if self.fetch_halted || self.cycle < self.fetch_stalled_until {
            return;
        }
        let mut pc = self.fetch_pc;
        let mut taken = 0;
        let mut current_line = u64::MAX;

        for _ in 0..self.config.fetch_width {
            if self.fetch_buffer.is_full() {
                break;
            }
            if pc >= self.program.len() {
                // Wrong-path fall-through past the end of the program; stop
                // fetching until a recovery redirects us.
                self.fetch_halted = true;
                break;
            }

            // Static fetch facts (kind, line index, target) come from the
            // shared per-program table, so sweep lanes don't each redo the
            // address/decode math.
            let info = self.fe_table.at(pc);

            // I-cache: access once per line touched; a miss ends the fetch
            // group and stalls the front end for the miss latency.
            if info.line as u64 != current_line {
                let latency = self
                    .mem_hierarchy
                    .access_instruction(pc as u64 * INSTR_BYTES);
                current_line = info.line as u64;
                if latency > self.config.icache.hit_latency {
                    self.fetch_stalled_until = self.cycle + latency as u64;
                    break;
                }
            }

            let instr = self.program.instrs[pc];
            let trace_idx = match &mut self.replay {
                Some(cursor) => cursor.claim(pc),
                None => NO_TRACE,
            };
            let mut prediction = None;
            let mut predicted_taken = false;
            let mut next_pc = pc + 1;

            match info.kind {
                FETCH_BRANCH => {
                    let p = self.predictor.predict(pc);
                    predicted_taken = p.taken;
                    if p.taken {
                        next_pc = info.target as usize;
                    }
                    prediction = Some(p);
                    // A prediction that disagrees with the recorded direction
                    // means fetch is turning onto the wrong path: stop the
                    // cursor until this branch's recovery re-synchronises it.
                    if trace_idx != NO_TRACE && p.taken != self.trace_taken(trace_idx) {
                        self.replay.as_mut().expect("claimed from cursor").diverge();
                    }
                }
                FETCH_JUMP => {
                    predicted_taken = true;
                    next_pc = info.target as usize;
                }
                FETCH_HALT => {
                    next_pc = pc;
                }
                _ => {}
            }

            self.fetch_buffer.push(FetchedInstr {
                pc,
                instr,
                prediction,
                predicted_taken,
                predicted_next: next_pc,
                fetched_at: self.cycle,
                trace_idx,
            });
            self.stats.fetched += 1;

            if info.kind == FETCH_HALT {
                self.fetch_halted = true;
                break;
            }
            if predicted_taken {
                taken += 1;
                if taken >= self.config.max_taken_per_fetch {
                    pc = next_pc;
                    break;
                }
            }
            pc = next_pc;
        }
        self.fetch_pc = pc;
    }
}
