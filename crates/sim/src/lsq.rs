//! Load/store queue with store→load forwarding.
//!
//! Table 2: 64 entries, store-to-load forwarding, and conservative load
//! scheduling — "loads are executed when all previous store addresses are
//! known".  Stores update memory only at commit; until then younger loads to
//! the same word receive the value by forwarding.

use earlyreg_core::InstrId;
use std::collections::VecDeque;

/// Outcome of a forwarding lookup for a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardResult {
    /// The youngest older store to the same address supplied the value.
    Forwarded(u64),
    /// An older store to the same address exists but its data is not ready
    /// yet — the load must wait.
    MustWait,
    /// No older in-flight store matches; the load reads the memory system.
    NoMatch,
}

/// One queue entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsqEntry {
    /// Owning instruction.
    pub id: InstrId,
    /// True for stores, false for loads.
    pub is_store: bool,
    /// Effective word address, once computed.
    pub addr: Option<usize>,
    /// Store data, once available (raw 64-bit pattern).
    pub data: Option<u64>,
}

/// The load/store queue, ordered oldest → youngest.
///
/// Next to the queue itself, an id-sorted side list tracks the stores whose
/// effective address is still unknown, so the conservative load-scheduling
/// check ("all previous store addresses known") is O(1) per issue attempt
/// instead of a scan of the whole queue.
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    entries: VecDeque<LsqEntry>,
    capacity: usize,
    /// Ids of stores with `addr == None`, ascending (program order).
    unknown_addr_stores: VecDeque<InstrId>,
}

impl LoadStoreQueue {
    /// Create an empty queue with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LoadStoreQueue {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            unknown_addr_stores: VecDeque::new(),
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when no entry is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further instruction can be inserted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    fn position(&self, id: InstrId) -> Option<usize> {
        let idx = self.entries.partition_point(|e| e.id < id);
        (idx < self.entries.len() && self.entries[idx].id == id).then_some(idx)
    }

    /// Insert a memory instruction at dispatch (program order).
    ///
    /// # Panics
    /// Panics if the queue is full (the dispatch stage must check first) or
    /// if program order is violated.
    pub fn insert(&mut self, id: InstrId, is_store: bool) {
        assert!(!self.is_full(), "LSQ overflow");
        if let Some(back) = self.entries.back() {
            assert!(
                back.id < id,
                "LSQ entries must be inserted in program order"
            );
        }
        self.entries.push_back(LsqEntry {
            id,
            is_store,
            addr: None,
            data: None,
        });
        if is_store {
            self.unknown_addr_stores.push_back(id);
        }
    }

    /// Drop `id` from the unknown-address store list, if present.
    fn mark_store_addr_known(&mut self, id: InstrId) {
        let idx = self.unknown_addr_stores.partition_point(|&s| s < id);
        if self.unknown_addr_stores.get(idx) == Some(&id) {
            self.unknown_addr_stores.remove(idx);
        }
    }

    /// Record the effective address of an entry (loads and stores).
    pub fn set_address(&mut self, id: InstrId, addr: usize) {
        if let Some(i) = self.position(id) {
            if self.entries[i].is_store && self.entries[i].addr.is_none() {
                self.mark_store_addr_known(id);
            }
            self.entries[i].addr = Some(addr);
        }
    }

    /// Record the data of a store.
    pub fn set_store_data(&mut self, id: InstrId, data: u64) {
        if let Some(i) = self.position(id) {
            debug_assert!(self.entries[i].is_store);
            self.entries[i].data = Some(data);
        }
    }

    /// Access an entry (tests / commit stage).
    pub fn get(&self, id: InstrId) -> Option<&LsqEntry> {
        self.position(id).map(|i| &self.entries[i])
    }

    /// Conservative load scheduling check: every store *older* than `id` has
    /// a known address.  O(1): the oldest unknown-address store is the front
    /// of the side list.
    pub fn prior_store_addresses_known(&self, id: InstrId) -> bool {
        self.unknown_addr_stores.front().is_none_or(|&s| s >= id)
    }

    /// Forwarding lookup for the load `id` at `addr`.
    pub fn forward(&self, id: InstrId, addr: usize) -> ForwardResult {
        // Youngest older store to the same address wins: walk backwards from
        // the load's position and stop at the first match.
        let older = self.entries.partition_point(|e| e.id < id);
        for e in self.entries.iter().take(older).rev() {
            if e.is_store && e.addr == Some(addr) {
                return match e.data {
                    Some(v) => ForwardResult::Forwarded(v),
                    None => ForwardResult::MustWait,
                };
            }
        }
        ForwardResult::NoMatch
    }

    /// Remove an entry (at commit).
    pub fn remove(&mut self, id: InstrId) {
        if let Some(i) = self.position(id) {
            if self.entries[i].is_store && self.entries[i].addr.is_none() {
                self.mark_store_addr_known(id);
            }
            self.entries.remove(i);
        }
    }

    /// Remove every entry strictly younger than `id` (branch misprediction).
    pub fn squash_after(&mut self, id: InstrId) {
        while let Some(back) = self.entries.back() {
            if back.id > id {
                self.entries.pop_back();
            } else {
                break;
            }
        }
        while let Some(&back) = self.unknown_addr_stores.back() {
            if back > id {
                self.unknown_addr_stores.pop_back();
            } else {
                break;
            }
        }
    }

    /// Remove everything (exception recovery).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.unknown_addr_stores.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> InstrId {
        InstrId(n)
    }

    #[test]
    fn insert_and_capacity() {
        let mut q = LoadStoreQueue::new(2);
        assert!(q.is_empty());
        q.insert(id(1), true);
        q.insert(id(2), false);
        assert!(q.is_full());
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "LSQ overflow")]
    fn overflow_panics() {
        let mut q = LoadStoreQueue::new(1);
        q.insert(id(1), true);
        q.insert(id(2), true);
    }

    #[test]
    fn conservative_load_scheduling() {
        let mut q = LoadStoreQueue::new(8);
        q.insert(id(1), true); // store, address unknown
        q.insert(id(2), false); // load
        assert!(!q.prior_store_addresses_known(id(2)));
        q.set_address(id(1), 100);
        assert!(q.prior_store_addresses_known(id(2)));
        // A store *younger* than the load does not block it.
        q.insert(id(3), true);
        assert!(q.prior_store_addresses_known(id(2)));
    }

    #[test]
    fn forwarding_from_the_youngest_matching_store() {
        let mut q = LoadStoreQueue::new(8);
        q.insert(id(1), true);
        q.insert(id(2), true);
        q.insert(id(4), false);
        q.set_address(id(1), 50);
        q.set_store_data(id(1), 111);
        q.set_address(id(2), 50);
        q.set_store_data(id(2), 222);
        assert_eq!(q.forward(id(4), 50), ForwardResult::Forwarded(222));
        assert_eq!(q.forward(id(4), 51), ForwardResult::NoMatch);
    }

    #[test]
    fn forwarding_waits_for_store_data() {
        let mut q = LoadStoreQueue::new(8);
        q.insert(id(1), true);
        q.insert(id(2), false);
        q.set_address(id(1), 9);
        assert_eq!(q.forward(id(2), 9), ForwardResult::MustWait);
        q.set_store_data(id(1), 5);
        assert_eq!(q.forward(id(2), 9), ForwardResult::Forwarded(5));
    }

    #[test]
    fn forwarding_ignores_younger_stores() {
        let mut q = LoadStoreQueue::new(8);
        q.insert(id(2), false);
        q.insert(id(3), true);
        q.set_address(id(3), 7);
        q.set_store_data(id(3), 42);
        assert_eq!(q.forward(id(2), 7), ForwardResult::NoMatch);
    }

    #[test]
    fn remove_and_squash() {
        let mut q = LoadStoreQueue::new(8);
        for n in 1..=5 {
            q.insert(id(n), n % 2 == 0);
        }
        q.remove(id(1));
        assert_eq!(q.len(), 4);
        q.squash_after(id(3));
        assert_eq!(q.len(), 2);
        assert!(q.get(id(3)).is_some());
        assert!(q.get(id(4)).is_none());
        q.clear();
        assert!(q.is_empty());
    }
}
