//! # earlyreg-sim
//!
//! Cycle-level out-of-order simulator substrate for the reproduction of
//! *"Hardware Schemes for Early Register Release"* (ICPP 2002).
//!
//! The paper evaluates its mechanisms on a modified SimpleScalar v3.0
//! `sim-outorder`; this crate provides an equivalent machine model built from
//! scratch in Rust:
//!
//! * [`config`] — the Table 2 machine description;
//! * [`branch`] — 18-bit gshare with speculative history and repair;
//! * [`cache`] — split 32 KB L1s, unified 1 MB L2, 50-cycle memory;
//! * [`fu`] — the Table 2 functional-unit mix;
//! * [`lsq`] — 64-entry load/store queue with forwarding and conservative
//!   load scheduling;
//! * [`rob`], [`frontend`] — pipeline-side reorder structure, fetch buffer
//!   and the shared per-program fetch precompute table;
//! * [`pipeline`] — the 8-wide fetch/rename/issue/commit cycle loop, driving
//!   [`earlyreg_core::RenameUnit`] for renaming and register release;
//! * [`lanes`] — the lane engine: step N same-workload sweep points in
//!   lockstep chunks over one shared program/trace/front-end table, with
//!   pooled per-point construction;
//! * [`replay`] — decode-once trace replay: memoized [`DecodedTrace`]
//!   capture and the fetch-side cursor that lets sweeps skip re-decode and
//!   re-emulation while keeping statistics bit-identical;
//! * [`profile`] — feature-gated per-phase scope timers for the hot loop;
//! * [`verify`] — golden-model comparison against the architectural emulator;
//! * [`stats`] — IPC, occupancy, predictor/cache/release statistics.
//!
//! [`DecodedTrace`]: earlyreg_isa::DecodedTrace

pub mod branch;
pub mod cache;
pub mod config;
pub mod frontend;
pub mod fu;
pub mod lanes;
pub mod lsq;
pub mod pipeline;
pub mod profile;
pub mod replay;
pub mod rob;
pub mod stats;
pub mod verify;

pub use branch::{GsharePredictor, Prediction, PredictorStats};
pub use cache::{Cache, CacheStats, HierarchyStats, MemoryHierarchy};
pub use config::{CacheConfig, ExceptionConfig, MachineConfig, PredictorConfig};
pub use frontend::{front_end_table_for, FetchInfo, FrontEndTable};
pub use fu::{FuPool, FuStats};
pub use lanes::{lanes_disabled, LaneGroup, LaneStats};
pub use lsq::{ForwardResult, LoadStoreQueue};
pub use pipeline::{RunLimits, SimPool, Simulator};
pub use replay::{decoded_trace_for, replay_disabled, ReplayCursor, TRACE_SLACK};
pub use rob::{InstrState, ReorderBuffer, RobEntry};
pub use stats::{RenameStallCycles, SimStats};
pub use verify::{verify_against_emulator, VerifyOutcome};
