//! Golden-model verification.
//!
//! The cycle-level simulator must commit exactly the instruction stream an
//! in-order architectural emulator executes and produce the same final state.
//! The only permitted divergence is the one the paper's Section 4.3
//! explicitly allows: a logical register whose architectural value was
//! discarded by an early release (or clobbered by a register reuse) before
//! its redefinition committed may hold a different — provably dead — value.
//! Those registers are identified by
//! [`Simulator::arch_value_unreliable`](crate::pipeline::Simulator::arch_value_unreliable)
//! and skipped.

use crate::pipeline::Simulator;
use earlyreg_isa::{ArchReg, Emulator, Program, RegClass};

/// Outcome of a verification run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Simulator and emulator agree on every compared item.
    Match {
        /// Instructions compared.
        instructions: u64,
        /// Registers skipped because their value was legitimately dead.
        skipped_registers: usize,
    },
    /// A divergence was found.
    Mismatch {
        /// Human-readable description of the first difference.
        description: String,
    },
}

impl VerifyOutcome {
    /// True if the verification passed.
    pub fn is_match(&self) -> bool {
        matches!(self, VerifyOutcome::Match { .. })
    }
}

/// Compare the simulator's committed architectural state against the
/// emulator after executing the same number of instructions.
pub fn verify_against_emulator(sim: &Simulator, program: &Program) -> VerifyOutcome {
    let committed = sim.stats().committed;
    let mut emu = Emulator::new(program);
    let result = emu.run(committed);
    if result.instructions != committed {
        return VerifyOutcome::Mismatch {
            description: format!(
                "emulator executed {} instructions but the simulator committed {committed} \
                 (the committed path diverged)",
                result.instructions
            ),
        };
    }

    // Memory must match exactly: stores are never dead-value-optimised.
    let sim_mem = sim.committed_memory();
    let emu_mem = &emu.state.memory;
    if sim_mem.len() != emu_mem.len() {
        return VerifyOutcome::Mismatch {
            description: format!(
                "memory sizes differ: simulator {} words, emulator {} words",
                sim_mem.len(),
                emu_mem.len()
            ),
        };
    }
    for (addr, (&s, &e)) in sim_mem.iter().zip(emu_mem.iter()).enumerate() {
        if s != e {
            return VerifyOutcome::Mismatch {
                description: format!(
                    "memory word {addr} differs: simulator {s:#x}, emulator {e:#x}"
                ),
            };
        }
    }

    // Registers: compare raw bit patterns, skipping dead values.
    let mut skipped = 0;
    for class in RegClass::ALL {
        for reg in ArchReg::all(class) {
            if sim.arch_value_unreliable(reg) {
                skipped += 1;
                continue;
            }
            let sim_bits = sim.arch_reg_bits(reg);
            let emu_bits = emu.state.read_raw(reg);
            if sim_bits != emu_bits {
                return VerifyOutcome::Mismatch {
                    description: format!(
                        "register {reg} differs: simulator {sim_bits:#x}, emulator {emu_bits:#x}"
                    ),
                };
            }
        }
    }

    // The release mechanisms must never have discarded a value that a
    // committed instruction later read.
    if sim.stats().oracle_violations > 0 {
        return VerifyOutcome::Mismatch {
            description: format!(
                "{} committed instruction(s) read a logical register whose value had been \
                 discarded by early release",
                sim.stats().oracle_violations
            ),
        };
    }

    VerifyOutcome::Match {
        instructions: committed,
        skipped_registers: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        let ok = VerifyOutcome::Match {
            instructions: 10,
            skipped_registers: 0,
        };
        let bad = VerifyOutcome::Mismatch {
            description: "x".into(),
        };
        assert!(ok.is_match());
        assert!(!bad.is_match());
    }
}
