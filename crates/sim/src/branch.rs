//! Branch prediction: an 18-bit gshare predictor with speculative history
//! updates and history repair on misprediction (Table 2).
//!
//! Branch *targets* do not need prediction in this simulator: the instruction
//! stream is a static program addressed by instruction index, so the target
//! of a direct branch or jump is available at fetch.  Only the direction of
//! conditional branches is predicted.

use serde::{Deserialize, Serialize};

/// Everything recorded at prediction time, needed to train the counter and to
/// repair the global history on a misprediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Index of the 2-bit counter that produced the prediction.
    pub table_index: usize,
    /// Global history *before* this branch was shifted in.
    pub history_before: u64,
}

/// Aggregate predictor statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Predictions made (speculative, includes wrong-path branches).
    pub predictions: u64,
    /// Resolved branches that were predicted correctly.
    pub correct: u64,
    /// Resolved branches that were mispredicted.
    pub mispredicted: u64,
}

impl PredictorStats {
    /// Direction prediction accuracy over resolved branches.
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.mispredicted;
        if total == 0 {
            1.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

/// gshare: the branch PC is XOR-ed with the global history to index a table
/// of 2-bit saturating counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    mask: u64,
    table: Vec<u8>,
    history: u64,
    stats: PredictorStats,
}

impl GsharePredictor {
    /// Create a predictor with `history_bits` bits of global history and a
    /// `2^history_bits`-entry counter table, all counters weakly not-taken.
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "gshare history length must be between 1 and 24 bits"
        );
        let entries = 1usize << history_bits;
        GsharePredictor {
            mask: (entries - 1) as u64,
            table: vec![1; entries],
            history: 0,
            stats: PredictorStats::default(),
        }
    }

    /// Reset to the freshly-constructed state (all counters weakly
    /// not-taken, empty history, zero stats), keeping the table allocation.
    /// Simulator pooling uses this to recycle the 2^18-entry table.
    pub fn reset(&mut self) {
        self.table.fill(1);
        self.history = 0;
        self.stats = PredictorStats::default();
    }

    /// Number of counter-table entries.
    pub fn table_entries(&self) -> usize {
        self.table.len()
    }

    /// Current global history (exposed for checkpoint/repair bookkeeping).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Predictor statistics.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    fn index(&self, pc: usize, history: u64) -> usize {
        ((pc as u64 ^ history) & self.mask) as usize
    }

    /// Predict the direction of the conditional branch at `pc` and
    /// *speculatively* shift the prediction into the global history
    /// (Table 2: "speculative updates").
    pub fn predict(&mut self, pc: usize) -> Prediction {
        let history_before = self.history;
        let table_index = self.index(pc, history_before);
        let taken = self.table[table_index] >= 2;
        self.history = ((self.history << 1) | taken as u64) & self.mask;
        self.stats.predictions += 1;
        Prediction {
            taken,
            table_index,
            history_before,
        }
    }

    /// Train the predictor when the branch resolves: bump the counter that
    /// produced the prediction and record accuracy.
    pub fn resolve(&mut self, prediction: &Prediction, actual_taken: bool) {
        let counter = &mut self.table[prediction.table_index];
        if actual_taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        if prediction.taken == actual_taken {
            self.stats.correct += 1;
        } else {
            self.stats.mispredicted += 1;
        }
    }

    /// Repair the speculative global history after a misprediction: the
    /// history becomes "everything up to and including the mispredicted
    /// branch, with its *actual* outcome".
    pub fn repair(&mut self, prediction: &Prediction, actual_taken: bool) {
        self.history = ((prediction.history_before << 1) | actual_taken as u64) & self.mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the predictor the way the pipeline does: train on resolution and
    /// repair the speculative history whenever the prediction was wrong.
    fn predict_resolve(p: &mut GsharePredictor, pc: usize, outcome: bool) -> bool {
        let pred = p.predict(pc);
        p.resolve(&pred, outcome);
        if pred.taken != outcome {
            p.repair(&pred, outcome);
        }
        pred.taken
    }

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = GsharePredictor::new(10);
        let mut correct_tail = 0;
        for i in 0..64 {
            let predicted = predict_resolve(&mut p, 100, true);
            if i >= 32 && predicted {
                correct_tail += 1;
            }
        }
        assert!(
            correct_tail >= 30,
            "an always-taken branch must become almost perfectly predicted, got {correct_tail}/32"
        );
        assert!(p.stats().accuracy() > 0.5);
    }

    #[test]
    fn learns_an_alternating_pattern_through_history() {
        // With global history, a strictly alternating branch becomes
        // almost perfectly predictable once the counters warm up.
        let mut p = GsharePredictor::new(12);
        let mut outcome = false;
        let mut correct_tail = 0;
        for i in 0..400 {
            outcome = !outcome;
            let predicted = predict_resolve(&mut p, 7, outcome);
            if i >= 200 && predicted == outcome {
                correct_tail += 1;
            }
        }
        assert!(
            correct_tail >= 190,
            "alternating branch should be almost perfectly predicted, got {correct_tail}/200"
        );
    }

    #[test]
    fn speculative_history_is_repaired_after_misprediction() {
        let mut p = GsharePredictor::new(8);
        let h0 = p.history();
        let pred = p.predict(42);
        assert_ne!(p.history() & 1, 2); // history shifted

        // Suppose the prediction was wrong: repair must rebuild the history
        // from the pre-branch value plus the actual outcome.
        p.repair(&pred, !pred.taken);
        assert_eq!(
            p.history(),
            ((h0 << 1) | (!pred.taken) as u64) & ((1 << 8) - 1)
        );
    }

    #[test]
    fn counters_saturate() {
        let mut p = GsharePredictor::new(4);
        let pred = p.predict(3);
        for _ in 0..10 {
            p.resolve(&pred, true);
        }
        assert_eq!(p.table[pred.table_index], 3);
        for _ in 0..10 {
            p.resolve(&pred, false);
        }
        assert_eq!(p.table[pred.table_index], 0);
    }

    #[test]
    fn accuracy_accounts_only_resolved_branches() {
        let mut p = GsharePredictor::new(6);
        let a = p.predict(1);
        let _b = p.predict(2); // never resolved (wrong path)
        p.resolve(&a, a.taken);
        let s = p.stats();
        assert_eq!(s.predictions, 2);
        assert_eq!(s.correct + s.mispredicted, 1);
    }

    #[test]
    #[should_panic(expected = "between 1 and 24")]
    fn rejects_degenerate_history_length() {
        let _ = GsharePredictor::new(0);
    }

    #[test]
    fn table_size_matches_history_bits() {
        let p = GsharePredictor::new(18);
        assert_eq!(p.table.len(), 1 << 18);
    }
}
