//! Pipeline view of the reorder structure.
//!
//! `earlyreg-core` keeps the *rename-side* bookkeeping of in-flight
//! instructions (physical identifiers, release bits).  This module keeps the
//! *pipeline-side* state: execution status, computed results, branch outcomes
//! and memory addresses.  Both are indexed by the same [`InstrId`] and sized
//! by the same Table 2 entry (128), mirroring how the paper treats the ROS as
//! one structure with several fields.

use crate::branch::Prediction;
use earlyreg_core::{InstrId, RenamedInstr};
use earlyreg_isa::Instruction;
use std::collections::VecDeque;

/// Execution status of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrState {
    /// Renamed and waiting for operands / a functional unit.
    Dispatched,
    /// Executing; the result is available at `complete_at`.
    Issued {
        /// Cycle at which the result becomes available.
        complete_at: u64,
    },
    /// Finished execution; eligible to commit when it reaches the head.
    Completed,
}

/// One reorder-structure entry (pipeline view).
#[derive(Debug, Clone, Copy)]
pub struct RobEntry {
    /// Dynamic instruction identifier (shared with the rename unit).
    pub id: InstrId,
    /// Static instruction index.
    pub pc: usize,
    /// The instruction itself.
    pub instr: Instruction,
    /// Operand physical registers.
    pub renamed: RenamedInstr,
    /// Execution status.
    pub state: InstrState,
    /// Direction prediction, for conditional branches.
    pub prediction: Option<Prediction>,
    /// Predicted direction (true also for unconditional jumps).
    pub predicted_taken: bool,
    /// PC the fetch unit continued at after this instruction.
    pub predicted_next: usize,
    /// Resolved direction of a conditional branch.
    pub actual_taken: Option<bool>,
    /// Correct next PC once resolved.
    pub actual_next: usize,
    /// Whether a conditional branch has been resolved (trained + recovered).
    pub resolved: bool,
    /// Destination result as a raw 64-bit pattern.
    pub result: Option<u64>,
    /// Effective word address of a memory operation.
    pub mem_addr: Option<usize>,
    /// Store data (raw bits).
    pub store_data: Option<u64>,
    /// Cycle the instruction entered the reorder structure.
    pub dispatched_at: u64,
}

/// The reorder structure (pipeline view), ordered oldest → youngest.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    entries: VecDeque<RobEntry>,
    capacity: usize,
}

impl ReorderBuffer {
    /// Create an empty buffer with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ReorderBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further instruction can be dispatched.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Append a newly dispatched instruction.
    pub fn push(&mut self, entry: RobEntry) {
        assert!(!self.is_full(), "reorder structure overflow");
        if let Some(back) = self.entries.back() {
            assert!(
                back.id < entry.id,
                "entries must be dispatched in program order"
            );
        }
        self.entries.push_back(entry);
    }

    fn position(&self, id: InstrId) -> Option<usize> {
        let idx = self.entries.partition_point(|e| e.id < id);
        (idx < self.entries.len() && self.entries[idx].id == id).then_some(idx)
    }

    /// Shared access by id.
    pub fn get(&self, id: InstrId) -> Option<&RobEntry> {
        self.position(id).map(|i| &self.entries[i])
    }

    /// Mutable access by id.
    pub fn get_mut(&mut self, id: InstrId) -> Option<&mut RobEntry> {
        self.position(id).map(move |i| &mut self.entries[i])
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Remove the oldest entry, which must be `id`.
    pub fn pop_head(&mut self, id: InstrId) -> RobEntry {
        let head = self
            .entries
            .pop_front()
            .expect("pop from empty reorder structure");
        assert_eq!(head.id, id, "commit must proceed in program order");
        head
    }

    /// Remove every entry strictly younger than `id`, returning how many were
    /// removed.
    pub fn squash_after(&mut self, id: InstrId) -> usize {
        let mut squashed = 0;
        while let Some(back) = self.entries.back() {
            if back.id > id {
                self.entries.pop_back();
                squashed += 1;
            } else {
                break;
            }
        }
        squashed
    }

    /// Remove everything, returning how many entries were removed.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Iterate oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::Instruction;

    fn entry(id: u64) -> RobEntry {
        RobEntry {
            id: InstrId(id),
            pc: id as usize,
            instr: Instruction::nop(),
            renamed: RenamedInstr {
                id: InstrId(id),
                src1: None,
                src2: None,
                dst: None,
            },
            state: InstrState::Dispatched,
            prediction: None,
            predicted_taken: false,
            predicted_next: id as usize + 1,
            actual_taken: None,
            actual_next: 0,
            resolved: false,
            result: None,
            mem_addr: None,
            store_data: None,
            dispatched_at: 0,
        }
    }

    #[test]
    fn push_lookup_pop() {
        let mut rob = ReorderBuffer::new(4);
        rob.push(entry(1));
        rob.push(entry(3));
        assert_eq!(rob.len(), 2);
        assert!(rob.get(InstrId(3)).is_some());
        assert!(rob.get(InstrId(2)).is_none());
        assert_eq!(rob.head().unwrap().id, InstrId(1));
        let popped = rob.pop_head(InstrId(1));
        assert_eq!(popped.id, InstrId(1));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut rob = ReorderBuffer::new(2);
        rob.push(entry(1));
        rob.push(entry(2));
        assert!(rob.is_full());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut rob = ReorderBuffer::new(1);
        rob.push(entry(1));
        rob.push(entry(2));
    }

    #[test]
    fn squash_after_removes_younger_entries() {
        let mut rob = ReorderBuffer::new(8);
        for i in 1..=5 {
            rob.push(entry(i));
        }
        assert_eq!(rob.squash_after(InstrId(2)), 3);
        assert_eq!(rob.len(), 2);
        assert!(rob.get(InstrId(2)).is_some());
    }

    #[test]
    fn clear_reports_count() {
        let mut rob = ReorderBuffer::new(8);
        rob.push(entry(1));
        rob.push(entry(2));
        assert_eq!(rob.clear(), 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn state_transitions_are_representable() {
        let mut rob = ReorderBuffer::new(2);
        rob.push(entry(1));
        rob.get_mut(InstrId(1)).unwrap().state = InstrState::Issued { complete_at: 7 };
        assert_eq!(
            rob.get(InstrId(1)).unwrap().state,
            InstrState::Issued { complete_at: 7 }
        );
        rob.get_mut(InstrId(1)).unwrap().state = InstrState::Completed;
        assert_eq!(rob.get(InstrId(1)).unwrap().state, InstrState::Completed);
    }
}
