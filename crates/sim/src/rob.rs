//! Pipeline view of the reorder structure.
//!
//! `earlyreg-core` keeps the *rename-side* bookkeeping of in-flight
//! instructions (physical identifiers, release bits).  This module keeps the
//! *pipeline-side* state: execution status, computed results, branch outcomes
//! and memory addresses.  Both are indexed by the same [`InstrId`] and sized
//! by the same Table 2 entry (128), mirroring how the paper treats the ROS as
//! one structure with several fields.
//!
//! ## Organisation
//!
//! The buffer is a fixed-capacity, slot-indexed ring
//! ([`earlyreg_core::IdRing`]): entries occupy stable physical slots for
//! their whole lifetime, `InstrId → slot` resolves in O(1) through a dense
//! id-window (ids are monotonically allocated; squash gaps map to an invalid
//! sentinel), and commits/squashes move only the head/tail cursors.  The
//! pipeline's event lists (ready instructions, scheduled completions) cache
//! `(id, slot)` pairs and revalidate them against the ring with
//! [`ReorderBuffer::at_slot`], so the per-cycle loops never scan the window.
//!
//! ## Struct-of-arrays scheduling state
//!
//! The fields the per-cycle scheduling loops *mutate* — execution status,
//! outstanding-source count, attention-list membership — live in dense
//! per-slot side arrays rather than in [`RobEntry`].  A wakeup or an issue
//! check touches a few bytes in a hot 2 KB array instead of pulling the
//! entry's several cache lines; the wide entry itself is written once at
//! dispatch and read back at issue/writeback/commit.  The side arrays are
//! only meaningful for occupied slots (callers validate the slot's id first,
//! exactly as they do for entry access), and are reset on push.

use crate::branch::Prediction;
use earlyreg_core::{HasInstrId, IdRing, InstrId, RenamedInstr};
use earlyreg_isa::Instruction;

/// Execution status of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrState {
    /// Renamed and waiting for operands / a functional unit.
    Dispatched,
    /// Executing; the result is available at `complete_at`.
    Issued {
        /// Cycle at which the result becomes available.
        complete_at: u64,
    },
    /// Finished execution; eligible to commit when it reaches the head.
    Completed,
}

/// One reorder-structure entry (pipeline view).
#[derive(Debug, Clone, Copy)]
pub struct RobEntry {
    /// Dynamic instruction identifier (shared with the rename unit).
    pub id: InstrId,
    /// Static instruction index.
    pub pc: usize,
    /// The instruction itself.
    pub instr: Instruction,
    /// Operand physical registers.
    pub renamed: RenamedInstr,
    /// Direction prediction, for conditional branches.
    pub prediction: Option<Prediction>,
    /// Predicted direction (true also for unconditional jumps).
    pub predicted_taken: bool,
    /// PC the fetch unit continued at after this instruction.
    pub predicted_next: usize,
    /// Resolved direction of a conditional branch.
    pub actual_taken: Option<bool>,
    /// Correct next PC once resolved.
    pub actual_next: usize,
    /// Whether a conditional branch has been resolved (trained + recovered).
    pub resolved: bool,
    /// Destination result as a raw 64-bit pattern.
    pub result: Option<u64>,
    /// Effective word address of a memory operation.
    pub mem_addr: Option<usize>,
    /// Store data (raw bits).
    pub store_data: Option<u64>,
    /// Cycle the instruction entered the reorder structure.
    pub dispatched_at: u64,
    /// Committed position in the replay trace, or
    /// [`earlyreg_isa::NO_TRACE`] when not covered by a trace.
    pub trace_idx: u32,
}

impl HasInstrId for RobEntry {
    fn instr_id(&self) -> InstrId {
        self.id
    }
}

/// The reorder structure (pipeline view), ordered oldest → youngest.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    entries: IdRing<RobEntry>,
    capacity: usize,
    // Struct-of-arrays scheduling state, indexed by physical slot (see the
    // module documentation).  Values are meaningful only while the slot is
    // occupied; push resets them.
    /// Execution status.
    states: Vec<InstrState>,
    /// Unready source registers still being waited on (maintained by the
    /// pipeline's wakeup lists; duplicates count twice when both sources
    /// name the same register).
    waiting_srcs: Vec<u8>,
    /// True while the instruction is queued in the pipeline's issue
    /// attention list (guards against double insertion).
    in_attention: Vec<bool>,
}

impl ReorderBuffer {
    /// Create an empty buffer with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let entries: IdRing<RobEntry> = IdRing::with_capacity(capacity);
        let slots = entries.slot_count();
        ReorderBuffer {
            entries,
            capacity,
            states: vec![InstrState::Dispatched; slots],
            waiting_srcs: vec![0; slots],
            in_attention: vec![false; slots],
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when no further instruction can be dispatched.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Append a newly dispatched instruction; returns its stable slot index.
    /// The slot's scheduling state is reset (Dispatched, no outstanding
    /// sources, not in the attention list).
    pub fn push(&mut self, entry: RobEntry) -> u32 {
        assert!(!self.is_full(), "reorder structure overflow");
        let slot = self.entries.push(entry);
        self.states[slot as usize] = InstrState::Dispatched;
        self.waiting_srcs[slot as usize] = 0;
        self.in_attention[slot as usize] = false;
        slot
    }

    /// O(1) id → slot resolution.
    pub fn slot_of(&self, id: InstrId) -> Option<u32> {
        self.entries.slot_of(id)
    }

    /// Entry occupying `slot`, if any (callers revalidating cached
    /// `(id, slot)` pairs must compare ids).
    #[inline]
    pub fn at_slot(&self, slot: u32) -> Option<&RobEntry> {
        self.entries.at(slot)
    }

    /// Mutable access by slot.
    #[inline]
    pub fn at_slot_mut(&mut self, slot: u32) -> Option<&mut RobEntry> {
        self.entries.at_mut(slot)
    }

    /// Shared access by id (O(1)).
    pub fn get(&self, id: InstrId) -> Option<&RobEntry> {
        self.entries.get(id)
    }

    /// Mutable access by id (O(1)).
    pub fn get_mut(&mut self, id: InstrId) -> Option<&mut RobEntry> {
        self.entries.get_mut(id)
    }

    /// The oldest entry.
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Slot of the oldest entry.
    #[inline]
    pub fn head_slot(&self) -> Option<u32> {
        self.entries.front_slot()
    }

    /// Execution status of the (occupied, id-validated) slot.
    #[inline]
    pub fn state(&self, slot: u32) -> InstrState {
        self.states[slot as usize]
    }

    /// Update the execution status of a slot.
    #[inline]
    pub fn set_state(&mut self, slot: u32, state: InstrState) {
        self.states[slot as usize] = state;
    }

    /// Outstanding unready sources of a slot.
    #[inline]
    pub fn waiting_srcs(&self, slot: u32) -> u8 {
        self.waiting_srcs[slot as usize]
    }

    /// Update the outstanding-source count of a slot.
    #[inline]
    pub fn set_waiting_srcs(&mut self, slot: u32, n: u8) {
        self.waiting_srcs[slot as usize] = n;
    }

    /// Attention-list membership of a slot.
    #[inline]
    pub fn in_attention(&self, slot: u32) -> bool {
        self.in_attention[slot as usize]
    }

    /// Update the attention-list membership of a slot.
    #[inline]
    pub fn set_in_attention(&mut self, slot: u32, v: bool) {
        self.in_attention[slot as usize] = v;
    }

    /// Remove the oldest entry, which must be `id`.
    pub fn pop_head(&mut self, id: InstrId) -> RobEntry {
        assert!(!self.is_empty(), "pop from empty reorder structure");
        let head = self.entries.pop_front();
        assert_eq!(head.id, id, "commit must proceed in program order");
        head
    }

    /// Remove every entry strictly younger than `id`, returning how many were
    /// removed.
    pub fn squash_after(&mut self, id: InstrId) -> usize {
        self.entries.squash_after(id, false, |_| {})
    }

    /// Remove everything, returning how many entries were removed.
    pub fn clear(&mut self) -> usize {
        self.entries.drain_all(|_| {})
    }

    /// Iterate oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::Instruction;

    fn entry(id: u64) -> RobEntry {
        RobEntry {
            id: InstrId(id),
            pc: id as usize,
            instr: Instruction::nop(),
            renamed: RenamedInstr {
                id: InstrId(id),
                src1: None,
                src2: None,
                dst: None,
            },
            prediction: None,
            predicted_taken: false,
            predicted_next: id as usize + 1,
            actual_taken: None,
            actual_next: 0,
            resolved: false,
            result: None,
            mem_addr: None,
            store_data: None,
            dispatched_at: 0,
            trace_idx: earlyreg_isa::NO_TRACE,
        }
    }

    #[test]
    fn push_lookup_pop() {
        let mut rob = ReorderBuffer::new(4);
        rob.push(entry(1));
        rob.push(entry(3));
        assert_eq!(rob.len(), 2);
        assert!(rob.get(InstrId(3)).is_some());
        assert!(rob.get(InstrId(2)).is_none());
        assert_eq!(rob.head().unwrap().id, InstrId(1));
        let popped = rob.pop_head(InstrId(1));
        assert_eq!(popped.id, InstrId(1));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut rob = ReorderBuffer::new(2);
        rob.push(entry(1));
        rob.push(entry(2));
        assert!(rob.is_full());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut rob = ReorderBuffer::new(1);
        rob.push(entry(1));
        rob.push(entry(2));
    }

    #[test]
    fn squash_after_removes_younger_entries() {
        let mut rob = ReorderBuffer::new(8);
        for i in 1..=5 {
            rob.push(entry(i));
        }
        assert_eq!(rob.squash_after(InstrId(2)), 3);
        assert_eq!(rob.len(), 2);
        assert!(rob.get(InstrId(2)).is_some());
    }

    #[test]
    fn clear_reports_count() {
        let mut rob = ReorderBuffer::new(8);
        rob.push(entry(1));
        rob.push(entry(2));
        assert_eq!(rob.clear(), 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn state_transitions_are_representable() {
        let mut rob = ReorderBuffer::new(2);
        let slot = rob.push(entry(1));
        assert_eq!(rob.state(slot), InstrState::Dispatched);
        rob.set_state(slot, InstrState::Issued { complete_at: 7 });
        assert_eq!(rob.state(slot), InstrState::Issued { complete_at: 7 });
        rob.set_state(slot, InstrState::Completed);
        assert_eq!(rob.state(slot), InstrState::Completed);
    }

    #[test]
    fn push_resets_slot_scheduling_state() {
        let mut rob = ReorderBuffer::new(2);
        let slot = rob.push(entry(1));
        rob.set_state(slot, InstrState::Completed);
        rob.set_waiting_srcs(slot, 2);
        rob.set_in_attention(slot, true);
        rob.pop_head(InstrId(1));
        // A later push reusing the slot must start from a clean state.
        let mut reused = None;
        for id in 2..10 {
            let s = rob.push(entry(id));
            if s == slot {
                reused = Some(s);
                break;
            }
            rob.pop_head(InstrId(id));
        }
        let slot = reused.expect("the ring reuses vacated slots");
        assert_eq!(rob.state(slot), InstrState::Dispatched);
        assert_eq!(rob.waiting_srcs(slot), 0);
        assert!(!rob.in_attention(slot));
    }

    #[test]
    fn slots_are_stable_and_validate_by_id() {
        let mut rob = ReorderBuffer::new(4);
        let s1 = rob.push(entry(1));
        let s2 = rob.push(entry(2));
        assert_eq!(rob.at_slot(s2).unwrap().id, InstrId(2));
        rob.pop_head(InstrId(1));
        // Slot 2 is unaffected by the head moving.
        assert_eq!(rob.at_slot(s2).unwrap().id, InstrId(2));
        // Slot 1 is vacated; a later push may reuse it, detected by id.
        assert!(rob.at_slot(s1).is_none());
        for id in 3..=5 {
            rob.push(entry(id));
        }
        if let Some(e) = rob.at_slot(s1) {
            assert_ne!(e.id, InstrId(1));
        }
    }

    #[test]
    fn wraparound_after_many_squashes_keeps_lookups_exact() {
        // Drive the ring through many push/squash/commit rounds so the head
        // and tail wrap repeatedly and the id space accumulates squash gaps;
        // id lookups must stay exact throughout.
        let mut rob = ReorderBuffer::new(8);
        let mut next_id = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for round in 0..50 {
            while !rob.is_full() {
                rob.push(entry(next_id));
                live.push(next_id);
                next_id += 1;
            }
            // Squash a round-dependent suffix (0..=6 entries).
            let keep = live.len() - (round % 7);
            let pivot = live[keep - 1];
            assert_eq!(rob.squash_after(InstrId(pivot)), live.len() - keep);
            live.truncate(keep);
            // Simulate ids consumed elsewhere, then commit from the head.
            next_id += (round % 5) as u64;
            for _ in 0..2.min(live.len()) {
                let id = live.remove(0);
                assert_eq!(rob.pop_head(InstrId(id)).id, InstrId(id));
            }
            // Every live id resolves; squashed and unallocated ids do not.
            for &id in &live {
                assert_eq!(rob.get(InstrId(id)).unwrap().id, InstrId(id));
            }
            assert!(rob.get(InstrId(next_id + 1)).is_none());
        }
    }

    #[test]
    fn squash_after_at_every_offset() {
        for offset in 0..8u64 {
            let mut rob = ReorderBuffer::new(8);
            for id in 0..8 {
                rob.push(entry(id));
            }
            let removed = rob.squash_after(InstrId(offset));
            assert_eq!(removed as u64, 7 - offset);
            assert_eq!(rob.len() as u64, offset + 1);
            for id in 0..8 {
                assert_eq!(rob.get(InstrId(id)).is_some(), id <= offset);
            }
            // The buffer remains usable: refill to capacity and drain.
            for id in 100..(100 + 7 - offset) {
                rob.push(entry(id));
            }
            assert!(rob.is_full());
            for id in 0..=offset {
                rob.pop_head(InstrId(id));
            }
        }
    }
}
