//! Front-end structures: fetched instructions, the fetch buffer that sits
//! between the fetch and rename stages, and the shared per-PC fetch
//! precompute table.
//!
//! The fetch *logic* (I-cache access, prediction, redirects) lives in
//! [`pipeline`](crate::pipeline) because it needs the predictor, the memory
//! hierarchy and the program at once; this module holds the data types plus
//! the [`FrontEndTable`]: everything the fetch stage derives from the
//! *static* program — instruction kind, I-cache line index, control-transfer
//! target — computed once per (program, line size) and shared by every lane
//! of a sweep.  Per-lane *dynamic* front-end state (predictor counters,
//! replay cursor, I-cache tags) stays per simulator, which is what keeps
//! lane-stepped statistics bit-identical to sequential runs.

use crate::branch::Prediction;
use earlyreg_isa::{Instruction, Opcode, Program};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, Weak};

/// Per-PC fetch classification: not a control transfer.
pub const FETCH_OTHER: u8 = 0;
/// Per-PC fetch classification: conditional branch (needs a prediction).
pub const FETCH_BRANCH: u8 = 1;
/// Per-PC fetch classification: unconditional jump.
pub const FETCH_JUMP: u8 = 2;
/// Per-PC fetch classification: halt.
pub const FETCH_HALT: u8 = 3;

/// Static per-PC fetch facts (see [`FrontEndTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchInfo {
    /// One of the `FETCH_*` constants.
    pub kind: u8,
    /// I-cache line index of this instruction's byte address.
    pub line: u32,
    /// Control-transfer target (branch/jump), else 0.
    pub target: u32,
}

/// Precomputed per-PC fetch facts for one program under one I-cache line
/// size.  The fetch stage's index math (byte address → line division, opcode
/// classification, target extraction) is identical for every sweep point
/// running the same workload, so it is computed once here and shared.
#[derive(Debug)]
pub struct FrontEndTable {
    info: Vec<FetchInfo>,
}

impl FrontEndTable {
    /// Build the table for `program` with `line_bytes`-byte I-cache lines.
    pub fn build(program: &Program, line_bytes: u64) -> Self {
        const INSTR_BYTES: u64 = 4;
        let info = program
            .instrs
            .iter()
            .enumerate()
            .map(|(pc, instr)| {
                let (kind, target) = match instr.op {
                    Opcode::Branch(_) => (FETCH_BRANCH, instr.imm as u32),
                    Opcode::Jump => (FETCH_JUMP, instr.imm as u32),
                    Opcode::Halt => (FETCH_HALT, 0),
                    _ => (FETCH_OTHER, 0),
                };
                FetchInfo {
                    kind,
                    line: (pc as u64 * INSTR_BYTES / line_bytes) as u32,
                    target,
                }
            })
            .collect();
        FrontEndTable { info }
    }

    /// Facts for the instruction at `pc` (must be in range).
    #[inline]
    pub fn at(&self, pc: usize) -> FetchInfo {
        self.info[pc]
    }

    /// Number of PCs covered.
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.info.is_empty()
    }
}

/// The shared front-end table for a program, memoized by `Arc` identity and
/// line size like [`decoded_trace_for`](crate::decoded_trace_for): every
/// lane of a sweep running the same workload gets the same table.  Entries
/// are dropped when their program is; a racing duplicate build is benign.
pub fn front_end_table_for(program: &Arc<Program>, line_bytes: u64) -> Arc<FrontEndTable> {
    type CacheEntry = (Weak<Program>, u64, Arc<FrontEndTable>);
    static CACHE: Mutex<Vec<CacheEntry>> = Mutex::new(Vec::new());

    let lookup = |cache: &mut Vec<CacheEntry>| {
        cache.retain(|(weak, _, _)| weak.strong_count() > 0);
        cache.iter().find_map(|(weak, lb, table)| {
            let strong = weak.upgrade()?;
            (Arc::ptr_eq(&strong, program) && *lb == line_bytes).then(|| Arc::clone(table))
        })
    };

    if let Some(table) = lookup(&mut CACHE.lock().expect("front-end table cache poisoned")) {
        return table;
    }
    let fresh = Arc::new(FrontEndTable::build(program, line_bytes));
    let mut cache = CACHE.lock().expect("front-end table cache poisoned");
    if let Some(table) = lookup(&mut cache) {
        return table;
    }
    cache.push((Arc::downgrade(program), line_bytes, Arc::clone(&fresh)));
    fresh
}

/// One instruction delivered by the fetch stage.
#[derive(Debug, Clone, Copy)]
pub struct FetchedInstr {
    /// Static instruction index.
    pub pc: usize,
    /// The instruction.
    pub instr: Instruction,
    /// Direction prediction, for conditional branches.
    pub prediction: Option<Prediction>,
    /// Whether the fetch unit treated this instruction as a taken control
    /// transfer (true for predicted-taken branches and for jumps).
    pub predicted_taken: bool,
    /// PC the fetch unit continued at after this instruction.
    pub predicted_next: usize,
    /// Cycle the instruction was fetched.
    pub fetched_at: u64,
    /// Committed position in the replay trace, or
    /// [`earlyreg_isa::NO_TRACE`] for wrong-path / live-front-end fetches.
    pub trace_idx: u32,
}

/// Bounded FIFO between fetch and rename.
#[derive(Debug, Clone)]
pub struct FetchBuffer {
    queue: VecDeque<FetchedInstr>,
    capacity: usize,
}

impl FetchBuffer {
    /// Create an empty buffer holding at most `capacity` instructions.
    pub fn new(capacity: usize) -> Self {
        FetchBuffer {
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of instructions waiting to be renamed.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when the fetch stage must stop delivering.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Free slots available this cycle.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Append a fetched instruction.
    pub fn push(&mut self, instr: FetchedInstr) {
        debug_assert!(!self.is_full(), "fetch buffer overflow");
        self.queue.push_back(instr);
    }

    /// Oldest fetched instruction, if any.
    pub fn front(&self) -> Option<&FetchedInstr> {
        self.queue.front()
    }

    /// Remove and return the oldest fetched instruction.
    pub fn pop(&mut self) -> Option<FetchedInstr> {
        self.queue.pop_front()
    }

    /// Drop everything (recovery).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetched(pc: usize) -> FetchedInstr {
        FetchedInstr {
            pc,
            instr: Instruction::nop(),
            prediction: None,
            predicted_taken: false,
            predicted_next: pc + 1,
            fetched_at: 0,
            trace_idx: earlyreg_isa::NO_TRACE,
        }
    }

    #[test]
    fn fifo_order() {
        let mut b = FetchBuffer::new(4);
        b.push(fetched(10));
        b.push(fetched(11));
        assert_eq!(b.len(), 2);
        assert_eq!(b.front().unwrap().pc, 10);
        assert_eq!(b.pop().unwrap().pc, 10);
        assert_eq!(b.pop().unwrap().pc, 11);
        assert!(b.pop().is_none());
    }

    #[test]
    fn front_end_table_classifies_and_indexes_lines() {
        use earlyreg_isa::{ArchReg, BranchCond, ProgramBuilder};
        let mut b = ProgramBuilder::new("fe-table");
        let r = ArchReg::int(1);
        let start = b.here();
        b.li(r, 2); // pc 0
        let top = b.here();
        b.addi(r, r, -1); // pc 1
        b.branch(BranchCond::Gt, r, None, top); // pc 2 → pc 1
        b.jump(start); // pc 3 → pc 0
        b.halt(); // pc 4
        let p = Arc::new(b.build().unwrap());

        let t = front_end_table_for(&p, 32);
        assert_eq!(t.len(), p.instrs.len());
        assert_eq!(t.at(0).kind, FETCH_OTHER);
        assert_eq!(t.at(2).kind, FETCH_BRANCH);
        assert_eq!(t.at(2).target, 1);
        assert_eq!(t.at(3).kind, FETCH_JUMP);
        assert_eq!(t.at(3).target, 0);
        assert_eq!(t.at(4).kind, FETCH_HALT);
        // 32-byte lines hold 8 four-byte instructions.
        assert_eq!(t.at(0).line, 0);
        assert_eq!(t.at(4).line, 0);

        // Memoized per (program, line size).
        let again = front_end_table_for(&p, 32);
        assert!(Arc::ptr_eq(&t, &again));
        let other_lines = front_end_table_for(&p, 16);
        assert!(!Arc::ptr_eq(&t, &other_lines));
        assert_eq!(other_lines.at(4).line, 1);
    }

    #[test]
    fn capacity_accounting() {
        let mut b = FetchBuffer::new(2);
        assert_eq!(b.free_slots(), 2);
        b.push(fetched(0));
        assert_eq!(b.free_slots(), 1);
        b.push(fetched(1));
        assert!(b.is_full());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.free_slots(), 2);
    }
}
