//! Front-end structures: fetched instructions and the fetch buffer that sits
//! between the fetch and rename stages.
//!
//! The fetch *logic* (I-cache access, prediction, redirects) lives in
//! [`pipeline`](crate::pipeline) because it needs the predictor, the memory
//! hierarchy and the program at once; this module only holds the data types.

use crate::branch::Prediction;
use earlyreg_isa::Instruction;
use std::collections::VecDeque;

/// One instruction delivered by the fetch stage.
#[derive(Debug, Clone, Copy)]
pub struct FetchedInstr {
    /// Static instruction index.
    pub pc: usize,
    /// The instruction.
    pub instr: Instruction,
    /// Direction prediction, for conditional branches.
    pub prediction: Option<Prediction>,
    /// Whether the fetch unit treated this instruction as a taken control
    /// transfer (true for predicted-taken branches and for jumps).
    pub predicted_taken: bool,
    /// PC the fetch unit continued at after this instruction.
    pub predicted_next: usize,
    /// Cycle the instruction was fetched.
    pub fetched_at: u64,
    /// Committed position in the replay trace, or
    /// [`earlyreg_isa::NO_TRACE`] for wrong-path / live-front-end fetches.
    pub trace_idx: u32,
}

/// Bounded FIFO between fetch and rename.
#[derive(Debug, Clone)]
pub struct FetchBuffer {
    queue: VecDeque<FetchedInstr>,
    capacity: usize,
}

impl FetchBuffer {
    /// Create an empty buffer holding at most `capacity` instructions.
    pub fn new(capacity: usize) -> Self {
        FetchBuffer {
            queue: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of instructions waiting to be renamed.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when the fetch stage must stop delivering.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Free slots available this cycle.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Append a fetched instruction.
    pub fn push(&mut self, instr: FetchedInstr) {
        debug_assert!(!self.is_full(), "fetch buffer overflow");
        self.queue.push_back(instr);
    }

    /// Oldest fetched instruction, if any.
    pub fn front(&self) -> Option<&FetchedInstr> {
        self.queue.front()
    }

    /// Remove and return the oldest fetched instruction.
    pub fn pop(&mut self) -> Option<FetchedInstr> {
        self.queue.pop_front()
    }

    /// Drop everything (recovery).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetched(pc: usize) -> FetchedInstr {
        FetchedInstr {
            pc,
            instr: Instruction::nop(),
            prediction: None,
            predicted_taken: false,
            predicted_next: pc + 1,
            fetched_at: 0,
            trace_idx: earlyreg_isa::NO_TRACE,
        }
    }

    #[test]
    fn fifo_order() {
        let mut b = FetchBuffer::new(4);
        b.push(fetched(10));
        b.push(fetched(11));
        assert_eq!(b.len(), 2);
        assert_eq!(b.front().unwrap().pc, 10);
        assert_eq!(b.pop().unwrap().pc, 10);
        assert_eq!(b.pop().unwrap().pc, 11);
        assert!(b.pop().is_none());
    }

    #[test]
    fn capacity_accounting() {
        let mut b = FetchBuffer::new(2);
        assert_eq!(b.free_slots(), 2);
        b.push(fetched(0));
        assert_eq!(b.free_slots(), 1);
        b.push(fetched(1));
        assert!(b.is_full());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.free_slots(), 2);
    }
}
