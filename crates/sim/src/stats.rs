//! Simulation statistics.

use crate::branch::PredictorStats;
use crate::cache::HierarchyStats;
use crate::fu::FuStats;
use earlyreg_core::{OccupancyTotals, ReleaseStats};
use serde::{Deserialize, Serialize};

/// Cycles the rename stage was blocked, by reason (counted at most once per
/// cycle per reason, for the instruction at the head of the fetch buffer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenameStallCycles {
    /// No free physical register (the stall early release attacks).
    pub free_list: u64,
    /// Reorder structure full.
    pub ros_full: u64,
    /// Load/store queue full.
    pub lsq_full: u64,
    /// Too many unverified branches in flight.
    pub pending_branches: u64,
}

impl RenameStallCycles {
    /// Total stalled cycles.
    pub fn total(&self) -> u64 {
        self.free_list + self.ros_full + self.lsq_full + self.pending_branches
    }
}

/// Everything measured during one simulation run.
///
/// `PartialEq` compares every counter; the experiment point cache uses it to
/// prove that a cache hit is bit-identical to a cold simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed (architecturally executed) instructions.
    pub committed: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions renamed/dispatched (including wrong-path).
    pub renamed: u64,
    /// Instructions squashed by recoveries.
    pub squashed: u64,
    /// Committed conditional branches.
    pub committed_branches: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Resolved conditional branches that were mispredicted.
    pub mispredicted_branches: u64,
    /// Precise exceptions taken (injected).
    pub exceptions: u64,
    /// Commit-time reads of logical registers whose architectural value had
    /// been discarded by early release.  The paper's safety argument
    /// (Section 4.3) requires this to be zero; the tests assert it.
    pub oracle_violations: u64,
    /// Whether the program reached its `Halt` instruction.
    pub halted: bool,
    /// Rename stall breakdown.
    pub rename_stalls: RenameStallCycles,
    /// Branch predictor statistics.
    pub predictor: PredictorStats,
    /// Cache hierarchy statistics.
    pub memory: HierarchyStats,
    /// Functional-unit statistics.
    pub fu: FuStats,
    /// Register release/allocation accounting (from the rename unit).
    pub release: ReleaseStats,
    /// Integer register occupancy (Empty/Ready/Idle) integrals.
    pub occupancy_int: OccupancyTotals,
    /// FP register occupancy integrals.
    pub occupancy_fp: OccupancyTotals,
}

impl SimStats {
    /// Committed instructions per cycle — the paper's primary metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Committed conditional branches per committed instruction.
    pub fn branch_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.committed_branches as f64 / self.committed as f64
        }
    }

    /// Misprediction rate over resolved branches.
    pub fn mispredict_rate(&self) -> f64 {
        1.0 - self.predictor.accuracy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_committed_over_cycles() {
        let stats = SimStats {
            cycles: 100,
            committed: 250,
            ..SimStats::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_ipc() {
        assert_eq!(SimStats::default().ipc(), 0.0);
        assert_eq!(SimStats::default().branch_fraction(), 0.0);
    }

    #[test]
    fn stall_totals_sum_components() {
        let stalls = RenameStallCycles {
            free_list: 5,
            ros_full: 3,
            lsq_full: 1,
            pending_branches: 2,
        };
        assert_eq!(stalls.total(), 11);
    }
}
