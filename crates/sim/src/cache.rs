//! Set-associative caches with true-LRU replacement and the two-level
//! hierarchy of the paper's Table 2 (split 32 KB L1s, unified 1 MB L2,
//! 50-cycle main memory).
//!
//! The model is a latency model: an access returns the number of cycles the
//! requesting instruction waits.  Caches are blocking per access but the
//! pipeline may have many overlapping accesses in flight (their latencies are
//! computed independently), which approximates a lock-up-free cache with
//! ample MSHRs — adequate for the register-pressure study the paper performs.

use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio (0 when the cache was never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    tag: u64,
    last_used: u64,
}

/// One set-associative cache with LRU replacement.
///
/// Lines are stored set-major in one flat array (`sets × associativity`):
/// a single allocation instead of one `Vec` per set, which keeps simulator
/// construction cheap (the Table 2 hierarchy has thousands of sets) and the
/// way-scan of an access contiguous in memory.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    access_clock: u64,
    stats: CacheStats,
    set_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Build an empty (cold) cache.
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let sets = config.sets();
        Cache {
            lines: vec![Line::default(); sets * config.associativity],
            access_clock: 0,
            stats: CacheStats::default(),
            set_shift: config.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            config,
        }
    }

    /// Return to the freshly-built cold state (all lines invalid, zero
    /// stats), keeping the line allocation.  Simulator pooling uses this.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.access_clock = 0;
        self.stats = CacheStats::default();
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Access the line containing `byte_addr`; returns true on a hit.  The
    /// line is installed (LRU victim evicted) on a miss.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        self.access_clock += 1;
        let set_idx = ((byte_addr >> self.set_shift) & self.set_mask) as usize;
        let tag = byte_addr >> (self.set_shift + self.set_mask.count_ones());
        let base = set_idx * self.config.associativity;
        let set = &mut self.lines[base..base + self.config.associativity];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_used = self.access_clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Install into the LRU way (or the first invalid one).
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_used } else { 0 })
            .expect("associativity is non-zero");
        victim.valid = true;
        victim.tag = tag;
        victim.last_used = self.access_clock;
        false
    }
}

/// Per-level statistics of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 instruction cache.
    pub l1i: CacheStats,
    /// L1 data cache.
    pub l1d: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Accesses that went all the way to main memory.
    pub memory_accesses: u64,
}

/// The two-level hierarchy: split L1s, unified L2, flat main memory.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    memory_latency: u32,
    memory_accesses: u64,
}

impl MemoryHierarchy {
    /// Build a cold hierarchy.
    pub fn new(
        icache: CacheConfig,
        dcache: CacheConfig,
        l2: CacheConfig,
        memory_latency: u32,
    ) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(icache),
            l1d: Cache::new(dcache),
            l2: Cache::new(l2),
            memory_latency,
            memory_accesses: 0,
        }
    }

    /// Return every level to the cold state, keeping the allocations.
    pub fn reset(&mut self) {
        self.l1i.reset();
        self.l1d.reset();
        self.l2.reset();
        self.memory_accesses = 0;
    }

    /// True when this hierarchy was built with exactly these parameters
    /// (pool-reuse check).
    pub fn built_with(
        &self,
        icache: &CacheConfig,
        dcache: &CacheConfig,
        l2: &CacheConfig,
        memory_latency: u32,
    ) -> bool {
        self.l1i.config() == icache
            && self.l1d.config() == dcache
            && self.l2.config() == l2
            && self.memory_latency == memory_latency
    }

    /// Latency of an instruction fetch touching `byte_addr`.
    pub fn access_instruction(&mut self, byte_addr: u64) -> u32 {
        if self.l1i.access(byte_addr) {
            return self.l1i.config.hit_latency;
        }
        self.l1i.config.hit_latency + self.access_l2(byte_addr)
    }

    /// Latency of a data access (load or store) touching `byte_addr`.
    pub fn access_data(&mut self, byte_addr: u64) -> u32 {
        if self.l1d.access(byte_addr) {
            return self.l1d.config.hit_latency;
        }
        self.l1d.config.hit_latency + self.access_l2(byte_addr)
    }

    fn access_l2(&mut self, byte_addr: u64) -> u32 {
        if self.l2.access(byte_addr) {
            self.l2.config.hit_latency
        } else {
            self.memory_accesses += 1;
            self.l2.config.hit_latency + self.memory_latency
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            memory_accesses: self.memory_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        }
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(small_cache());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x104)); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_way() {
        let c_cfg = small_cache(); // 8 sets, 2 ways
        let mut c = Cache::new(c_cfg);
        let set_stride = 64 * 8; // addresses this far apart map to the same set
        let a = 0u64;
        let b = set_stride;
        let d = 2 * set_stride;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // refresh a: b becomes LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn conflict_free_addresses_do_not_evict_each_other() {
        let mut c = Cache::new(small_cache());
        for set in 0..8u64 {
            assert!(!c.access(set * 64));
        }
        for set in 0..8u64 {
            assert!(c.access(set * 64));
        }
    }

    #[test]
    fn hierarchy_latencies_compose() {
        let mut h = MemoryHierarchy::new(
            small_cache(),
            small_cache(),
            CacheConfig {
                size_bytes: 4096,
                associativity: 2,
                line_bytes: 64,
                hit_latency: 12,
            },
            50,
        );
        // Cold: L1 miss + L2 miss + memory.
        assert_eq!(h.access_data(0x1000), 1 + 12 + 50);
        // Warm L1.
        assert_eq!(h.access_data(0x1000), 1);
        // A different line in the same L2 set region: L1 miss, L2 miss.
        assert_eq!(h.access_data(0x2000), 1 + 12 + 50);
        // Instruction accesses use their own L1 but share the L2.
        let lat = h.access_instruction(0x1000);
        assert_eq!(lat, 1 + 12); // L1I miss, L2 hit (brought in by the data access)
        assert_eq!(h.stats().memory_accesses, 2);
    }

    #[test]
    fn miss_ratio_reporting() {
        let mut c = Cache::new(small_cache());
        c.access(0);
        c.access(0);
        c.access(64);
        let s = c.stats();
        assert_eq!(s.accesses(), 3);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
