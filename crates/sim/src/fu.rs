//! Functional-unit pool (the paper's Table 2 mix).
//!
//! Units are fully pipelined: each unit can start one operation per cycle and
//! an operation occupies the issue slot of its class only in the cycle it
//! starts.  Latencies come from [`MachineConfig`](crate::config::MachineConfig).

use earlyreg_isa::FuClass;
use serde::{Deserialize, Serialize};

/// Per-class issue counters for the current cycle plus lifetime statistics.
#[derive(Debug, Clone)]
pub struct FuPool {
    counts: [usize; 6],
    used_this_cycle: [usize; 6],
    issued_total: [u64; 6],
    structural_stalls: [u64; 6],
}

/// Lifetime utilisation statistics of the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuStats {
    /// Operations issued per class.
    pub issued: [u64; 6],
    /// Issue attempts rejected per class because every unit was busy.
    pub structural_stalls: [u64; 6],
}

impl FuPool {
    /// Create a pool with `counts[FuClass::index()]` units per class.
    pub fn new(counts: [usize; 6]) -> Self {
        FuPool {
            counts,
            used_this_cycle: [0; 6],
            issued_total: [0; 6],
            structural_stalls: [0; 6],
        }
    }

    /// Number of units of a class.
    pub fn count(&self, class: FuClass) -> usize {
        self.counts[class.index()]
    }

    /// Try to claim an issue slot on a unit of `class` for this cycle.
    pub fn try_issue(&mut self, class: FuClass) -> bool {
        let i = class.index();
        if self.used_this_cycle[i] < self.counts[i] {
            self.used_this_cycle[i] += 1;
            self.issued_total[i] += 1;
            true
        } else {
            self.structural_stalls[i] += 1;
            false
        }
    }

    /// Release all per-cycle issue slots (call once per simulated cycle).
    pub fn next_cycle(&mut self) {
        self.used_this_cycle = [0; 6];
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> FuStats {
        FuStats {
            issued: self.issued_total,
            structural_stalls: self.structural_stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_slots_are_bounded_per_cycle() {
        let mut pool = FuPool::new([2, 1, 1, 1, 1, 1]);
        assert!(pool.try_issue(FuClass::IntAlu));
        assert!(pool.try_issue(FuClass::IntAlu));
        assert!(!pool.try_issue(FuClass::IntAlu));
        assert!(pool.try_issue(FuClass::Mem));
        pool.next_cycle();
        assert!(pool.try_issue(FuClass::IntAlu));
    }

    #[test]
    fn classes_are_independent() {
        let mut pool = FuPool::new([1, 1, 1, 1, 1, 1]);
        assert!(pool.try_issue(FuClass::FpMul));
        assert!(pool.try_issue(FuClass::FpDiv));
        assert!(!pool.try_issue(FuClass::FpMul));
    }

    #[test]
    fn statistics_count_issues_and_stalls() {
        let mut pool = FuPool::new([1, 0, 0, 0, 0, 0]);
        assert!(pool.try_issue(FuClass::IntAlu));
        assert!(!pool.try_issue(FuClass::IntAlu));
        assert!(!pool.try_issue(FuClass::IntMul)); // zero units: always a stall
        let s = pool.stats();
        assert_eq!(s.issued[FuClass::IntAlu.index()], 1);
        assert_eq!(s.structural_stalls[FuClass::IntAlu.index()], 1);
        assert_eq!(s.structural_stalls[FuClass::IntMul.index()], 1);
    }

    #[test]
    fn table2_counts_are_reported() {
        let pool = FuPool::new([8, 4, 6, 4, 4, 4]);
        assert_eq!(pool.count(FuClass::IntAlu), 8);
        assert_eq!(pool.count(FuClass::Mem), 4);
    }
}
