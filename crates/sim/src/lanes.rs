//! The lane engine: step N same-workload sweep points in lockstep chunks.
//!
//! A fig10-style sweep runs the *same* program under many machine
//! configurations (release policy × register-file size).  Each point is an
//! independent [`Simulator`], but almost everything a simulator *reads* is
//! identical across points: the `Arc<Program>`, the decoded replay trace,
//! and the static per-PC fetch facts in the shared
//! [`FrontEndTable`](crate::FrontEndTable).  A [`LaneGroup`] exploits that
//! by stepping all points through those shared structures together:
//!
//! * **Lockstep rounds.** The group advances every unfinished lane by a
//!   fixed cycle chunk per round ([`LaneGroup::DEFAULT_CHUNK`]).  Within a
//!   round the shared program/trace/table stay hot in cache while each
//!   lane's private timing state (rename unit, ROB, LSQ, predictor,
//!   statistics) streams through — the front-end index math was already
//!   computed once per program, not once per lane.
//! * **Divergence detach / re-sync.** A lane whose prediction turns onto a
//!   wrong path stops claiming trace entries and executes live, exactly as
//!   in sequential stepping (see [`crate::replay`]); the group keeps
//!   stepping it and records the rounds it spent detached in
//!   [`LaneStats`].  Recovery re-synchronises the lane's cursor and it
//!   counts as attached again.  Detaching never changes *what* a lane
//!   computes — only the occupancy accounting — which is one half of the
//!   bit-identity argument.
//! * **Bit-identity.** Lanes never exchange dynamic state: every mutable
//!   structure is private to its simulator, and chaining
//!   [`Simulator::run_slice`] chunks is the same loop as one
//!   [`Simulator::run`] call.  Lane-stepped `SimStats` are therefore
//!   bit-identical to sequential runs; `tests/stats_equivalence.rs` pins
//!   this for every registered policy.
//! * **Pooling.** Finished lanes are torn down into a
//!   [`SimPool`](crate::SimPool) so the next group re-initialises their
//!   large allocations instead of re-allocating, and each lane's rename
//!   unit trims its high-water scratch growth at the point boundary.

use crate::pipeline::{RunLimits, SimPool, Simulator};
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};

/// True when `EARLYREG_NO_LANES` is set (to anything non-empty): sweep paths
/// should fall back to sequential per-point stepping for debugging, like
/// `EARLYREG_NO_REPLAY` does for the replay front-end.
pub fn lanes_disabled() -> bool {
    std::env::var_os("EARLYREG_NO_LANES").is_some_and(|v| !v.is_empty())
}

/// Occupancy statistics for one lane group (or aggregated over a sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneStats {
    /// Lanes the group was built with.
    pub lanes: u64,
    /// Lockstep rounds executed (a round steps every unfinished lane once).
    pub rounds: u64,
    /// Lane-rounds stepped (sum over rounds of unfinished lanes).
    pub live_lane_rounds: u64,
    /// Rounds in which every stepped lane was attached to its trace.
    pub full_rounds: u64,
    /// Lane-rounds stepped while detached from the trace (wrong path or
    /// live-front-end lane).
    pub detached_lane_rounds: u64,
    /// Total simulated cycles across all lanes.
    pub lane_cycles: u64,
}

impl LaneStats {
    /// Mean unfinished lanes per round — how full the group stayed.
    pub fn occupancy(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.live_lane_rounds as f64 / self.rounds as f64
        }
    }

    /// Fold another group's statistics into this one (sweep aggregation).
    pub fn merge(&mut self, other: &LaneStats) {
        self.lanes += other.lanes;
        self.rounds += other.rounds;
        self.live_lane_rounds += other.live_lane_rounds;
        self.full_rounds += other.full_rounds;
        self.detached_lane_rounds += other.detached_lane_rounds;
        self.lane_cycles += other.lane_cycles;
    }
}

struct Lane {
    sim: Simulator,
    limits: RunLimits,
    done: bool,
}

/// A group of same-workload simulators stepped in lockstep chunks.
pub struct LaneGroup {
    lanes: Vec<Lane>,
    chunk: u64,
    stats: LaneStats,
}

impl LaneGroup {
    /// Default cycles per lane per lockstep round: long enough to amortise
    /// the switch between lanes, short enough that the shared read-only
    /// structures stay cache-resident across the round.
    pub const DEFAULT_CHUNK: u64 = 1024;

    /// An empty group stepping `chunk` cycles per lane per round.
    pub fn new(chunk: u64) -> Self {
        assert!(chunk > 0, "lane chunk must be positive");
        LaneGroup {
            lanes: Vec::new(),
            chunk,
            stats: LaneStats::default(),
        }
    }

    /// An empty group with the default chunk size.
    pub fn with_default_chunk() -> Self {
        Self::new(Self::DEFAULT_CHUNK)
    }

    /// Add a lane.  Lanes are expected to share one `Arc<Program>` (and
    /// trace, when replaying) — that is where the lockstep win comes from —
    /// but nothing breaks if they don't.
    pub fn push(&mut self, sim: Simulator, limits: RunLimits) {
        self.lanes.push(Lane {
            sim,
            limits,
            done: false,
        });
        self.stats.lanes += 1;
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True when no lane was added.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Occupancy statistics so far.
    pub fn stats(&self) -> &LaneStats {
        &self.stats
    }

    /// One lockstep round: step every unfinished lane by the chunk.
    /// Returns false once every lane has finished.
    pub fn step_round(&mut self) -> bool {
        let mut live = 0u64;
        let mut detached = 0u64;
        for lane in &mut self.lanes {
            if lane.done {
                continue;
            }
            live += 1;
            if !lane.sim.replay_on_trace() {
                detached += 1;
            }
            let before = lane.sim.cycle();
            lane.done = lane.sim.run_slice(lane.limits, self.chunk);
            self.stats.lane_cycles += lane.sim.cycle() - before;
            if lane.done {
                // Point boundary: drop the branch-storm high-water scratch
                // growth before the carcass goes back to the pool.
                lane.sim.trim_scratch();
            }
        }
        if live == 0 {
            return false;
        }
        self.stats.rounds += 1;
        self.stats.live_lane_rounds += live;
        self.stats.detached_lane_rounds += detached;
        if detached == 0 {
            self.stats.full_rounds += 1;
        }
        true
    }

    /// Step rounds until every lane has finished.
    pub fn run(&mut self) {
        while self.step_round() {}
    }

    /// Run any unfinished lanes to completion, then tear the group down:
    /// per-lane final statistics in push order, the group's occupancy
    /// statistics, and every simulator carcass reclaimed into `pool`.
    pub fn into_results(mut self, pool: &mut SimPool) -> (Vec<SimStats>, LaneStats) {
        self.run();
        let stats = self.stats;
        let results = self
            .lanes
            .into_iter()
            .map(|lane| {
                let s = lane.sim.stats().clone();
                pool.reclaim(lane.sim);
                s
            })
            .collect();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::replay::decoded_trace_for;
    use earlyreg_core::ReleasePolicy;
    use earlyreg_isa::{ArchReg, BranchCond, Program, ProgramBuilder};
    use std::sync::Arc;

    fn loop_program(iters: i64) -> Arc<Program> {
        let mut b = ProgramBuilder::new("lane-loop");
        let i = ArchReg::int(1);
        let acc = ArchReg::int(2);
        b.li(i, iters);
        b.li(acc, 0);
        let top = b.here();
        b.addi(acc, acc, 3);
        b.addi(i, i, -1);
        b.branch(BranchCond::Gt, i, None, top);
        b.halt();
        Arc::new(b.build().unwrap())
    }

    fn config(policy: ReleasePolicy, regs: usize) -> MachineConfig {
        MachineConfig::small(policy, regs, regs)
    }

    #[test]
    fn lane_group_matches_sequential_runs() {
        let program = loop_program(300);
        let trace = decoded_trace_for(&program, u64::MAX);
        let points = [
            (ReleasePolicy::Conventional, 40),
            (ReleasePolicy::Basic, 40),
            (ReleasePolicy::Extended, 44),
        ];

        let sequential: Vec<_> = points
            .iter()
            .map(|&(policy, regs)| {
                let mut sim = Simulator::with_replay(
                    config(policy, regs),
                    Arc::clone(&program),
                    Arc::clone(&trace),
                );
                sim.run(RunLimits::default())
            })
            .collect();

        let mut pool = SimPool::new();
        let mut group = LaneGroup::new(64);
        for &(policy, regs) in &points {
            group.push(
                Simulator::with_replay_pooled(
                    config(policy, regs),
                    Arc::clone(&program),
                    Arc::clone(&trace),
                    &mut pool,
                ),
                RunLimits::default(),
            );
        }
        let (laned, lane_stats) = group.into_results(&mut pool);

        assert_eq!(
            laned, sequential,
            "lane-stepped stats must be bit-identical"
        );
        assert_eq!(lane_stats.lanes, 3);
        assert!(lane_stats.rounds > 0);
        assert!(lane_stats.occupancy() > 0.0);
        assert_eq!(
            lane_stats.lane_cycles,
            sequential.iter().map(|s| s.cycles).sum::<u64>()
        );
    }

    #[test]
    fn pooled_rebuild_is_bit_identical_across_points() {
        let program = loop_program(200);
        let trace = decoded_trace_for(&program, u64::MAX);
        let cfg = config(ReleasePolicy::Basic, 40);

        let fresh = {
            let mut sim = Simulator::with_replay(cfg, Arc::clone(&program), Arc::clone(&trace));
            sim.run(RunLimits::default())
        };

        // Round-trip the same point through the pool twice: the second
        // build reuses the first's carcass.
        let mut pool = SimPool::new();
        for _ in 0..2 {
            let mut sim = Simulator::with_replay_pooled(
                cfg,
                Arc::clone(&program),
                Arc::clone(&trace),
                &mut pool,
            );
            let stats = sim.run(RunLimits::default());
            assert_eq!(stats, fresh, "pooled rebuild must be bit-identical");
            pool.reclaim(sim);
        }
    }

    #[test]
    fn detached_rounds_are_recorded_for_live_lanes() {
        let program = loop_program(100);
        // A live (no-replay) lane is permanently detached.
        let mut group = LaneGroup::new(16);
        group.push(
            Simulator::new(
                config(ReleasePolicy::Conventional, 40),
                Arc::clone(&program),
            ),
            RunLimits::default(),
        );
        group.run();
        let stats = *group.stats();
        assert_eq!(stats.full_rounds, 0);
        assert_eq!(stats.detached_lane_rounds, stats.live_lane_rounds);
    }
}
