//! Machine configuration (the paper's Table 2).

use earlyreg_core::{ReleasePolicy, RenameConfig};
use earlyreg_isa::FuClass;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.associativity)
    }

    /// Validate geometry (power-of-two sets, non-degenerate sizes).
    pub fn validate(&self) -> Result<(), String> {
        if self.size_bytes == 0 || self.line_bytes == 0 || self.associativity == 0 {
            return Err("cache sizes must be non-zero".into());
        }
        if !self
            .size_bytes
            .is_multiple_of(self.line_bytes * self.associativity)
        {
            return Err(format!(
                "cache size {} is not divisible by line size {} x associativity {}",
                self.size_bytes, self.line_bytes, self.associativity
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(format!(
                "number of sets ({}) must be a power of two",
                self.sets()
            ));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        Ok(())
    }
}

/// Branch predictor configuration (Table 2: 18-bit gshare, speculative
/// updates, up to 20 pending branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// gshare history length / table index width in bits.
    pub gshare_bits: u32,
    /// Extra cycles lost on a misprediction redirect beyond the natural
    /// refill of the front end.
    pub mispredict_redirect_penalty: u32,
}

/// Deterministic exception injection, used to exercise the precise-exception
/// recovery path (the paper's Section 4.3).  Real SPEC95 runs take
/// essentially no synchronous exceptions, so the default is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExceptionConfig {
    /// Raise an exception at the commit point every `interval` committed
    /// instructions (`None` disables injection).
    pub interval: Option<u64>,
    /// Cycles the handler keeps the front end stalled.
    pub handler_cycles: u64,
}

/// Full machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Instructions fetched per cycle (Table 2: 8).
    pub fetch_width: usize,
    /// Taken control transfers followed within one fetch cycle (Table 2: 2).
    pub max_taken_per_fetch: usize,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle (Table 2: 8).
    pub commit_width: usize,
    /// Reorder structure size (Table 2: 128); doubles as the issue window, as
    /// in SimpleScalar's RUU model.
    pub ros_size: usize,
    /// Load/store queue entries (Table 2: 64).
    pub lsq_size: usize,
    /// Capacity of the fetch buffer between fetch and rename.
    pub fetch_buffer: usize,
    /// Functional units per class, indexed by [`FuClass::index`]
    /// (Table 2: 8 simple int, 4 int mult, 6 simple FP, 4 FP mult, 4 FP div,
    /// 4 load/store ports).
    pub fu_counts: [usize; 6],
    /// Execution latency per class (memory uses the cache model instead).
    pub fu_latencies: [u32; 6],
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// L1 instruction cache (Table 2: 32 KB, 2-way, 32 B lines, 1 cycle).
    pub icache: CacheConfig,
    /// L1 data cache (Table 2: 32 KB, 2-way, 64 B lines, 1 cycle).
    pub dcache: CacheConfig,
    /// Unified L2 (Table 2: 1 MB, 2-way, 64 B lines, 12 cycles).
    pub l2: CacheConfig,
    /// Main memory latency in cycles (Table 2: 50).
    pub memory_latency: u32,
    /// Rename / release configuration (policy + physical register counts).
    pub rename: RenameConfig,
    /// Exception injection.
    pub exceptions: ExceptionConfig,
}

impl MachineConfig {
    /// The aggressive 8-way machine of the paper's Table 2 with the given
    /// release policy and per-class physical register file sizes.
    pub fn icpp02(policy: ReleasePolicy, phys_int: usize, phys_fp: usize) -> Self {
        MachineConfig {
            fetch_width: 8,
            max_taken_per_fetch: 2,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            ros_size: 128,
            lsq_size: 64,
            fetch_buffer: 16,
            fu_counts: [8, 4, 6, 4, 4, 4],
            fu_latencies: [
                FuClass::IntAlu.table2_latency(),
                FuClass::IntMul.table2_latency(),
                FuClass::FpAdd.table2_latency(),
                FuClass::FpMul.table2_latency(),
                FuClass::FpDiv.table2_latency(),
                0,
            ],
            predictor: PredictorConfig {
                gshare_bits: 18,
                mispredict_redirect_penalty: 2,
            },
            icache: CacheConfig {
                size_bytes: 32 * 1024,
                associativity: 2,
                line_bytes: 32,
                hit_latency: 1,
            },
            dcache: CacheConfig {
                size_bytes: 32 * 1024,
                associativity: 2,
                line_bytes: 64,
                hit_latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                associativity: 2,
                line_bytes: 64,
                hit_latency: 12,
            },
            memory_latency: 50,
            rename: RenameConfig::icpp02(policy, phys_int, phys_fp),
            exceptions: ExceptionConfig {
                interval: None,
                handler_cycles: 30,
            },
        }
    }

    /// A scaled-down machine used by fast unit tests and Criterion
    /// benchmarks: same structure, smaller caches and windows.
    pub fn small(policy: ReleasePolicy, phys_int: usize, phys_fp: usize) -> Self {
        let mut cfg = Self::icpp02(policy, phys_int, phys_fp);
        cfg.ros_size = 32;
        cfg.lsq_size = 16;
        cfg.rename.ros_size = 32;
        cfg.icache.size_bytes = 4 * 1024;
        cfg.dcache.size_bytes = 4 * 1024;
        cfg.l2.size_bytes = 64 * 1024;
        cfg
    }

    /// Validate every component of the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0
            || self.decode_width == 0
            || self.issue_width == 0
            || self.commit_width == 0
        {
            return Err("pipeline widths must be non-zero".into());
        }
        if self.ros_size == 0 || self.lsq_size == 0 || self.fetch_buffer == 0 {
            return Err("queue sizes must be non-zero".into());
        }
        if self.fu_counts.iter().all(|&c| c == 0) {
            return Err("at least one functional unit is required".into());
        }
        if self.predictor.gshare_bits == 0 || self.predictor.gshare_bits > 24 {
            return Err("gshare history length must be between 1 and 24 bits".into());
        }
        self.icache.validate().map_err(|e| format!("icache: {e}"))?;
        self.dcache.validate().map_err(|e| format!("dcache: {e}"))?;
        self.l2.validate().map_err(|e| format!("l2: {e}"))?;
        self.rename.validate().map_err(|e| format!("rename: {e}"))?;
        if self.rename.ros_size != self.ros_size {
            return Err(format!(
                "rename.ros_size ({}) must match ros_size ({})",
                self.rename.ros_size, self.ros_size
            ));
        }
        Ok(())
    }

    /// Execution latency for a functional-unit class.
    pub fn latency(&self, class: FuClass) -> u32 {
        self.fu_latencies[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_configuration_is_valid() {
        let cfg = MachineConfig::icpp02(ReleasePolicy::Extended, 96, 96);
        cfg.validate().expect("Table 2 configuration must validate");
        assert_eq!(cfg.fetch_width, 8);
        assert_eq!(cfg.commit_width, 8);
        assert_eq!(cfg.ros_size, 128);
        assert_eq!(cfg.lsq_size, 64);
        assert_eq!(cfg.fu_counts, [8, 4, 6, 4, 4, 4]);
        assert_eq!(cfg.latency(FuClass::FpDiv), 16);
        assert_eq!(cfg.memory_latency, 50);
        assert_eq!(cfg.rename.max_pending_branches, 20);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        assert_eq!(c.sets(), 256);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_cache_geometry_is_rejected() {
        let c = CacheConfig {
            size_bytes: 3000,
            associativity: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn mismatched_ros_sizes_are_rejected() {
        let mut cfg = MachineConfig::icpp02(ReleasePolicy::Basic, 64, 64);
        cfg.ros_size = 64;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn small_configuration_is_valid() {
        let cfg = MachineConfig::small(ReleasePolicy::Basic, 48, 48);
        cfg.validate().unwrap();
        assert_eq!(cfg.ros_size, 32);
    }

    #[test]
    fn exception_injection_defaults_off() {
        let cfg = MachineConfig::icpp02(ReleasePolicy::Conventional, 64, 64);
        assert_eq!(cfg.exceptions.interval, None);
    }
}
