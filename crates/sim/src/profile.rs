//! Feature-gated pipeline-phase profiling.
//!
//! Built with the `profile` cargo feature, [`prof::scope`] returns an RAII
//! guard that accumulates wall time into a thread-local per-phase table;
//! [`prof::take_report`] renders and resets it.  Without the feature every
//! call is a zero-sized no-op the optimiser erases, so the hot loop pays
//! nothing — the guards stay in the source as documentation of the phase
//! boundaries.
//!
//! The throughput benchmark (`bench_sim_throughput --profile`, built with
//! `--features profile`) prints the table after each measured run; there is
//! no sampling profiler in the container, so this is the supported way to
//! see where sweep time goes.

/// Profiling entry points; see the module docs.
pub mod prof {
    /// One row of the per-phase profile table, as structured data.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct PhaseRow {
        /// Which phase this row describes.
        pub phase: Phase,
        /// Accumulated wall time in nanoseconds.
        pub nanos: u64,
        /// Number of scope entries.
        pub calls: u64,
    }
    /// A pipeline phase being timed.  `TraceCapture` covers the one-off
    /// emulator pass that records a [`DecodedTrace`](earlyreg_isa::DecodedTrace).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[repr(usize)]
    pub enum Phase {
        /// Commit stage (retire, exceptions, store writeback).
        Commit,
        /// Writeback stage (completions, wakeup, branch recovery).
        Writeback,
        /// Issue stage (attention list, functional units, LSQ).
        Issue,
        /// Rename/dispatch stage.
        Rename,
        /// Fetch stage (prediction, icache, replay cursor).
        Fetch,
        /// Decoded-trace capture (architectural emulator pass).
        TraceCapture,
    }

    /// Number of phases (table size).
    pub const PHASES: usize = 6;

    impl Phase {
        /// Display label.
        pub fn name(self) -> &'static str {
            match self {
                Phase::Commit => "commit",
                Phase::Writeback => "writeback",
                Phase::Issue => "issue",
                Phase::Rename => "rename",
                Phase::Fetch => "fetch",
                Phase::TraceCapture => "trace-capture",
            }
        }

        /// All phases, in display order.
        pub fn all() -> [Phase; PHASES] {
            [
                Phase::Fetch,
                Phase::Rename,
                Phase::Issue,
                Phase::Writeback,
                Phase::Commit,
                Phase::TraceCapture,
            ]
        }
    }

    #[cfg(feature = "profile")]
    mod imp {
        use super::{Phase, PHASES};
        use std::cell::RefCell;
        use std::time::Instant;

        #[derive(Clone, Copy, Default)]
        struct Acc {
            nanos: u64,
            calls: u64,
        }

        thread_local! {
            static TABLE: RefCell<[Acc; PHASES]> = const { RefCell::new([Acc { nanos: 0, calls: 0 }; PHASES]) };
        }

        /// RAII guard: accumulates elapsed wall time on drop.
        pub struct ScopeGuard {
            phase: Phase,
            start: Instant,
        }

        impl Drop for ScopeGuard {
            fn drop(&mut self) {
                let elapsed = self.start.elapsed().as_nanos() as u64;
                TABLE.with(|t| {
                    let acc = &mut t.borrow_mut()[self.phase as usize];
                    acc.nanos += elapsed;
                    acc.calls += 1;
                });
            }
        }

        /// Start timing `phase` until the guard drops.
        #[inline]
        pub fn scope(phase: Phase) -> ScopeGuard {
            ScopeGuard {
                phase,
                start: Instant::now(),
            }
        }

        /// True when profiling is compiled in.
        pub const fn enabled() -> bool {
            true
        }

        /// Drain the per-phase table for this thread as structured rows
        /// (display order) and reset it.
        pub fn take_table() -> Vec<super::PhaseRow> {
            let table = TABLE.with(|t| std::mem::take(&mut *t.borrow_mut()));
            Phase::all()
                .into_iter()
                .map(|phase| super::PhaseRow {
                    phase,
                    nanos: table[phase as usize].nanos,
                    calls: table[phase as usize].calls,
                })
                .collect()
        }

        /// Render the per-phase table for this thread and reset it.
        pub fn take_report() -> String {
            let rows = take_table();
            super::render_rows(&rows)
        }
    }

    #[cfg(not(feature = "profile"))]
    mod imp {
        use super::Phase;

        /// Zero-sized no-op guard (profiling compiled out).
        pub struct ScopeGuard;

        /// No-op without the `profile` feature.
        #[inline(always)]
        pub fn scope(_phase: Phase) -> ScopeGuard {
            ScopeGuard
        }

        /// True when profiling is compiled in.
        pub const fn enabled() -> bool {
            false
        }

        /// Empty table without the `profile` feature.
        pub fn take_table() -> Vec<super::PhaseRow> {
            Vec::new()
        }

        /// Empty report without the `profile` feature.
        pub fn take_report() -> String {
            String::from("(profiling compiled out; rebuild with --features profile)\n")
        }
    }

    /// Render structured rows as the human-readable table `take_report`
    /// prints.
    pub fn render_rows(rows: &[PhaseRow]) -> String {
        let total: u64 = rows.iter().map(|r| r.nanos).sum::<u64>().max(1);
        let mut out = String::from("phase           time (ms)      share      calls    ns/call\n");
        for row in rows {
            let per_call = row.nanos.checked_div(row.calls).unwrap_or(0);
            out.push_str(&format!(
                "{:<14} {:>10.2} {:>9.1}% {:>10} {:>10}\n",
                row.phase.name(),
                row.nanos as f64 / 1e6,
                row.nanos as f64 / total as f64 * 100.0,
                row.calls,
                per_call,
            ));
        }
        out
    }

    pub use imp::{enabled, scope, take_report, take_table, ScopeGuard};
}

#[cfg(test)]
mod tests {
    use super::prof;

    #[test]
    fn scope_guard_is_droppable_and_report_renders() {
        {
            let _t = prof::scope(prof::Phase::Fetch);
        }
        let report = prof::take_report();
        assert!(!report.is_empty());
        if prof::enabled() {
            assert!(report.contains("fetch"));
            assert!(report.contains("trace-capture"));
        }
    }
}
