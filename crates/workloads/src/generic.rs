//! Parameterised synthetic workload generator.
//!
//! The ten SPEC95 analogues fix their characteristics; this generator exposes
//! the underlying knobs directly so that ablation studies (and property
//! tests) can explore the space the paper's discussion spans: register
//! pressure, branch density/predictability, memory intensity and FP latency
//! mix.

use earlyreg_isa::{ArchReg, BranchCond, Opcode, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Knobs of the generic workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenericWorkloadConfig {
    /// Outer-loop iterations (scales the dynamic instruction count).
    pub iterations: u64,
    /// Number of distinct *integer* logical registers kept live in the loop
    /// body (2..=20).
    pub int_working_set: usize,
    /// Number of distinct *FP* logical registers kept live in the loop body
    /// (0..=28).  Larger values create the FP register pressure the paper's
    /// numerical codes exhibit.
    pub fp_working_set: usize,
    /// Data-dependent conditional branches per loop iteration (0..=6).
    pub branches_per_iteration: usize,
    /// Probability (0.0–1.0) that the value steering a data-dependent branch
    /// flips between iterations; 0.0 is perfectly predictable, 0.5 is
    /// essentially random.
    pub branch_entropy: f64,
    /// Loads per iteration (0..=8).
    pub loads_per_iteration: usize,
    /// Stores per iteration (0..=4).
    pub stores_per_iteration: usize,
    /// FP divides per iteration (0..=3) — each adds a 16-cycle chain.
    pub fp_divides_per_iteration: usize,
    /// Seed for the data image and branch-steering pattern.
    pub seed: u64,
}

impl Default for GenericWorkloadConfig {
    fn default() -> Self {
        GenericWorkloadConfig {
            iterations: 1000,
            int_working_set: 8,
            fp_working_set: 12,
            branches_per_iteration: 2,
            branch_entropy: 0.3,
            loads_per_iteration: 4,
            stores_per_iteration: 2,
            fp_divides_per_iteration: 1,
            seed: 42,
        }
    }
}

impl GenericWorkloadConfig {
    /// Clamp every knob into its supported range.
    pub fn clamped(mut self) -> Self {
        self.int_working_set = self.int_working_set.clamp(2, 20);
        self.fp_working_set = self.fp_working_set.min(28);
        self.branches_per_iteration = self.branches_per_iteration.min(6);
        self.branch_entropy = self.branch_entropy.clamp(0.0, 1.0);
        self.loads_per_iteration = self.loads_per_iteration.min(8);
        self.stores_per_iteration = self.stores_per_iteration.min(4);
        self.fp_divides_per_iteration = self.fp_divides_per_iteration.min(3);
        if self.iterations == 0 {
            self.iterations = 1;
        }
        self
    }
}

/// Build a program from the configuration.
pub fn generic_workload(config: GenericWorkloadConfig) -> Program {
    let cfg = config.clamped();
    let mut b = ProgramBuilder::new("generic");
    b.set_memory_words(1 << 15);
    let mut r = StdRng::seed_from_u64(cfg.seed);

    const DATA: usize = 4096;
    let ints: Vec<i64> = (0..DATA).map(|_| r.gen_range(-1000..1000)).collect();
    let fps: Vec<f64> = (0..DATA).map(|_| r.gen_range(0.5..2.0)).collect();
    // Pre-computed branch steering pattern: word k decides the direction of
    // the data-dependent branches in iteration k (re-read from memory so the
    // predictor sees genuinely data-dependent outcomes).
    let steer: Vec<i64> = {
        let mut current = 0i64;
        (0..DATA)
            .map(|_| {
                if r.gen_bool(cfg.branch_entropy) {
                    current ^= 1;
                }
                current
            })
            .collect()
    };
    let int_base = b.data_i64(&ints);
    let fp_base = b.data_f64(&fps);
    let steer_base = b.data_i64(&steer);
    let out_base = b.data_zeroed(64);

    let i = ArchReg::int(1);
    let ib = ArchReg::int(2);
    let fb = ArchReg::int(3);
    let stb = ArchReg::int(4);
    let ob = ArchReg::int(5);
    let idx = ArchReg::int(6);
    let addr = ArchReg::int(7);
    let steer_v = ArchReg::int(8);
    let tmp = ArchReg::int(9);
    let int_ws: Vec<ArchReg> = (10..10 + cfg.int_working_set).map(ArchReg::int).collect();
    let fp_ws: Vec<ArchReg> = (0..cfg.fp_working_set).map(ArchReg::fp).collect();
    let fp_tmp = ArchReg::fp(30);
    let fp_one = ArchReg::fp(31);

    b.li(i, cfg.iterations as i64);
    b.li(ib, int_base);
    b.li(fb, fp_base);
    b.li(stb, steer_base);
    b.li(ob, out_base);
    for (k, reg) in int_ws.iter().enumerate() {
        b.li(*reg, k as i64 + 1);
    }
    for (k, reg) in fp_ws.iter().enumerate() {
        b.fli(*reg, 1.0 + k as f64 * 0.125);
    }
    b.fli(fp_one, 1.0);

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (DATA - 1) as i64);
    b.add(addr, stb, idx);
    b.load_int(steer_v, addr, 0);

    // Integer working set rotation: every live register is both read and
    // redefined each iteration.
    for k in 0..int_ws.len() {
        let dst = int_ws[k];
        let src = int_ws[(k + 1) % int_ws.len()];
        b.add(dst, dst, src);
    }

    // Loads feed the FP working set.
    for k in 0..cfg.loads_per_iteration {
        let dst = if fp_ws.is_empty() {
            fp_tmp
        } else {
            fp_ws[k % fp_ws.len()]
        };
        b.add(addr, fb, idx);
        b.load_fp(dst, addr, k as i64);
    }

    // FP working set rotation with multiplies (and the requested divides).
    for k in 0..fp_ws.len() {
        let dst = fp_ws[k];
        let src = fp_ws[(k + 3) % fp_ws.len()];
        if k < cfg.fp_divides_per_iteration {
            b.fdiv(dst, dst, src);
        } else if k % 2 == 0 {
            b.fmul(dst, dst, src);
        } else {
            b.fadd(dst, dst, src);
        }
    }

    // Data-dependent branches steered by the pattern loaded from memory.
    for k in 0..cfg.branches_per_iteration {
        let skip = b.new_label();
        b.iopi(Opcode::IAndImm, tmp, steer_v, 1 << k);
        b.branch(BranchCond::Eq, tmp, None, skip);
        if let Some(reg) = int_ws.first() {
            b.addi(*reg, *reg, 1);
        }
        if let Some(reg) = fp_ws.first() {
            b.fadd(*reg, *reg, fp_one);
        }
        b.bind(skip);
    }

    // Stores write back part of the working set.
    for k in 0..cfg.stores_per_iteration {
        b.add(addr, ob, idx);
        if !fp_ws.is_empty() && k % 2 == 0 {
            b.store_fp(ob, k as i64, fp_ws[k % fp_ws.len()]);
        } else {
            b.store_int(ob, k as i64, int_ws[k % int_ws.len()]);
        }
    }

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    for (k, reg) in int_ws.iter().enumerate().take(8) {
        b.store_int(ob, 16 + k as i64, *reg);
    }
    if !fp_ws.is_empty() {
        b.store_fp(ob, 32, fp_ws[0]);
    }
    b.halt();
    b.build().expect("generic workload must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::Emulator;

    #[test]
    fn default_configuration_builds_and_terminates() {
        let p = generic_workload(GenericWorkloadConfig::default());
        let mut e = Emulator::new(&p);
        let r = e.run(2_000_000);
        assert!(r.halted);
    }

    #[test]
    fn clamping_keeps_degenerate_configs_buildable() {
        let cfg = GenericWorkloadConfig {
            iterations: 0,
            int_working_set: 1000,
            fp_working_set: 1000,
            branches_per_iteration: 99,
            branch_entropy: 7.0,
            loads_per_iteration: 99,
            stores_per_iteration: 99,
            fp_divides_per_iteration: 99,
            seed: 1,
        };
        let p = generic_workload(cfg);
        let mut e = Emulator::new(&p);
        assert!(e.run(1_000_000).halted);
    }

    #[test]
    fn zero_fp_working_set_produces_an_integer_only_loop_body() {
        let cfg = GenericWorkloadConfig {
            fp_working_set: 0,
            loads_per_iteration: 0,
            fp_divides_per_iteration: 0,
            ..GenericWorkloadConfig::default()
        };
        let p = generic_workload(cfg);
        let mix = p.static_mix();
        assert!(mix.fp_writers <= 1); // only the fp_one constant
    }

    #[test]
    fn branch_entropy_controls_predictability() {
        // With zero entropy the steering value never changes, so the
        // data-dependent branches always go the same way; with high entropy
        // the taken ratio moves towards the middle.
        let run = |entropy: f64| {
            let cfg = GenericWorkloadConfig {
                iterations: 2000,
                branch_entropy: entropy,
                ..GenericWorkloadConfig::default()
            };
            let p = generic_workload(cfg);
            let mut e = Emulator::new(&p);
            let r = e.run(5_000_000);
            assert!(r.halted);
            r.taken_branches as f64 / r.branches as f64
        };
        let low = run(0.0);
        let high = run(0.9);
        assert!(
            (low - high).abs() > 0.02,
            "entropy had no effect: {low} vs {high}"
        );
    }

    #[test]
    fn seed_changes_the_data_image() {
        let a = generic_workload(GenericWorkloadConfig {
            seed: 1,
            ..Default::default()
        });
        let b = generic_workload(GenericWorkloadConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.data, b.data);
        assert_eq!(a.instrs.len(), b.instrs.len());
    }
}
