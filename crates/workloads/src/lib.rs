//! # earlyreg-workloads
//!
//! Synthetic stand-ins for the SPEC95 subset used by *"Hardware Schemes for
//! Early Register Release"* (ICPP 2002), Table 3: five integer programs
//! (compress, gcc, go, li, perl) and five floating-point programs (mgrid,
//! tomcatv, applu, swim, hydro2d).
//!
//! The original binaries/inputs (Compaq Alpha, `-O5`/`-O4`) are not available
//! in this environment, so each program is replaced by a kernel written
//! against the `earlyreg-isa` mini ISA that reproduces the *properties the
//! paper's result depends on*:
//!
//! * integer codes are **branch-intensive** with moderate register pressure
//!   and a mix of well- and poorly-predictable branches (dictionary lookups,
//!   decision trees, pointer chasing, string/hash scanning);
//! * floating-point codes are **loop-dominated** with long-latency dependence
//!   chains (multiplies, divides) and a large number of simultaneously live
//!   FP values, i.e. high FP register pressure (stencils, mesh smoothing,
//!   SSOR sweeps, shallow-water updates, hydrodynamics sweeps);
//! * every kernel streams through memory so loads/stores and the LSQ are
//!   exercised, and every kernel writes its results back to memory so the
//!   golden-model comparison covers its output.
//!
//! Dynamic run lengths are scaled down from the paper's 47M–472M instructions
//! so the full register-size sweep finishes quickly; [`Scale`] controls the
//! per-workload iteration counts.

pub mod generic;
pub mod spec_fp;
pub mod spec_int;
pub mod suite;

pub use generic::{generic_workload, GenericWorkloadConfig};
pub use suite::{
    suite, workload_by_name, workload_with_target_instructions, Scale, Workload, WorkloadClass,
    WorkloadSpec, SPECS,
};
