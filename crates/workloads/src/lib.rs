//! # earlyreg-workloads
//!
//! The workload suite for *"Hardware Schemes for Early Register Release"*
//! (ICPP 2002), served from a string-keyed [`registry`]:
//!
//! * **Synthetic Table 3 stand-ins** — five integer programs (compress, gcc,
//!   go, li, perl) and five floating-point programs (mgrid, tomcatv, applu,
//!   swim, hydro2d).  The original binaries/inputs (Compaq Alpha,
//!   `-O5`/`-O4`) are not available in this environment, so each program is
//!   replaced by a kernel written against the `earlyreg-isa` mini ISA that
//!   reproduces the *properties the paper's result depends on*:
//!   branch-intensive integer codes with moderate register pressure, and
//!   loop-dominated FP codes with long-latency dependence chains and high FP
//!   register pressure.  These carry `paper: true` and form the default
//!   sweep set.
//! * **Assembled real kernels** — matmul, quicksort, sieve, box_blur and a
//!   hazard-stress pattern, written in the `earlyreg-isa` assembly dialect
//!   (`asm/*.asm`, embedded at compile time) and assembled by
//!   [`earlyreg_isa::assemble`].  Iteration counts reach them through the
//!   assembler's `.arg` convention.
//!
//! Every kernel streams through memory so loads/stores and the LSQ are
//! exercised, and writes its results back to memory so the golden-model
//! comparison covers its output.  Dynamic run lengths are scaled down from
//! the paper's 47M–472M instructions so the full register-size sweep
//! finishes quickly; [`Scale`] controls the per-workload sizing.
//!
//! Adding a workload is registration only — see `docs/WORKLOADS.md`.

pub mod generic;
pub mod registry;
pub mod spec_fp;
pub mod spec_int;
pub mod suite;

pub use generic::{generic_workload, GenericWorkloadConfig};
pub use registry::{WorkloadDescriptor, WorkloadKind};
pub use suite::{
    shared_suite, suite, workload_by_name, workload_with_target_instructions, Scale, Workload,
    WorkloadClass,
};
