//! Floating-point SPEC95 analogues: mgrid, tomcatv, applu, swim, hydro2d.
//!
//! The paper's FP codes are loop-dominated, dominated by long-latency FP
//! operations and — crucially for the early-release result — keep a large
//! number of FP values live at once, which is what creates FP register
//! pressure.  Every kernel below keeps 20+ FP logical registers live in its
//! inner loop, mixes multiplies and divides (4- and 16-cycle latencies) and
//! streams through word-addressed arrays.

use earlyreg_isa::{ArchReg, BranchCond, Opcode, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn random_grid(r: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| r.gen_range(0.5..2.0)).collect()
}

/// `107.mgrid`-like kernel: a 27-point-ish relaxation sweep over a 3-D grid,
/// expressed as strided neighbour accesses over a flat array.
pub fn mgrid_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("mgrid");
    b.set_memory_words(1 << 16);
    let mut r = rng(0xF9_1001);

    const N: usize = 4096; // 16 x 16 x 16
    let grid = random_grid(&mut r, N);
    let grid_base = b.data_f64(&grid);
    let out_base = b.data_zeroed(N);
    let sum_base = b.data_zeroed(4);

    let i = ArchReg::int(1);
    let gb = ArchReg::int(2);
    let ob = ArchReg::int(3);
    let idx = ArchReg::int(4);
    let addr = ArchReg::int(5);
    let oaddr = ArchReg::int(6);
    let sumb = ArchReg::int(7);

    // FP registers: 4 stencil coefficients, 7 loaded neighbours per point,
    // unrolled twice, plus partial sums — ~26 live FP values.
    let c0 = ArchReg::fp(0);
    let c1 = ArchReg::fp(1);
    let c2 = ArchReg::fp(2);
    let c3 = ArchReg::fp(3);
    let acc = ArchReg::fp(4);

    b.li(i, iterations as i64);
    b.li(gb, grid_base);
    b.li(ob, out_base);
    b.li(sumb, sum_base);
    b.fli(c0, 0.5);
    b.fli(c1, 0.25);
    b.fli(c2, 0.125);
    b.fli(c3, 0.0625);
    b.fli(acc, 0.0);

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (N - 1) as i64);
    b.add(addr, gb, idx);
    b.add(oaddr, ob, idx);

    // Two unrolled stencil points; each keeps its 7 neighbours live while the
    // weighted sum is formed.
    for u in 0..2i64 {
        let base_f = 5 + (u as usize) * 12;
        let center = ArchReg::fp(base_f);
        let xl = ArchReg::fp(base_f + 1);
        let xr = ArchReg::fp(base_f + 2);
        let yl = ArchReg::fp(base_f + 3);
        let yr = ArchReg::fp(base_f + 4);
        let zl = ArchReg::fp(base_f + 5);
        let zr = ArchReg::fp(base_f + 6);
        let t0 = ArchReg::fp(base_f + 7);
        let t1 = ArchReg::fp(base_f + 8);
        let t2 = ArchReg::fp(base_f + 9);
        let t3 = ArchReg::fp(base_f + 10);
        let resid = ArchReg::fp(base_f + 11);
        let off = u * 64;
        b.load_fp(center, addr, off);
        b.load_fp(xl, addr, off - 1);
        b.load_fp(xr, addr, off + 1);
        b.load_fp(yl, addr, off - 16);
        b.load_fp(yr, addr, off + 16);
        b.load_fp(zl, addr, off - 256);
        b.load_fp(zr, addr, off + 256);
        b.fadd(t0, xl, xr);
        b.fadd(t1, yl, yr);
        b.fadd(t2, zl, zr);
        b.fmul(t0, t0, c1);
        b.fmul(t1, t1, c2);
        b.fmul(t2, t2, c3);
        b.fmul(t3, center, c0);
        b.fadd(t0, t0, t1);
        b.fadd(t2, t2, t3);
        b.fadd(resid, t0, t2);
        b.fsub(resid, resid, center);
        b.store_fp(oaddr, off, resid);
        b.fadd(acc, acc, resid);
    }

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_fp(sumb, 0, acc);
    b.halt();
    b.build().expect("mgrid kernel must be valid")
}

/// `101.tomcatv`-like kernel: mesh-generation smoothing — neighbour loads,
/// cross products and two divides per point.
pub fn tomcatv_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("tomcatv");
    b.set_memory_words(1 << 16);
    let mut r = rng(0x70_1002);

    const N: usize = 4096; // 64 x 64 mesh
    let x = random_grid(&mut r, N);
    let y = random_grid(&mut r, N);
    let xb = b.data_f64(&x);
    let yb = b.data_f64(&y);
    let rxb = b.data_zeroed(N);
    let ryb = b.data_zeroed(N);
    let sum_base = b.data_zeroed(4);

    let i = ArchReg::int(1);
    let xba = ArchReg::int(2);
    let yba = ArchReg::int(3);
    let rxa = ArchReg::int(4);
    let rya = ArchReg::int(5);
    let idx = ArchReg::int(6);
    let ax = ArchReg::int(7);
    let ay = ArchReg::int(8);
    let arx = ArchReg::int(9);
    let ary = ArchReg::int(10);
    let sumb = ArchReg::int(11);

    let f: Vec<ArchReg> = (0..28).map(ArchReg::fp).collect();

    b.li(i, iterations as i64);
    b.li(xba, xb);
    b.li(yba, yb);
    b.li(rxa, rxb);
    b.li(rya, ryb);
    b.li(sumb, sum_base);
    b.fli(f[0], 0.0); // accumulator
    b.fli(f[1], 2.0);
    b.fli(f[2], 0.25);

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (N - 1) as i64);
    b.add(ax, xba, idx);
    b.add(ay, yba, idx);
    b.add(arx, rxa, idx);
    b.add(ary, rya, idx);
    // Load x/y at the point and its 4 mesh neighbours (stride 1 and 64).
    b.load_fp(f[3], ax, 0);
    b.load_fp(f[4], ax, 1);
    b.load_fp(f[5], ax, -1);
    b.load_fp(f[6], ax, 64);
    b.load_fp(f[7], ax, -64);
    b.load_fp(f[8], ay, 0);
    b.load_fp(f[9], ay, 1);
    b.load_fp(f[10], ay, -1);
    b.load_fp(f[11], ay, 64);
    b.load_fp(f[12], ay, -64);
    // xx, yx: central differences along the two directions.
    b.fsub(f[13], f[4], f[5]);
    b.fsub(f[14], f[6], f[7]);
    b.fsub(f[15], f[9], f[10]);
    b.fsub(f[16], f[11], f[12]);
    // a = xx^2 + yx^2 ; bcoef = xx*xy + yx*yy ; c = xy^2 + yy^2
    b.fmul(f[17], f[13], f[13]);
    b.fmul(f[18], f[15], f[15]);
    b.fadd(f[17], f[17], f[18]);
    b.fmul(f[19], f[14], f[14]);
    b.fmul(f[20], f[16], f[16]);
    b.fadd(f[19], f[19], f[20]);
    b.fmul(f[21], f[13], f[14]);
    b.fmul(f[22], f[15], f[16]);
    b.fadd(f[21], f[21], f[22]);
    // rx = (a*xll + c*xmm - 2*b*xlm) / (a + c) — two divides per point.
    b.fadd(f[23], f[17], f[19]);
    b.fmul(f[24], f[17], f[3]);
    b.fmul(f[25], f[19], f[8]);
    b.fmul(f[26], f[21], f[1]);
    b.fadd(f[24], f[24], f[25]);
    b.fsub(f[24], f[24], f[26]);
    b.fdiv(f[24], f[24], f[23]);
    b.fdiv(f[25], f[21], f[23]);
    b.store_fp(arx, 0, f[24]);
    b.store_fp(ary, 0, f[25]);
    // residual accumulation
    b.fsub(f[26], f[24], f[3]);
    b.fop1(Opcode::FAbs, f[26], f[26]);
    b.fmul(f[26], f[26], f[2]);
    b.fadd(f[0], f[0], f[26]);

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_fp(sumb, 0, f[0]);
    b.halt();
    b.build().expect("tomcatv kernel must be valid")
}

/// `110.applu`-like kernel: SSOR-style block solve — dense little dependence
/// chains with several divides, high FP register pressure.
pub fn applu_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("applu");
    b.set_memory_words(1 << 16);
    let mut r = rng(0xAA_1003);

    const N: usize = 8192;
    let u = random_grid(&mut r, N);
    let rsd = random_grid(&mut r, N);
    let ub = b.data_f64(&u);
    let rb = b.data_f64(&rsd);
    let outb = b.data_zeroed(N);
    let sums = b.data_zeroed(8);

    let i = ArchReg::int(1);
    let ua = ArchReg::int(2);
    let ra = ArchReg::int(3);
    let oa = ArchReg::int(4);
    let idx = ArchReg::int(5);
    let a1 = ArchReg::int(6);
    let a2 = ArchReg::int(7);
    let a3 = ArchReg::int(8);
    let sb = ArchReg::int(9);

    let f: Vec<ArchReg> = (0..30).map(ArchReg::fp).collect();

    b.li(i, iterations as i64);
    b.li(ua, ub);
    b.li(ra, rb);
    b.li(oa, outb);
    b.li(sb, sums);
    b.fli(f[0], 0.0);
    b.fli(f[1], 0.0);
    b.fli(f[2], 1.5);
    b.fli(f[3], 0.1);

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (N - 5) as i64 & !3);
    b.add(a1, ua, idx);
    b.add(a2, ra, idx);
    b.add(a3, oa, idx);
    // Load a 5-vector of u and rsd (the five PDE variables).
    for k in 0..5i64 {
        b.load_fp(f[4 + k as usize], a1, k);
        b.load_fp(f[9 + k as usize], a2, k);
    }
    // Diagonal "inversion": d = 1 / (c + u0), then back-substitute through
    // the five variables, keeping everything live.
    b.fadd(f[14], f[2], f[4]);
    b.fdiv(f[15], f[3], f[14]); // 16-cycle divide on the critical path
    for k in 0..5usize {
        b.fmul(f[16 + k], f[9 + k], f[15]);
    }
    b.fadd(f[21], f[16], f[17]);
    b.fadd(f[22], f[18], f[19]);
    b.fadd(f[23], f[21], f[22]);
    b.fadd(f[23], f[23], f[20]);
    b.fmul(f[24], f[23], f[2]);
    b.fsub(f[25], f[24], f[4]);
    b.fdiv(f[26], f[25], f[14]);
    for k in 0..5i64 {
        b.store_fp(a3, k, f[(16 + k) as usize]);
    }
    b.fadd(f[0], f[0], f[26]);
    b.fmul(f[1], f[1], f[3]);
    b.fadd(f[1], f[1], f[23]);

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_fp(sb, 0, f[0]);
    b.store_fp(sb, 1, f[1]);
    b.halt();
    b.build().expect("applu kernel must be valid")
}

/// `102.swim`-like kernel: shallow-water finite differences — three grids
/// updated from neighbour differences, mostly adds and multiplies.
pub fn swim_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("swim");
    b.set_memory_words(1 << 16);
    let mut r = rng(0x59_1004);

    const N: usize = 4096; // 64 x 64
    let ug = random_grid(&mut r, N);
    let vg = random_grid(&mut r, N);
    let pg = random_grid(&mut r, N);
    let ub = b.data_f64(&ug);
    let vb = b.data_f64(&vg);
    let pb = b.data_f64(&pg);
    let cu = b.data_zeroed(N);
    let cv = b.data_zeroed(N);
    let zb = b.data_zeroed(N);
    let sums = b.data_zeroed(4);

    let i = ArchReg::int(1);
    let ua = ArchReg::int(2);
    let va = ArchReg::int(3);
    let pa = ArchReg::int(4);
    let cua = ArchReg::int(5);
    let cva = ArchReg::int(6);
    let za = ArchReg::int(7);
    let idx = ArchReg::int(8);
    let t1 = ArchReg::int(9);
    let t2 = ArchReg::int(10);
    let t3 = ArchReg::int(11);
    let t4 = ArchReg::int(12);
    let t5 = ArchReg::int(13);
    let t6 = ArchReg::int(14);
    let sb = ArchReg::int(15);

    let f: Vec<ArchReg> = (0..26).map(ArchReg::fp).collect();

    b.li(i, iterations as i64);
    b.li(ua, ub);
    b.li(va, vb);
    b.li(pa, pb);
    b.li(cua, cu);
    b.li(cva, cv);
    b.li(za, zb);
    b.li(sb, sums);
    b.fli(f[0], 0.5);
    b.fli(f[1], 0.0); // checksum

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (N - 1) as i64);
    b.add(t1, ua, idx);
    b.add(t2, va, idx);
    b.add(t3, pa, idx);
    b.add(t4, cua, idx);
    b.add(t5, cva, idx);
    b.add(t6, za, idx);
    // u, v, p at the point and at +1 / +64 neighbours.
    b.load_fp(f[2], t1, 0);
    b.load_fp(f[3], t1, 1);
    b.load_fp(f[4], t1, 64);
    b.load_fp(f[5], t2, 0);
    b.load_fp(f[6], t2, 1);
    b.load_fp(f[7], t2, 64);
    b.load_fp(f[8], t3, 0);
    b.load_fp(f[9], t3, 1);
    b.load_fp(f[10], t3, 64);
    // cu = 0.5*(p + p_x)*u ; cv = 0.5*(p + p_y)*v
    b.fadd(f[11], f[8], f[9]);
    b.fmul(f[11], f[11], f[0]);
    b.fmul(f[12], f[11], f[2]);
    b.fadd(f[13], f[8], f[10]);
    b.fmul(f[13], f[13], f[0]);
    b.fmul(f[14], f[13], f[5]);
    // z = (v_x - u_y) / (p + p_x + p_y)  (vorticity-like, one divide)
    b.fsub(f[15], f[6], f[4]);
    b.fadd(f[16], f[8], f[9]);
    b.fadd(f[16], f[16], f[10]);
    b.fdiv(f[17], f[15], f[16]);
    // h = p + 0.25*(u^2 + v^2) keeps more values live
    b.fmul(f[18], f[2], f[2]);
    b.fmul(f[19], f[5], f[5]);
    b.fadd(f[20], f[18], f[19]);
    b.fmul(f[21], f[20], f[0]);
    b.fmul(f[21], f[21], f[0]);
    b.fadd(f[22], f[8], f[21]);
    b.store_fp(t4, 0, f[12]);
    b.store_fp(t5, 0, f[14]);
    b.store_fp(t6, 0, f[17]);
    b.fadd(f[1], f[1], f[22]);

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_fp(sb, 0, f[1]);
    b.halt();
    b.build().expect("swim kernel must be valid")
}

/// `104.hydro2d`-like kernel: hydrodynamics flux computation with divides and
/// a square root per cell and an occasional data-dependent limiter branch.
pub fn hydro2d_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("hydro2d");
    b.set_memory_words(1 << 16);
    let mut r = rng(0x4D_1005);

    const N: usize = 4096;
    let ro = random_grid(&mut r, N);
    let uu = random_grid(&mut r, N);
    let vv = random_grid(&mut r, N);
    let pp = random_grid(&mut r, N);
    let rob = b.data_f64(&ro);
    let uub = b.data_f64(&uu);
    let vvb = b.data_f64(&vv);
    let ppb = b.data_f64(&pp);
    let fluxb = b.data_zeroed(N);
    let sums = b.data_zeroed(4);

    let i = ArchReg::int(1);
    let roa = ArchReg::int(2);
    let uua = ArchReg::int(3);
    let vva = ArchReg::int(4);
    let ppa = ArchReg::int(5);
    let fla = ArchReg::int(6);
    let idx = ArchReg::int(7);
    let a1 = ArchReg::int(8);
    let a2 = ArchReg::int(9);
    let a3 = ArchReg::int(10);
    let a4 = ArchReg::int(11);
    let a5 = ArchReg::int(12);
    let sb = ArchReg::int(13);
    let cmp = ArchReg::int(14);

    let f: Vec<ArchReg> = (0..24).map(ArchReg::fp).collect();

    b.li(i, iterations as i64);
    b.li(roa, rob);
    b.li(uua, uub);
    b.li(vva, vvb);
    b.li(ppa, ppb);
    b.li(fla, fluxb);
    b.li(sb, sums);
    b.fli(f[0], 1.4); // gamma
    b.fli(f[1], 0.0); // checksum
    b.fli(f[2], 2.0);

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (N - 2) as i64);
    b.add(a1, roa, idx);
    b.add(a2, uua, idx);
    b.add(a3, vva, idx);
    b.add(a4, ppa, idx);
    b.add(a5, fla, idx);
    b.load_fp(f[3], a1, 0);
    b.load_fp(f[4], a2, 0);
    b.load_fp(f[5], a3, 0);
    b.load_fp(f[6], a4, 0);
    b.load_fp(f[7], a1, 1);
    b.load_fp(f[8], a4, 1);
    // sound speed c = sqrt(gamma * p / ro); kinetic energy; momentum fluxes
    b.fmul(f[9], f[0], f[6]);
    b.fdiv(f[10], f[9], f[3]);
    b.fop1(Opcode::FSqrt, f[11], f[10]);
    b.fmul(f[12], f[4], f[4]);
    b.fmul(f[13], f[5], f[5]);
    b.fadd(f[14], f[12], f[13]);
    b.fmul(f[15], f[14], f[3]);
    b.fmul(f[16], f[3], f[4]);
    b.fmul(f[17], f[16], f[4]);
    b.fadd(f[17], f[17], f[6]);
    // limiter: if the neighbouring pressure jump is large, damp the flux
    // (a data-dependent FP-driven branch).
    b.fsub(f[18], f[8], f[6]);
    b.fop1(Opcode::FAbs, f[18], f[18]);
    b.fmul(f[19], f[6], f[2]);
    b.fop(Opcode::FCmpLt, cmp, f[19], f[18]);
    let no_damp = b.new_label();
    b.branch(BranchCond::Eq, cmp, None, no_damp);
    b.fdiv(f[17], f[17], f[2]);
    b.bind(no_damp);
    // flux = (e + p) * u / c with e = 0.5*ro*(u^2+v^2) + p/(gamma-1)
    b.fmul(f[20], f[15], f[11]);
    b.fadd(f[21], f[20], f[17]);
    b.fdiv(f[22], f[21], f[11]);
    b.fmul(f[23], f[22], f[7]);
    b.store_fp(a5, 0, f[23]);
    b.fadd(f[1], f[1], f[23]);

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_fp(sb, 0, f[1]);
    b.halt();
    b.build().expect("hydro2d kernel must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::{Emulator, Program, RegClass};

    fn check(program: &Program, max: u64) -> earlyreg_isa::EmulationResult {
        program.validate().expect("program validates");
        let mut emu = Emulator::new(program);
        let result = emu.run(max);
        assert!(
            result.halted,
            "{} did not halt within {max} instructions",
            program.name
        );
        result
    }

    #[test]
    fn all_fp_kernels_terminate_with_low_branch_fraction() {
        for program in [
            mgrid_like(300),
            tomcatv_like(300),
            applu_like(300),
            swim_like(300),
            hydro2d_like(300),
        ] {
            let result = check(&program, 2_000_000);
            assert!(
                result.branch_fraction() < 0.12,
                "{} branch fraction {:.3} too high for an FP SPEC analogue",
                program.name,
                result.branch_fraction()
            );
            assert!(result.loads > 0 && result.stores > 0);
        }
    }

    #[test]
    fn fp_kernels_write_many_fp_destinations() {
        for program in [
            mgrid_like(10),
            tomcatv_like(10),
            applu_like(10),
            swim_like(10),
            hydro2d_like(10),
        ] {
            let mix = program.static_mix();
            assert!(
                mix.fp_writers > mix.int_writers,
                "{}: FP SPEC analogues must be dominated by FP register writes \
                 ({} fp vs {} int)",
                program.name,
                mix.fp_writers,
                mix.int_writers
            );
        }
    }

    #[test]
    fn fp_kernels_use_a_wide_fp_register_working_set() {
        for program in [
            mgrid_like(10),
            tomcatv_like(10),
            applu_like(10),
            swim_like(10),
        ] {
            let mut used = std::collections::HashSet::new();
            for instr in &program.instrs {
                if let Some(d) = instr.dst {
                    if d.class() == RegClass::Fp {
                        used.insert(d.index());
                    }
                }
            }
            assert!(
                used.len() >= 16,
                "{} writes only {} distinct FP registers",
                program.name,
                used.len()
            );
        }
    }

    #[test]
    fn fp_results_are_finite_and_deterministic() {
        let p = hydro2d_like(200);
        let mut e1 = Emulator::new(&p);
        let mut e2 = Emulator::new(&p);
        e1.run(2_000_000);
        e2.run(2_000_000);
        assert_eq!(e1.state.fingerprint(), e2.state.fingerprint());
        let checksum = e1.state.read_fp(earlyreg_isa::ArchReg::fp(1));
        assert!(checksum.is_finite(), "checksum diverged: {checksum}");
    }
}
