//! The benchmark suite: every registered workload, instantiated at a scale.
//!
//! The static description of each member lives in [`crate::registry`]; this
//! module owns the runtime types — [`WorkloadClass`], the [`Scale`] presets
//! and the instantiated [`Workload`] — and the convenience constructors the
//! rest of the workspace calls.

use crate::registry::{self, WorkloadDescriptor};
use earlyreg_isa::Program;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Integer or floating-point benchmark (the paper reports the two groups
/// separately in every figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Integer code (branch-intensive, moderate register pressure).
    Int,
    /// Floating-point code (loop-dominated, high FP register pressure).
    Fp,
}

impl WorkloadClass {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Int => "integer",
            WorkloadClass::Fp => "floating point",
        }
    }
}

/// How much dynamic work to generate.  The paper ran 47M–472M instructions
/// per program (Table 3); this reproduction scales the runs down so the full
/// sweep of Figure 11 finishes in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// A few thousand dynamic instructions — CI / unit tests.
    Smoke,
    /// Tens of thousands of dynamic instructions — Criterion benchmarks.
    Bench,
    /// A few hundred thousand dynamic instructions — the experiment binaries
    /// that regenerate the paper's figures.
    Full,
}

impl Scale {
    /// The dynamic-instruction budget this preset aims each workload at.
    pub fn target_instructions(self) -> u64 {
        match self {
            Scale::Smoke => 4_000,
            Scale::Bench => 40_000,
            Scale::Full => 400_000,
        }
    }
}

/// One instantiated workload: registered metadata plus the generated program.
///
/// The program is reference-counted so that sweeps can hand the same
/// workload to many simulator instances without copying the instruction
/// stream and data image.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The registry entry this workload was instantiated from.
    pub spec: &'static WorkloadDescriptor,
    /// The generated program.
    pub program: Arc<Program>,
}

impl Workload {
    /// Canonical registered id.
    pub fn name(&self) -> &'static str {
        self.spec.id
    }

    /// Integer or FP group.
    pub fn class(&self) -> WorkloadClass {
        self.spec.class
    }
}

/// Build every registered workload at the requested scale — the ten Table 3
/// members followed by the assembled kernels.  Callers that want only the
/// paper's default sweep set filter on `w.spec.paper`.
pub fn suite(scale: Scale) -> Vec<Workload> {
    registry::descriptors()
        .iter()
        .map(|d| d.instantiate(scale))
        .collect()
}

/// The full suite at `scale`, built once per process and shared.
///
/// Sweep infrastructure should prefer this over [`suite`]: beyond skipping
/// program generation, the *shared `Arc<Program>` identities* are what the
/// per-program memoization caches key on (decoded traces, kill plans,
/// front-end tables), so repeated sweeps at one scale reuse those instead of
/// re-deriving them for fresh program instances.
pub fn shared_suite(scale: Scale) -> Arc<Vec<Workload>> {
    use std::sync::Mutex;
    static CACHE: Mutex<Vec<(Scale, Arc<Vec<Workload>>)>> = Mutex::new(Vec::new());
    let mut cache = CACHE.lock().expect("suite cache poisoned");
    if let Some((_, cached)) = cache.iter().find(|(s, _)| *s == scale) {
        return Arc::clone(cached);
    }
    let fresh = Arc::new(suite(scale));
    cache.push((scale, Arc::clone(&fresh)));
    fresh
}

/// Build a single named workload (registered id or alias) at the requested
/// scale.
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    registry::by_id(name).map(|d| d.instantiate(scale))
}

/// Build a single named workload sized so that its dynamic instruction count
/// is approximately `target_instructions` (instead of one of the three
/// [`Scale`] presets).  Used by the simulator-throughput benchmark, which
/// needs a fixed, large instruction budget independent of the preset scales.
pub fn workload_with_target_instructions(name: &str, target_instructions: u64) -> Option<Workload> {
    registry::by_id(name).map(|d| d.instantiate_with_target(target_instructions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::WorkloadKind;
    use earlyreg_isa::Emulator;

    #[test]
    fn suite_covers_every_registered_workload() {
        let suite = suite(Scale::Smoke);
        assert_eq!(suite.len(), registry::descriptors().len());
        assert_eq!(suite.len(), 15);
        let ints = suite
            .iter()
            .filter(|w| w.class() == WorkloadClass::Int)
            .count();
        let fps = suite
            .iter()
            .filter(|w| w.class() == WorkloadClass::Fp)
            .count();
        assert_eq!(ints, 8);
        assert_eq!(fps, 7);
        // The paper's Table 3 split is preserved within the paper subset.
        let paper: Vec<_> = suite.iter().filter(|w| w.spec.paper).collect();
        assert_eq!(paper.len(), 10);
        assert_eq!(
            paper
                .iter()
                .filter(|w| w.class() == WorkloadClass::Int)
                .count(),
            5
        );
    }

    #[test]
    fn suite_names_match_registry_order() {
        let names: Vec<_> = suite(Scale::Smoke).iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "compress",
                "gcc",
                "go",
                "li",
                "perl",
                "mgrid",
                "tomcatv",
                "applu",
                "swim",
                "hydro2d",
                "matmul",
                "quicksort",
                "sieve",
                "box_blur",
                "hazard"
            ]
        );
    }

    #[test]
    fn smoke_scale_runs_every_member_quickly() {
        for w in suite(Scale::Smoke) {
            let mut e = Emulator::new(&w.program);
            let r = e.run(200_000);
            assert!(r.halted, "{} did not halt at smoke scale", w.name());
            let floor = match w.spec.kind() {
                // Synthetic kernels have a 16-iteration floor well above the
                // smoke target; asm kernels just need one meaningful rep.
                WorkloadKind::Synthetic => 1_000,
                WorkloadKind::Asm => 20,
            };
            assert!(
                r.instructions >= floor,
                "{} is too short ({} instructions) to be meaningful",
                w.name(),
                r.instructions
            );
        }
    }

    #[test]
    fn scales_are_ordered() {
        for name in ["swim", "matmul"] {
            let smoke = workload_by_name(name, Scale::Smoke).unwrap();
            let full = workload_by_name(name, Scale::Full).unwrap();
            let run = |p: &earlyreg_isa::Program| {
                let mut e = Emulator::new(p);
                e.run(100_000_000).instructions
            };
            assert!(
                run(&full.program) > run(&smoke.program) * 20,
                "{name} full scale is not >20x smoke"
            );
        }
    }

    #[test]
    fn lookup_by_name_and_alias() {
        assert!(workload_by_name("gcc", Scale::Smoke).is_some());
        assert!(workload_by_name("qsort", Scale::Smoke).is_some());
        assert!(workload_by_name("nonexistent", Scale::Smoke).is_none());
    }

    #[test]
    fn paper_metadata_is_recorded() {
        let hydro = registry::by_id("hydro2d").unwrap();
        assert_eq!(hydro.paper_minsts, 472);
        assert_eq!(hydro.class, WorkloadClass::Fp);
        assert!(hydro.paper);
        let matmul = registry::by_id("matmul").unwrap();
        assert!(!matmul.paper);
    }
}
