//! The benchmark suite (the paper's Table 3 analogue).

use crate::{spec_fp, spec_int};
use earlyreg_isa::Program;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Integer or floating-point benchmark (the paper reports the two groups
/// separately in every figure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Integer code (branch-intensive, moderate register pressure).
    Int,
    /// Floating-point code (loop-dominated, high FP register pressure).
    Fp,
}

impl WorkloadClass {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Int => "integer",
            WorkloadClass::Fp => "floating point",
        }
    }
}

/// How much dynamic work to generate.  The paper ran 47M–472M instructions
/// per program (Table 3); this reproduction scales the runs down so the full
/// sweep of Figure 11 finishes in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// A few thousand dynamic instructions — CI / unit tests.
    Smoke,
    /// Tens of thousands of dynamic instructions — Criterion benchmarks.
    Bench,
    /// A few hundred thousand dynamic instructions — the experiment binaries
    /// that regenerate the paper's figures.
    Full,
}

impl Scale {
    fn iterations(self, per_iteration_cost: u64) -> u64 {
        let target = match self {
            Scale::Smoke => 4_000,
            Scale::Bench => 40_000,
            Scale::Full => 400_000,
        };
        iterations_for_target(target, per_iteration_cost)
    }
}

/// Outer-loop iterations needed to generate about `target_instructions`
/// dynamic instructions — the single sizing formula shared by the [`Scale`]
/// presets and the explicit-budget path.
fn iterations_for_target(target_instructions: u64, per_iteration_cost: u64) -> u64 {
    (target_instructions / per_iteration_cost).max(16)
}

/// Static description of one suite member.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Short name matching the SPEC95 program it stands in for.
    pub name: &'static str,
    /// Integer or FP group.
    pub class: WorkloadClass,
    /// What the synthetic kernel models.
    pub description: &'static str,
    /// The SPEC95 input listed in the paper's Table 3.
    pub paper_input: &'static str,
    /// Dynamic instructions (millions) the paper executed (Table 3).
    pub paper_minsts: u64,
    /// Approximate dynamic instructions per outer-loop iteration of the
    /// synthetic kernel (used to hit the per-scale instruction targets).
    per_iteration_cost: u64,
    build: fn(u64) -> Program,
}

/// One instantiated workload: metadata plus the generated program.
///
/// The program is reference-counted so that sweeps can hand the same
/// workload to many simulator instances without copying the instruction
/// stream and data image.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Static description.
    pub spec: WorkloadSpec,
    /// The generated program.
    pub program: Arc<Program>,
}

impl Workload {
    /// Short name.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// Integer or FP group.
    pub fn class(&self) -> WorkloadClass {
        self.spec.class
    }
}

/// Static descriptions of the ten suite members (Table 3).
pub const SPECS: [WorkloadSpec; 10] = [
    WorkloadSpec {
        name: "compress",
        class: WorkloadClass::Int,
        description: "dictionary/hash-table compression loop (hit/miss branches)",
        paper_input: "40000 e 2231",
        paper_minsts: 170,
        per_iteration_cost: 22,
        build: spec_int::compress_like,
    },
    WorkloadSpec {
        name: "gcc",
        class: WorkloadClass::Int,
        description: "irregular decision cascade over token values",
        paper_input: "genrecog.i",
        paper_minsts: 145,
        per_iteration_cost: 30,
        build: spec_int::gcc_like,
    },
    WorkloadSpec {
        name: "go",
        class: WorkloadClass::Int,
        description: "board scanning with neighbour comparisons",
        paper_input: "9 9",
        paper_minsts: 146,
        per_iteration_cost: 24,
        build: spec_int::go_like,
    },
    WorkloadSpec {
        name: "li",
        class: WorkloadClass::Int,
        description: "cons-cell list traversal with tag dispatch",
        paper_input: "7 queens",
        paper_minsts: 243,
        per_iteration_cost: 110,
        build: spec_int::li_like,
    },
    WorkloadSpec {
        name: "perl",
        class: WorkloadClass::Int,
        description: "string scanning with rolling hashes and buckets",
        paper_input: "scrabbl.in",
        paper_minsts: 47,
        per_iteration_cost: 16,
        build: spec_int::perl_like,
    },
    WorkloadSpec {
        name: "mgrid",
        class: WorkloadClass::Fp,
        description: "3-D stencil relaxation sweep",
        paper_input: "test (lines 2/3 -> 5 and 18)",
        paper_minsts: 169,
        per_iteration_cost: 48,
        build: spec_fp::mgrid_like,
    },
    WorkloadSpec {
        name: "tomcatv",
        class: WorkloadClass::Fp,
        description: "mesh-generation smoothing with divides",
        paper_input: "test",
        paper_minsts: 191,
        per_iteration_cost: 45,
        build: spec_fp::tomcatv_like,
    },
    WorkloadSpec {
        name: "applu",
        class: WorkloadClass::Fp,
        description: "SSOR-style block solve",
        paper_input: "train (dt=1.5e-03, nx=ny=nz=13)",
        paper_minsts: 398,
        per_iteration_cost: 40,
        build: spec_fp::applu_like,
    },
    WorkloadSpec {
        name: "swim",
        class: WorkloadClass::Fp,
        description: "shallow-water finite differences",
        paper_input: "train",
        paper_minsts: 431,
        per_iteration_cost: 42,
        build: spec_fp::swim_like,
    },
    WorkloadSpec {
        name: "hydro2d",
        class: WorkloadClass::Fp,
        description: "hydrodynamics flux computation with limiter branches",
        paper_input: "test (ISTEP=1)",
        paper_minsts: 472,
        per_iteration_cost: 40,
        build: spec_fp::hydro2d_like,
    },
];

/// Build the full ten-program suite at the requested scale.
pub fn suite(scale: Scale) -> Vec<Workload> {
    SPECS
        .iter()
        .map(|spec| Workload {
            spec: *spec,
            program: Arc::new((spec.build)(scale.iterations(spec.per_iteration_cost))),
        })
        .collect()
}

/// Build a single named workload at the requested scale.
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    SPECS.iter().find(|s| s.name == name).map(|spec| Workload {
        spec: *spec,
        program: Arc::new((spec.build)(scale.iterations(spec.per_iteration_cost))),
    })
}

/// Build a single named workload sized so that its dynamic instruction count
/// is approximately `target_instructions` (instead of one of the three
/// [`Scale`] presets).  Used by the simulator-throughput benchmark, which
/// needs a fixed, large instruction budget independent of the preset scales.
pub fn workload_with_target_instructions(name: &str, target_instructions: u64) -> Option<Workload> {
    SPECS.iter().find(|s| s.name == name).map(|spec| Workload {
        spec: *spec,
        program: Arc::new((spec.build)(
            (target_instructions / spec.per_iteration_cost).max(16),
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::Emulator;

    #[test]
    fn suite_has_five_int_and_five_fp_members() {
        let suite = suite(Scale::Smoke);
        assert_eq!(suite.len(), 10);
        let ints = suite
            .iter()
            .filter(|w| w.class() == WorkloadClass::Int)
            .count();
        let fps = suite
            .iter()
            .filter(|w| w.class() == WorkloadClass::Fp)
            .count();
        assert_eq!(ints, 5);
        assert_eq!(fps, 5);
    }

    #[test]
    fn suite_names_match_table3() {
        let names: Vec<_> = SPECS.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "compress", "gcc", "go", "li", "perl", "mgrid", "tomcatv", "applu", "swim",
                "hydro2d"
            ]
        );
    }

    #[test]
    fn smoke_scale_runs_every_member_quickly() {
        for w in suite(Scale::Smoke) {
            let mut e = Emulator::new(&w.program);
            let r = e.run(200_000);
            assert!(r.halted, "{} did not halt at smoke scale", w.name());
            assert!(
                r.instructions >= 1_000,
                "{} is too short ({} instructions) to be meaningful",
                w.name(),
                r.instructions
            );
        }
    }

    #[test]
    fn scales_are_ordered() {
        let smoke = workload_by_name("swim", Scale::Smoke).unwrap();
        let full = workload_by_name("swim", Scale::Full).unwrap();
        let run = |p: &earlyreg_isa::Program| {
            let mut e = Emulator::new(p);
            e.run(100_000_000).instructions
        };
        assert!(run(&full.program) > run(&smoke.program) * 20);
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("gcc", Scale::Smoke).is_some());
        assert!(workload_by_name("nonexistent", Scale::Smoke).is_none());
    }

    #[test]
    fn paper_metadata_is_recorded() {
        let hydro = SPECS.iter().find(|s| s.name == "hydro2d").unwrap();
        assert_eq!(hydro.paper_minsts, 472);
        assert_eq!(hydro.class, WorkloadClass::Fp);
    }
}
