//! Integer SPEC95 analogues: compress, gcc, go, li, perl.
//!
//! The paper's integer codes are branch-intensive with moderate register
//! pressure; their branches mix well-predictable loop control with
//! data-dependent decisions.  Each generator here produces a self-contained
//! program (data image included) whose dynamic behaviour follows that
//! profile.  The `iterations` parameter scales the dynamic instruction count
//! roughly linearly.

use earlyreg_isa::{ArchReg, BranchCond, Opcode, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `129.compress`-like kernel: a dictionary/hash-table compressor loop.
///
/// Per "input symbol": hash the symbol, probe a table, branch on hit/miss,
/// update the table on a miss and counters on a hit.  The hit/miss branch is
/// data-dependent and only partially predictable.
pub fn compress_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("compress");
    b.set_memory_words(1 << 15);
    let mut r = rng(0xC0_0001);

    const INPUT: usize = 4096;
    const TABLE: usize = 1024;
    let input: Vec<i64> = (0..INPUT).map(|_| r.gen_range(0..5000)).collect();
    let input_base = b.data_i64(&input);
    let table_base = b.data_zeroed(TABLE);
    let out_base = b.data_zeroed(8);

    let i = ArchReg::int(1);
    let idx = ArchReg::int(2);
    let inp = ArchReg::int(3);
    let tab = ArchReg::int(4);
    let val = ArchReg::int(5);
    let hash = ArchReg::int(6);
    let entry = ArchReg::int(7);
    let hits = ArchReg::int(8);
    let misses = ArchReg::int(9);
    let acc = ArchReg::int(10);
    let tmp = ArchReg::int(11);
    let mult = ArchReg::int(12);
    let out = ArchReg::int(13);
    let slot = ArchReg::int(14);

    b.li(i, iterations as i64);
    b.li(inp, input_base);
    b.li(tab, table_base);
    b.li(out, out_base);
    b.li(hits, 0);
    b.li(misses, 0);
    b.li(acc, 0);
    b.li(mult, 2654435761);

    let top = b.here();
    // idx = i & (INPUT-1); val = input[idx]
    b.iopi(Opcode::IAndImm, idx, i, (INPUT - 1) as i64);
    b.add(tmp, inp, idx);
    b.load_int(val, tmp, 0);
    // hash = ((val * K) >> 7) & (TABLE-1)
    b.mul(hash, val, mult);
    b.iopi(Opcode::IShrImm, hash, hash, 7);
    b.iopi(Opcode::IAndImm, hash, hash, (TABLE - 1) as i64);
    // entry = table[hash]
    b.add(slot, tab, hash);
    b.load_int(entry, slot, 0);
    let miss = b.new_label();
    let cont = b.new_label();
    b.branch(BranchCond::Ne, entry, Some(val), miss);
    // hit path
    b.addi(hits, hits, 1);
    b.add(acc, acc, val);
    b.jump(cont);
    // miss path: install and count
    b.bind(miss);
    b.store_int(slot, 0, val);
    b.addi(misses, misses, 1);
    b.iop(Opcode::IXor, acc, acc, val);
    b.bind(cont);
    // occasional extra work: if (val & 3) == 0, fold acc
    let skip = b.new_label();
    b.iopi(Opcode::IAndImm, tmp, val, 3);
    b.branch(BranchCond::Ne, tmp, None, skip);
    b.iopi(Opcode::IShlImm, tmp, acc, 1);
    b.iop(Opcode::IXor, acc, acc, tmp);
    b.bind(skip);
    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_int(out, 0, hits);
    b.store_int(out, 1, misses);
    b.store_int(out, 2, acc);
    b.halt();
    b.build().expect("compress kernel must be valid")
}

/// `126.gcc`-like kernel: an irregular decision cascade over token values,
/// emulating the branchy, short-basic-block behaviour of a compiler.
pub fn gcc_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("gcc");
    b.set_memory_words(1 << 15);
    let mut r = rng(0x6CC_0002);

    const TOKENS: usize = 8192;
    let tokens: Vec<i64> = (0..TOKENS).map(|_| r.gen_range(0..256)).collect();
    let tok_base = b.data_i64(&tokens);
    let out_base = b.data_zeroed(8);

    let i = ArchReg::int(1);
    let base = ArchReg::int(2);
    let v = ArchReg::int(3);
    let t = ArchReg::int(4);
    let a0 = ArchReg::int(5);
    let a1 = ArchReg::int(6);
    let a2 = ArchReg::int(7);
    let a3 = ArchReg::int(8);
    let tmp = ArchReg::int(9);
    let idx = ArchReg::int(10);
    let out = ArchReg::int(11);
    let k = ArchReg::int(12);

    b.li(i, iterations as i64);
    b.li(base, tok_base);
    b.li(out, out_base);
    b.li(a0, 0);
    b.li(a1, 0);
    b.li(a2, 0);
    b.li(a3, 1);

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (TOKENS - 1) as i64);
    b.add(tmp, base, idx);
    b.load_int(v, tmp, 0);
    b.iopi(Opcode::IAndImm, t, v, 7);

    let case1 = b.new_label();
    let case2 = b.new_label();
    let case3 = b.new_label();
    let join = b.new_label();
    // switch (t)
    b.branch(BranchCond::Eq, t, None, case1);
    b.li(tmp, 1);
    b.branch(BranchCond::Eq, t, Some(tmp), case2);
    b.li(tmp, 4);
    b.branch(BranchCond::Lt, t, Some(tmp), case3);
    // default: a3-heavy path with a multiply
    b.mul(a3, a3, v);
    b.addi(a3, a3, 13);
    b.jump(join);
    b.bind(case1);
    b.add(a0, a0, v);
    b.iopi(Opcode::IShrImm, tmp, v, 2);
    b.iop(Opcode::IXor, a0, a0, tmp);
    b.jump(join);
    b.bind(case2);
    b.sub(a1, a1, v);
    b.iopi(Opcode::IShlImm, tmp, v, 1);
    b.add(a1, a1, tmp);
    b.jump(join);
    b.bind(case3);
    b.iop(Opcode::IOr, a2, a2, v);
    b.addi(a2, a2, 3);
    b.jump(join);
    b.bind(join);
    // nested mini-loop (constant trip count of 3): well-predicted branches
    b.li(k, 3);
    let inner = b.here();
    b.iopi(Opcode::IShrImm, tmp, a0, 1);
    b.add(a2, a2, tmp);
    b.addi(k, k, -1);
    b.branch(BranchCond::Gt, k, None, inner);

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_int(out, 0, a0);
    b.store_int(out, 1, a1);
    b.store_int(out, 2, a2);
    b.store_int(out, 3, a3);
    b.halt();
    b.build().expect("gcc kernel must be valid")
}

/// `099.go`-like kernel: board scanning with neighbour comparisons and
/// data-dependent move decisions.
pub fn go_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("go");
    b.set_memory_words(1 << 15);
    let mut r = rng(0x60_0003);

    const BOARD: usize = 1024; // 32x32
    let board: Vec<i64> = (0..BOARD).map(|_| r.gen_range(0..3)).collect();
    let board_base = b.data_i64(&board);
    let out_base = b.data_zeroed(4);

    let i = ArchReg::int(1);
    let base = ArchReg::int(2);
    let pos = ArchReg::int(3);
    let cell = ArchReg::int(4);
    let n1 = ArchReg::int(5);
    let n2 = ArchReg::int(6);
    let n3 = ArchReg::int(7);
    let n4 = ArchReg::int(8);
    let score = ArchReg::int(9);
    let captures = ArchReg::int(10);
    let tmp = ArchReg::int(11);
    let lcg = ArchReg::int(12);
    let out = ArchReg::int(13);
    let addr = ArchReg::int(14);

    b.li(i, iterations as i64);
    b.li(base, board_base);
    b.li(out, out_base);
    b.li(score, 0);
    b.li(captures, 0);
    b.li(lcg, 88172645463325252u64 as i64);

    let top = b.here();
    // xorshift-ish position selection (data dependent)
    b.iopi(Opcode::IShlImm, tmp, lcg, 13);
    b.iop(Opcode::IXor, lcg, lcg, tmp);
    b.iopi(Opcode::IShrImm, tmp, lcg, 7);
    b.iop(Opcode::IXor, lcg, lcg, tmp);
    b.iopi(Opcode::IAndImm, pos, lcg, (BOARD - 1) as i64);
    // load cell and 4 neighbours (wrapped)
    b.add(addr, base, pos);
    b.load_int(cell, addr, 0);
    b.load_int(n1, addr, 1);
    b.load_int(n2, addr, -1);
    b.load_int(n3, addr, 32);
    b.load_int(n4, addr, -32);
    // count matching neighbours with data-dependent branches
    let skip1 = b.new_label();
    b.branch(BranchCond::Ne, cell, Some(n1), skip1);
    b.addi(score, score, 1);
    b.bind(skip1);
    let skip2 = b.new_label();
    b.branch(BranchCond::Ne, cell, Some(n2), skip2);
    b.addi(score, score, 1);
    b.bind(skip2);
    let skip3 = b.new_label();
    b.branch(BranchCond::Ne, cell, Some(n3), skip3);
    b.addi(score, score, 1);
    b.bind(skip3);
    let skip4 = b.new_label();
    b.branch(BranchCond::Ne, cell, Some(n4), skip4);
    b.addi(score, score, 1);
    b.bind(skip4);
    // "capture": if the cell is empty (0) and score is high, place a stone
    let no_capture = b.new_label();
    b.branch(BranchCond::Ne, cell, None, no_capture);
    b.li(tmp, 2);
    b.branch(BranchCond::Lt, score, Some(tmp), no_capture);
    b.li(tmp, 1);
    b.store_int(addr, 0, tmp);
    b.addi(captures, captures, 1);
    b.bind(no_capture);

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_int(out, 0, score);
    b.store_int(out, 1, captures);
    b.halt();
    b.build().expect("go kernel must be valid")
}

/// `130.li`-like kernel: cons-cell list traversal with tag dispatch
/// (pointer chasing — loads on the critical path plus data-dependent
/// branches).
pub fn li_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("li");
    b.set_memory_words(1 << 15);
    let mut r = rng(0x11_0004);

    // Cons cells: [car, cdr] pairs at indices 2k, 2k+1.  cdr points to
    // another cell index (word address of the car), 0 terminates.
    const CELLS: usize = 2048;
    let mut heap = vec![0i64; CELLS * 2];
    for k in 0..CELLS {
        heap[2 * k] = r.gen_range(-100..100);
        let next = r.gen_range(0..CELLS) as i64;
        heap[2 * k + 1] = if r.gen_range(0..16) == 0 { 0 } else { 2 * next };
    }
    let heap_base = b.data_i64(&heap);
    let out_base = b.data_zeroed(4);

    let i = ArchReg::int(1);
    let heapb = ArchReg::int(2);
    let ptr = ArchReg::int(3);
    let car = ArchReg::int(4);
    let cdr = ArchReg::int(5);
    let sum = ArchReg::int(6);
    let xormix = ArchReg::int(7);
    let depth = ArchReg::int(8);
    let tmp = ArchReg::int(9);
    let out = ArchReg::int(10);
    let addr = ArchReg::int(11);
    let start = ArchReg::int(12);

    b.li(i, iterations as i64);
    b.li(heapb, heap_base);
    b.li(out, out_base);
    b.li(sum, 0);
    b.li(xormix, 0);

    let top = b.here();
    // start cell = (i * 2) & (2*CELLS - 1)
    b.iopi(Opcode::IShlImm, start, i, 1);
    b.iopi(Opcode::IAndImm, start, start, (CELLS * 2 - 1) as i64);
    b.iopi(Opcode::IAndImm, start, start, !1);
    b.mov(ptr, start);
    b.li(depth, 12);
    let walk = b.here();
    b.add(addr, heapb, ptr);
    b.load_int(car, addr, 0);
    b.load_int(cdr, addr, 1);
    // tag dispatch: odd car values are "numbers" (sum), even are "symbols"
    let even = b.new_label();
    let next = b.new_label();
    b.iopi(Opcode::IAndImm, tmp, car, 1);
    b.branch(BranchCond::Eq, tmp, None, even);
    b.add(sum, sum, car);
    b.jump(next);
    b.bind(even);
    b.iop(Opcode::IXor, xormix, xormix, car);
    b.bind(next);
    // follow cdr; nil (0) ends the walk
    let done = b.new_label();
    b.branch(BranchCond::Eq, cdr, None, done);
    b.mov(ptr, cdr);
    b.addi(depth, depth, -1);
    b.branch(BranchCond::Gt, depth, None, walk);
    b.bind(done);

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_int(out, 0, sum);
    b.store_int(out, 1, xormix);
    b.halt();
    b.build().expect("li kernel must be valid")
}

/// `134.perl`-like kernel: string scanning with rolling hashes, character
/// class dispatch and hash-bucket updates.
pub fn perl_like(iterations: u64) -> Program {
    let mut b = ProgramBuilder::new("perl");
    b.set_memory_words(1 << 15);
    let mut r = rng(0x9E_0005);

    const TEXT: usize = 8192;
    const BUCKETS: usize = 256;
    let text: Vec<i64> = (0..TEXT)
        .map(|_| {
            // Mostly letters, some digits and separators.
            match r.gen_range(0..10) {
                0 => r.gen_range(48..58),
                1 => 32,
                _ => r.gen_range(97..123),
            }
        })
        .collect();
    let text_base = b.data_i64(&text);
    let bucket_base = b.data_zeroed(BUCKETS);
    let out_base = b.data_zeroed(4);

    let i = ArchReg::int(1);
    let txt = ArchReg::int(2);
    let buckets = ArchReg::int(3);
    let c = ArchReg::int(4);
    let hash = ArchReg::int(5);
    let words = ArchReg::int(6);
    let digits = ArchReg::int(7);
    let tmp = ArchReg::int(8);
    let idx = ArchReg::int(9);
    let out = ArchReg::int(10);
    let slot = ArchReg::int(11);
    let old = ArchReg::int(12);
    let thirty_one = ArchReg::int(13);

    b.li(i, iterations as i64);
    b.li(txt, text_base);
    b.li(buckets, bucket_base);
    b.li(out, out_base);
    b.li(hash, 5381);
    b.li(words, 0);
    b.li(digits, 0);
    b.li(thirty_one, 31);

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (TEXT - 1) as i64);
    b.add(tmp, txt, idx);
    b.load_int(c, tmp, 0);
    // hash = hash*31 + c
    b.mul(hash, hash, thirty_one);
    b.add(hash, hash, c);
    // character class dispatch
    let not_space = b.new_label();
    let not_digit = b.new_label();
    let classified = b.new_label();
    b.li(tmp, 33);
    b.branch(BranchCond::Ge, c, Some(tmp), not_space);
    // separator: finish the current "word" — update a bucket and reset hash
    b.iopi(Opcode::IAndImm, tmp, hash, (BUCKETS - 1) as i64);
    b.add(slot, buckets, tmp);
    b.load_int(old, slot, 0);
    b.addi(old, old, 1);
    b.store_int(slot, 0, old);
    b.li(hash, 5381);
    b.addi(words, words, 1);
    b.jump(classified);
    b.bind(not_space);
    b.li(tmp, 58);
    b.branch(BranchCond::Ge, c, Some(tmp), not_digit);
    b.addi(digits, digits, 1);
    b.jump(classified);
    b.bind(not_digit);
    // letters: extra mixing
    b.iopi(Opcode::IShrImm, tmp, hash, 3);
    b.iop(Opcode::IXor, hash, hash, tmp);
    b.bind(classified);

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    b.store_int(out, 0, words);
    b.store_int(out, 1, digits);
    b.store_int(out, 2, hash);
    b.halt();
    b.build().expect("perl kernel must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::Emulator;

    fn check(program: &Program, max: u64) -> earlyreg_isa::EmulationResult {
        program.validate().expect("program validates");
        let mut emu = Emulator::new(program);
        let result = emu.run(max);
        assert!(
            result.halted,
            "{} did not halt within {max} instructions",
            program.name
        );
        result
    }

    #[test]
    fn all_int_kernels_terminate_and_are_branchy() {
        for (program, min_branch_fraction) in [
            (compress_like(400), 0.10),
            (gcc_like(400), 0.15),
            (go_like(400), 0.15),
            (li_like(400), 0.15),
            (perl_like(400), 0.10),
        ] {
            let result = check(&program, 2_000_000);
            assert!(
                result.branch_fraction() >= min_branch_fraction,
                "{} branch fraction {:.3} too low for an integer SPEC analogue",
                program.name,
                result.branch_fraction()
            );
            assert!(result.loads > 0 && result.stores > 0);
        }
    }

    #[test]
    fn iteration_count_scales_dynamic_length() {
        let short = check(&compress_like(100), 1_000_000).instructions;
        let long = check(&compress_like(400), 4_000_000).instructions;
        assert!(
            long > short * 3,
            "dynamic length must scale with iterations"
        );
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = compress_like(200);
        let b = compress_like(200);
        assert_eq!(a.instrs, b.instrs);
        assert_eq!(a.data, b.data);
        let mut ea = Emulator::new(&a);
        let mut eb = Emulator::new(&b);
        ea.run(1_000_000);
        eb.run(1_000_000);
        assert_eq!(ea.state.fingerprint(), eb.state.fingerprint());
    }

    #[test]
    fn branches_are_not_fully_predictable() {
        // The taken ratio of the data-dependent branches should be away from
        // 0 and 1 overall (a rough proxy for "hard to predict" behaviour).
        let p = go_like(500);
        let r = check(&p, 2_000_000);
        let ratio = r.taken_branches as f64 / r.branches as f64;
        assert!(ratio > 0.1 && ratio < 0.95, "taken ratio {ratio:.3}");
    }
}
