; Iterative quicksort over 64 pseudo-random integers, repeated `reps` times.
;
; Int-class kernel: data-dependent compare/swap branches (the partition
; comparison is unpredictable by construction), an explicit lo/hi work stack
; in memory and pointer-style address arithmetic.  Each rep reseeds the
; array from an LCG keyed by the remaining-rep counter so no two reps sort
; the same data, then writes the sorted array's checksum to `out`.
.arg reps = 1
arr:    .zero 64
stk:    .zero 256
out:    .zero 1

        li r1, reps
        ld r31, r1              ; r31 = reps
        li r2, arr
        li r3, 64               ; n
        li r4, stk

rep:    ; reseed arr from an LCG stream
        li r10, 0
        li r11, 2654435761
        mul r12, r31, r11
        addi r12, r12, 12345
fill:   li r13, 1103515245
        mul r12, r12, r13
        addi r12, r12, 12345
        shri r14, r12, 16
        add r15, r2, r10
        st r15, r14
        addi r10, r10, 1
        blt r10, r3, fill

        ; push (0, n-1)
        xori r20, r4, 0         ; sp = &stk[0]
        li r21, 0
        st r20, r21
        addi r22, r3, -1
        st r20, r22, 1
        addi r20, r20, 2

qloop:  seq r10, r20, r4
        bne r10, qdone          ; stack empty
        addi r20, r20, -2
        ld r23, r20             ; lo
        ld r24, r20, 1          ; hi
        slt r10, r23, r24
        beq r10, qloop          ; lo >= hi: nothing to sort

        ; Lomuto partition with pivot = arr[hi]
        add r25, r2, r24
        ld r26, r25             ; pivot
        addi r27, r23, -1       ; i = lo - 1
        xori r28, r23, 0        ; j = lo
part:   slt r10, r28, r24
        beq r10, pdone
        add r29, r2, r28
        ld r30, r29             ; arr[j]
        slt r10, r26, r30       ; pivot < arr[j] -> keep in place
        bne r10, pnext
        addi r27, r27, 1
        add r5, r2, r27
        ld r6, r5
        st r5, r30              ; swap arr[i], arr[j]
        st r29, r6
pnext:  addi r28, r28, 1
        j part
pdone:  addi r27, r27, 1        ; p = i + 1
        add r5, r2, r27
        ld r6, r5
        st r5, r26              ; swap arr[p], arr[hi]
        st r25, r6
        ; push (lo, p-1) and (p+1, hi)
        addi r7, r27, -1
        st r20, r23
        st r20, r7, 1
        addi r20, r20, 2
        addi r8, r27, 1
        st r20, r8
        st r20, r24, 1
        addi r20, r20, 2
        j qloop

qdone:  ; checksum of the sorted array -> out
        li r10, 0
        li r11, 0
sum:    add r12, r2, r10
        ld r13, r12
        add r11, r11, r13
        addi r10, r10, 1
        blt r10, r3, sum
        li r14, out
        st r14, r11
        addi r31, r31, -1
        bgt r31, rep
        halt
