; 8x8 dense matrix multiply: C += A * B, repeated `reps` times.
;
; FP-class kernel: long fmul/fadd dependence chains through the dot-product
; accumulator and many simultaneously live FP values, the register-pressure
; profile the paper's FP group exists to stress.  A and B are filled once
; from an affine ramp (exercising itof); C accumulates across reps so every
; value stays architecturally live.
.arg reps = 1
a:      .zero 64
b:      .zero 64
c:      .zero 64

        li r1, reps
        ld r31, r1              ; r31 = reps
        li r2, a
        li r3, b
        li r4, c
        li r5, 8                ; n

        ; A[i] = 1.0 + i*0.5 ; B[i] = 2.0 - i*0.25
        li r10, 0
        li r11, 64
        fli f10, 0.5
        fli f11, 1.0
        fli f12, 0.25
        fli f13, 2.0
fill:   itof f1, r10
        fmul f2, f1, f10
        fadd f2, f2, f11
        add r12, r2, r10
        fst r12, f2
        fmul f3, f1, f12
        fsub f3, f13, f3
        add r13, r3, r10
        fst r13, f3
        addi r10, r10, 1
        blt r10, r11, fill

rep:    li r20, 0               ; i
iloop:  li r21, 0               ; j
        shli r24, r20, 3
        add r24, r24, r2        ; &A[i*8]
jloop:  fli f0, 0.0
        li r22, 0               ; k
kloop:  add r25, r24, r22
        fld f1, r25             ; A[i*8 + k]
        shli r26, r22, 3
        add r26, r26, r21
        add r26, r26, r3
        fld f2, r26             ; B[k*8 + j]
        fmul f3, f1, f2
        fadd f0, f0, f3
        addi r22, r22, 1
        blt r22, r5, kloop
        shli r27, r20, 3
        add r27, r27, r21
        add r27, r27, r4
        fld f4, r27
        fadd f4, f4, f0
        fst r27, f4             ; C[i*8 + j] += dot
        addi r21, r21, 1
        blt r21, r5, jloop
        addi r20, r20, 1
        blt r20, r5, iloop
        addi r31, r31, -1
        bgt r31, rep
        halt
