; 5-tap box blur over a 1-D grid of 256 samples, repeated `reps` times.
;
; FP-class kernel: each output is a 5-load reduction tree feeding a scale,
; so many FP values are live at once and the fadd chain serialises — the
; stencil-sweep shape of the paper's FP group.  The blurred grid is fed back
; (with a slight decay) so successive reps keep doing new arithmetic.
.arg reps = 1
grid:   .zero 256
tmp:    .zero 256

        li r1, reps
        ld r31, r1              ; r31 = reps
        li r2, grid
        li r3, tmp
        li r4, 256              ; n

        ; grid[i] = i * 0.1
        li r10, 0
        fli f10, 0.1
finit:  itof f1, r10
        fmul f1, f1, f10
        add r11, r2, r10
        fst r11, f1
        addi r10, r10, 1
        blt r10, r4, finit

        fli f11, 0.2            ; 1/5
        fli f12, 0.999          ; feedback decay
rep:    li r10, 2
        addi r12, r4, -2
blur:   add r13, r2, r10
        fld f1, r13, -2
        fld f2, r13, -1
        fld f3, r13
        fld f4, r13, 1
        fld f5, r13, 2
        fadd f6, f1, f2
        fadd f6, f6, f3
        fadd f6, f6, f4
        fadd f6, f6, f5
        fmul f6, f6, f11
        add r14, r3, r10
        fst r14, f6
        addi r10, r10, 1
        blt r10, r12, blur
        ; feed tmp back into grid with a decay
        li r10, 2
cpy:    add r14, r3, r10
        fld f7, r14
        fmul f7, f7, f12
        add r13, r2, r10
        fst r13, f7
        addi r10, r10, 1
        blt r10, r12, cpy
        addi r31, r31, -1
        bgt r31, rep
        halt
