; Sieve of Eratosthenes over [2, limit), counting primes each rep.
;
; Int-class kernel: bit-map style flag writes, a marking loop whose trip
; counts shrink as the prime grows, and a counting pass whose branch is
; taken at the true prime density — a mix of well- and poorly-predictable
; control flow.  The prime count lands in `out` every rep.
.arg reps = 1
.arg limit = 512
flags:  .zero 512
out:    .zero 1

        li r1, reps
        ld r31, r1              ; r31 = reps
        li r2, limit
        ld r30, r2              ; r30 = limit
        li r2, flags
        li r3, 1                ; composite marker

rep:    ; clear flags[0..limit)
        li r10, 0
        li r11, 0
clr:    add r12, r2, r10
        st r12, r11
        addi r10, r10, 1
        blt r10, r30, clr

        ; mark composites
        li r13, 2               ; p
outer:  mul r14, r13, r13       ; p*p
        slt r10, r14, r30
        beq r10, count          ; p*p >= limit: done marking
        add r15, r2, r13
        ld r16, r15
        bne r16, skip           ; p is composite
mark:   add r17, r2, r14
        st r17, r3
        add r14, r14, r13
        slt r10, r14, r30
        bne r10, mark
skip:   addi r13, r13, 1
        j outer

count:  li r18, 0
        li r10, 2
cnt:    add r12, r2, r10
        ld r19, r12
        bne r19, notp
        addi r18, r18, 1
notp:   addi r10, r10, 1
        blt r10, r30, cnt
        li r20, out
        st r20, r18
        addi r31, r31, -1
        bgt r31, rep
        halt
