; Hazard-stress pattern, repeated `reps` times.
;
; Int-class kernel built to poke the renamer and the release machinery
; directly: every rep advances an LCG whose bits drive (1) a store followed
; immediately by a load of the same word (store-to-load aliasing), (2) a
; tight 4-deep redefinition chain on one register (back-to-back WAW+RAW,
; the shortest possible register lifetimes) and (3) two data-dependent
; branches taken from low LCG bits (essentially unpredictable).
.arg reps = 1
buf:    .zero 16
out:    .zero 1

        li r1, reps
        ld r31, r1              ; r31 = reps
        li r2, buf
        li r3, 1103515245
        li r4, 12345
        xori r5, r31, 0         ; LCG state
        li r6, 0                ; accumulator

rep:    mul r5, r5, r3
        add r5, r5, r4
        shri r7, r5, 13
        andi r8, r7, 7          ; buffer slot

        ; store then immediately load the same word
        add r9, r2, r8
        st r9, r7
        ld r10, r9
        add r6, r6, r10

        ; tight redefinition chain: r11 redefined four times back to back
        addi r11, r10, 1
        shli r11, r11, 1
        addi r11, r11, -3
        xori r11, r11, 255

        ; unpredictable branch on LCG bit 0
        andi r12, r7, 1
        beq r12, even
        add r6, r6, r11
        j join
even:   sub r6, r6, r11
join:   ; second branch on LCG bit 1, aliasing slot+1 when taken
        andi r12, r7, 2
        beq r12, skip
        st r9, r6, 1
        ld r13, r9, 1
        add r6, r6, r13
skip:   addi r31, r31, -1
        bgt r31, rep
        li r14, out
        st r14, r6
        halt
