//! # earlyreg-rfmodel
//!
//! Analytic multiported-SRAM delay / energy / storage model used to reproduce
//! Figure 9 and the Section 4.4 discussion of *"Hardware Schemes for Early
//! Register Release"* (ICPP 2002).
//!
//! The paper uses the register-file model of Rixner et al. (HPCA-6, 2000) for
//! a 0.18 µm technology.  The original layout inputs are not available, so
//! this crate implements a standard analytic model — wordline/bitline RC
//! delay plus per-port cell growth, and bitline switching energy — and
//! **calibrates** its coefficients to the anchor points the paper reports:
//!
//! * the Last-Uses Table (32 entries, 56 ports, 9-bit words) takes **0.98 ns**
//!   and **193.2 pJ**;
//! * the LUs Table delay is ≈ 26 % below the smallest (40-entry) integer
//!   register file;
//! * moving from a 64int + 79fp configuration to 56int + 72fp plus two LUs
//!   Tables is energy-neutral (≈ 3.85 nJ either way, Section 4.4);
//! * the extended mechanism costs ≈ 1.22 KB of storage on an Alpha-21264-like
//!   machine plus ≈ 128 B for the two LUs Tables.
//!
//! Only the *relative* scaling with registers and ports matters for the
//! paper's argument; the calibrated model reproduces those relations (the
//! `fig09_rfmodel` and `sec44_energy` binaries print the full comparison).

pub mod delay;
pub mod energy;
pub mod geometry;
pub mod storage;

pub use delay::access_time_ns;
pub use energy::{access_energy_pj, energy_balance, EnergyBalance};
pub use geometry::RfGeometry;
pub use storage::{extended_mechanism_storage, lus_table_storage, StorageEstimate};
