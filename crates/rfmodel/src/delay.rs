//! Access-time model (Figure 9.a).
//!
//! Delay is modelled as a fixed sense/decode component plus wordline and
//! bitline RC terms.  Both wires grow linearly with the number of ports
//! (every port adds a wire track to each cell, so the cell pitch — and hence
//! the wordline and bitline length — grows with `T`):
//!
//! ```text
//! t(R, T, W) = T0 + (KW·W + KR·R) · (1 + PORT_GROWTH·T)      [ns]
//! ```
//!
//! The coefficients are calibrated to the paper's anchors: the LUs Table
//! (32 entries, 56 ports, 9 bits) at 0.98 ns, the 40-entry integer file at
//! ≈ 1.32 ns (the paper states the LUs Table is 26 % faster than the smallest
//! integer file) and a ≈ 1.9–2.0 ns access time at 160 registers, matching
//! the range of Figure 9.a.

use crate::geometry::RfGeometry;

/// Fixed decode + sense-amplifier latency [ns].
pub const T0_NS: f64 = 0.746;
/// Wordline RC per bit of word width [ns/bit] (before port growth).
pub const KW_NS_PER_BIT: f64 = 0.00321;
/// Bitline RC per register [ns/register] (before port growth).
pub const KR_NS_PER_REG: f64 = 0.00255;
/// Relative cell-pitch growth per port.
pub const PORT_GROWTH: f64 = 0.02;

/// Access time of the array in nanoseconds.
pub fn access_time_ns(geometry: RfGeometry) -> f64 {
    let growth = 1.0 + PORT_GROWTH * geometry.ports() as f64;
    T0_NS
        + (KW_NS_PER_BIT * geometry.bits as f64 + KR_NS_PER_REG * geometry.registers as f64)
            * growth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lus_table_matches_the_paper_anchor() {
        let t = access_time_ns(RfGeometry::lus_table());
        assert!(
            (t - 0.98).abs() < 0.02,
            "LUs Table access time {t:.3} ns != 0.98 ns"
        );
    }

    #[test]
    fn lus_table_is_about_26_percent_faster_than_the_smallest_int_file() {
        let lus = access_time_ns(RfGeometry::lus_table());
        let int40 = access_time_ns(RfGeometry::int_file(40));
        let saving = 1.0 - lus / int40;
        assert!(
            (0.20..=0.32).contains(&saving),
            "LUs Table saving vs 40-entry int file is {:.1} % (paper: ~26 %)",
            saving * 100.0
        );
    }

    #[test]
    fn access_time_grows_monotonically_with_registers() {
        let mut prev = 0.0;
        for p in (40..=160).step_by(8) {
            let t = access_time_ns(RfGeometry::int_file(p));
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn figure9_range_is_reproduced() {
        // Figure 9.a spans roughly 1.3 ns (40 registers) to 2.0 ns (160).
        let small = access_time_ns(RfGeometry::int_file(40));
        let large = access_time_ns(RfGeometry::fp_file(160));
        assert!(
            (1.25..=1.45).contains(&small),
            "40-entry int file: {small:.3} ns"
        );
        assert!(
            (1.8..=2.1).contains(&large),
            "160-entry fp file: {large:.3} ns"
        );
    }

    #[test]
    fn more_ports_means_slower_access() {
        let int = access_time_ns(RfGeometry::int_file(80));
        let fp = access_time_ns(RfGeometry::fp_file(80));
        assert!(fp > int);
    }
}
