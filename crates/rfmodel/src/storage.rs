//! Storage cost of the extended mechanism (Section 4.4).
//!
//! The paper works the example of an Alpha-21264-class machine: with an
//! 80-entry reorder structure, 8-bit physical register identifiers, 152
//! physical registers and 20 pending branches the extended mechanism needs
//! about 1.22 KB, and the two Last-Uses Tables add roughly another 128 bytes.

use serde::{Deserialize, Serialize};

/// Breakdown of the extended mechanism's storage cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageEstimate {
    /// Physical-register identifier copies (`PRid`: p1, p2, pd per entry).
    pub prid_bits: u64,
    /// Unconditional early-release bits (`RwC0`: rel1/rel2/reld per entry).
    pub rwc0_bits: u64,
    /// Conditional release levels (`RwNSx` bit-vectors plus `RwCx` 3-bit
    /// arrays, one level per supported pending branch).
    pub release_queue_bits: u64,
}

impl StorageEstimate {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.prid_bits + self.rwc0_bits + self.release_queue_bits
    }

    /// Total size in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.total_bits() as f64 / 8.0
    }

    /// Total size in kilobytes (1 KB = 1024 bytes).
    pub fn total_kib(&self) -> f64 {
        self.total_bytes() / 1024.0
    }
}

/// Storage required by the extended mechanism.
///
/// * `ros_size` — reorder structure entries,
/// * `phys_id_bits` — bits of one physical register identifier,
/// * `total_phys_regs` — physical registers across both files (width of each
///   `RwNSx` bit-vector),
/// * `max_pending_branches` — Release Queue depth.
pub fn extended_mechanism_storage(
    ros_size: u64,
    phys_id_bits: u64,
    total_phys_regs: u64,
    max_pending_branches: u64,
) -> StorageEstimate {
    let prid_bits = 3 * ros_size * phys_id_bits;
    let rwc0_bits = 3 * ros_size;
    let release_queue_bits = max_pending_branches * (total_phys_regs + 3 * ros_size);
    StorageEstimate {
        prid_bits,
        rwc0_bits,
        release_queue_bits,
    }
}

/// Storage of the Last-Uses Tables (both classes).
///
/// Each entry holds a reorder-structure identifier, a 2-bit `Kind` field and
/// the `C` bit; `entries` is the number of logical registers per class and
/// `tables` the number of classes (2: integer + FP).
pub fn lus_table_storage(ros_size: u64, entries: u64, tables: u64) -> u64 {
    let rosid_bits = (64 - (ros_size.max(2) - 1).leading_zeros()) as u64;
    let entry_bits = rosid_bits + 2 + 1;
    tables * entries * entry_bits
}

/// The Alpha-21264 example of Section 4.4.
pub fn alpha21264_example() -> StorageEstimate {
    extended_mechanism_storage(80, 8, 80 + 72, 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_example_matches_the_paper() {
        // Paper: "an Alpha 21264 will need about 1.22 KBytes to support the
        // extended mechanism".
        let est = alpha21264_example();
        assert_eq!(est.prid_bits, 3 * 80 * 8);
        assert_eq!(est.rwc0_bits, 240);
        assert_eq!(est.release_queue_bits, 20 * (152 + 240));
        assert!(
            (est.total_kib() - 1.22).abs() < 0.01,
            "total {:.3} KB != 1.22 KB",
            est.total_kib()
        );
    }

    #[test]
    fn lus_tables_cost_on_the_order_of_128_bytes() {
        // Paper: "The int+fp LUs Tables will further add around 128B."
        // With 7-bit ROS identifiers the exact figure is 80 B; padding each
        // entry to a 2-byte word gives the paper's 128 B.
        let bits = lus_table_storage(80, 32, 2);
        let bytes = bits as f64 / 8.0;
        assert!((60.0..=128.0).contains(&bytes), "LUs tables: {bytes} bytes");
        let padded_bytes = 2 * 32 * 2;
        assert_eq!(padded_bytes, 128);
    }

    #[test]
    fn storage_scales_with_every_parameter() {
        let base = extended_mechanism_storage(128, 8, 192, 20).total_bits();
        assert!(extended_mechanism_storage(256, 8, 192, 20).total_bits() > base);
        assert!(extended_mechanism_storage(128, 9, 192, 20).total_bits() > base);
        assert!(extended_mechanism_storage(128, 8, 320, 20).total_bits() > base);
        assert!(extended_mechanism_storage(128, 8, 192, 40).total_bits() > base);
    }
}
