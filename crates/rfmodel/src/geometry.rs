//! Register-file geometries used by the paper's evaluation.

use serde::{Deserialize, Serialize};

/// Geometry of one multiported SRAM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RfGeometry {
    /// Number of entries (registers).
    pub registers: usize,
    /// Read ports.
    pub read_ports: usize,
    /// Write ports.
    pub write_ports: usize,
    /// Word width in bits.
    pub bits: usize,
}

impl RfGeometry {
    /// Total ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.read_ports + self.write_ports
    }

    /// The integer register file of the paper's aggressive 8-way machine:
    /// `Tint = 44` ports (Section 4.4), 64-bit words.
    pub fn int_file(registers: usize) -> Self {
        RfGeometry {
            registers,
            read_ports: 32,
            write_ports: 12,
            bits: 64,
        }
    }

    /// The FP register file: `Tfp = 50` ports, 64-bit words.
    pub fn fp_file(registers: usize) -> Self {
        RfGeometry {
            registers,
            read_ports: 36,
            write_ports: 14,
            bits: 64,
        }
    }

    /// The Last-Uses Table of Section 4.4: 32 entries, 32 read + 24 write
    /// ports (8-way superscalar), 9-bit words.
    pub fn lus_table() -> Self {
        RfGeometry {
            registers: 32,
            read_ports: 32,
            write_ports: 24,
            bits: 9,
        }
    }

    /// Total storage bits of the array.
    pub fn storage_bits(&self) -> usize {
        self.registers * self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_port_counts() {
        assert_eq!(RfGeometry::int_file(64).ports(), 44);
        assert_eq!(RfGeometry::fp_file(72).ports(), 50);
        let lus = RfGeometry::lus_table();
        assert_eq!(lus.ports(), 56);
        assert_eq!(lus.registers, 32);
        assert_eq!(lus.bits, 9);
    }

    #[test]
    fn storage_bits() {
        assert_eq!(RfGeometry::int_file(64).storage_bits(), 64 * 64);
        assert_eq!(RfGeometry::lus_table().storage_bits(), 32 * 9);
    }
}
