//! Energy model (Figure 9.b and the Section 4.4 energy balance).
//!
//! Energy per fully-active cycle is dominated by bitline switching: every
//! port drives a bitline spanning all `R` rows (plus a fixed decoder/driver
//! overhead equivalent to `R_OVERHEAD` rows) for each of the `W` bits:
//!
//! ```text
//! E(R, T, W) = KE · W · T · (R + R_OVERHEAD)        [pJ]
//! ```
//!
//! The coefficients are calibrated so that (a) the LUs Table consumes the
//! paper's 193.2 pJ, and (b) shrinking the register files from 64int + 79fp
//! to 56int + 72fp pays for two LUs Tables (the Section 4.4 energy-neutrality
//! result): the per-register slopes satisfy `8·slope_int + 7·slope_fp ≈
//! 2 × 193.2 pJ`.

use crate::geometry::RfGeometry;
use serde::{Deserialize, Serialize};

/// Energy per bit, per port, per row [pJ].
pub const KE_PJ: f64 = 0.0086;
/// Fixed decoder/driver overhead expressed in equivalent rows.
pub const R_OVERHEAD: f64 = 12.58;

/// Energy of one fully-active access cycle, in picojoules.
pub fn access_energy_pj(geometry: RfGeometry) -> f64 {
    KE_PJ
        * geometry.bits as f64
        * geometry.ports() as f64
        * (geometry.registers as f64 + R_OVERHEAD)
}

/// The Section 4.4 comparison: conventional renaming with larger files versus
/// early release with smaller files plus two LUs Tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBalance {
    /// Energy of the conventional configuration [pJ].
    pub conventional_pj: f64,
    /// Energy of the early-release configuration (including the LUs Tables)
    /// [pJ].
    pub early_release_pj: f64,
}

impl EnergyBalance {
    /// Relative difference (positive = early release costs more).
    pub fn relative_difference(&self) -> f64 {
        (self.early_release_pj - self.conventional_pj) / self.conventional_pj
    }
}

/// Compute the energy balance between a conventional configuration
/// (`conv_int`/`conv_fp` registers) and an early-release configuration
/// (`early_int`/`early_fp` registers plus two LUs Tables).
pub fn energy_balance(
    conv_int: usize,
    conv_fp: usize,
    early_int: usize,
    early_fp: usize,
) -> EnergyBalance {
    let conventional_pj = access_energy_pj(RfGeometry::int_file(conv_int))
        + access_energy_pj(RfGeometry::fp_file(conv_fp));
    let early_release_pj = access_energy_pj(RfGeometry::int_file(early_int))
        + access_energy_pj(RfGeometry::fp_file(early_fp))
        + 2.0 * access_energy_pj(RfGeometry::lus_table());
    EnergyBalance {
        conventional_pj,
        early_release_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lus_table_energy_matches_the_paper_anchor() {
        let e = access_energy_pj(RfGeometry::lus_table());
        assert!(
            (e - 193.2).abs() < 2.0,
            "LUs Table energy {e:.1} pJ != 193.2 pJ"
        );
    }

    #[test]
    fn section_4_4_energy_balance_is_neutral() {
        // Paper: Econv(64int + 79fp) = 3850 pJ vs Eearly(56int + 72fp + 2 LUs
        // Tables) = 3851 pJ.  The calibrated model must make the two sides
        // agree to within ~2 %.
        let balance = energy_balance(64, 79, 56, 72);
        assert!(
            balance.relative_difference().abs() < 0.02,
            "energy balance is not neutral: {balance:?}"
        );
    }

    #[test]
    fn lus_table_is_a_small_fraction_of_a_register_file() {
        let lus = access_energy_pj(RfGeometry::lus_table());
        let smallest = access_energy_pj(RfGeometry::int_file(40));
        let fraction = lus / smallest;
        assert!(
            (0.10..=0.25).contains(&fraction),
            "LUs Table consumes {:.0} % of the smallest file (paper: ~20 %)",
            fraction * 100.0
        );
    }

    #[test]
    fn energy_grows_linearly_with_registers() {
        let e40 = access_energy_pj(RfGeometry::fp_file(40));
        let e80 = access_energy_pj(RfGeometry::fp_file(80));
        let e160 = access_energy_pj(RfGeometry::fp_file(160));
        assert!(e80 > e40 && e160 > e80);
        // Figure 9.b tops out around 4.5–5 nJ at 160 registers.
        assert!(
            (4000.0..=5200.0).contains(&e160),
            "fp file at 160: {e160:.0} pJ"
        );
    }

    #[test]
    fn fp_file_costs_more_than_int_file() {
        assert!(
            access_energy_pj(RfGeometry::fp_file(96)) > access_energy_pj(RfGeometry::int_file(96))
        );
    }
}
