//! A circuit breaker per remote peer: closed → open on consecutive
//! failures → half-open probe after a cooldown → closed again on success.
//!
//! The breaker is what turns "a peer is down" from a per-request penalty
//! (connect timeout × retries × every point) into a single cheap check:
//! once open, the chain skips the peer outright and falls through to the
//! next tier, re-probing with at most one request per cooldown window.
//!
//! State machine:
//!
//! ```text
//!        consecutive failures >= threshold
//! CLOSED ─────────────────────────────────▶ OPEN
//!   ▲                                        │ cooldown elapsed
//!   │ successes >= half_open_successes       ▼
//!   └──────────────────────────────────── HALF-OPEN
//!                (any failure in half-open reopens immediately)
//! ```
//!
//! All transitions are driven by the caller's `allow` / `record_success` /
//! `record_failure` calls — there is no background thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tunables (see [`crate::resolver::ResolverConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// How long an open breaker rejects before allowing a half-open probe.
    pub cooldown: Duration,
    /// Consecutive half-open successes required to close again.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(1000),
            half_open_successes: 1,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen { successes: u32, probing: bool },
}

/// One peer's breaker.  Thread-safe; every call is a short critical
/// section.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
    /// Closed→open transitions since construction (monotonic).
    trips: AtomicU64,
}

/// A point-in-time view of a breaker, for counters and `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// `"closed"`, `"open"` or `"half-open"`.
    pub state: &'static str,
    /// Closed→open transitions so far.
    pub trips: u64,
}

impl CircuitBreaker {
    /// A fresh (closed) breaker.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
            trips: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// May a request be sent to this peer right now?
    ///
    /// Open breakers start rejecting immediately; once the cooldown has
    /// elapsed the *first* caller is let through as the half-open probe
    /// (concurrent callers keep being rejected until the probe reports).
    pub fn allow(&self) -> bool {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => true,
            State::Open { since } => {
                if since.elapsed() >= self.config.cooldown {
                    *state = State::HalfOpen {
                        successes: 0,
                        probing: true,
                    };
                    true
                } else {
                    false
                }
            }
            State::HalfOpen { probing, .. } => {
                if probing {
                    false // one probe at a time
                } else {
                    if let State::HalfOpen { probing, .. } = &mut *state {
                        *probing = true;
                    }
                    true
                }
            }
        }
    }

    /// Report a successful request.
    pub fn record_success(&self) {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => {
                *state = State::Closed {
                    consecutive_failures: 0,
                }
            }
            State::HalfOpen { successes, .. } => {
                let successes = successes + 1;
                if successes >= self.config.half_open_successes {
                    *state = State::Closed {
                        consecutive_failures: 0,
                    };
                } else {
                    *state = State::HalfOpen {
                        successes,
                        probing: false,
                    };
                }
            }
            // A success racing an open breaker (request sent before the
            // trip): leave the breaker open — the cooldown will probe.
            State::Open { .. } => {}
        }
    }

    /// Report a failed request.  Returns `true` when this failure tripped
    /// the breaker closed→open (callers count trips).
    pub fn record_failure(&self) -> bool {
        let mut state = self.lock();
        match *state {
            State::Closed {
                consecutive_failures,
            } => {
                let consecutive_failures = consecutive_failures + 1;
                if consecutive_failures >= self.config.threshold {
                    *state = State::Open {
                        since: Instant::now(),
                    };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    *state = State::Closed {
                        consecutive_failures,
                    };
                    false
                }
            }
            // A failed half-open probe reopens at once — no free retries.
            State::HalfOpen { .. } => {
                *state = State::Open {
                    since: Instant::now(),
                };
                false
            }
            State::Open { .. } => false,
        }
    }

    /// Current state + trip count.
    pub fn snapshot(&self) -> BreakerSnapshot {
        let state = match *self.lock() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half-open",
        };
        BreakerSnapshot {
            state,
            trips: self.trips.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
            half_open_successes: 1,
        })
    }

    #[test]
    fn full_lifecycle_closed_open_half_open_closed() {
        let breaker = breaker(3, 30);
        assert_eq!(breaker.snapshot().state, "closed");
        assert!(breaker.allow());

        assert!(!breaker.record_failure());
        assert!(!breaker.record_failure());
        assert!(breaker.record_failure(), "third failure trips");
        assert_eq!(breaker.snapshot().state, "open");
        assert_eq!(breaker.snapshot().trips, 1);
        assert!(!breaker.allow(), "open rejects before the cooldown");

        std::thread::sleep(Duration::from_millis(40));
        assert!(breaker.allow(), "cooldown elapsed: half-open probe");
        assert_eq!(breaker.snapshot().state, "half-open");
        assert!(!breaker.allow(), "one probe at a time");

        breaker.record_success();
        assert_eq!(breaker.snapshot().state, "closed");
        assert!(breaker.allow());
    }

    #[test]
    fn failed_probe_reopens_without_counting_a_new_trip() {
        let breaker = breaker(1, 10);
        breaker.record_failure();
        assert_eq!(breaker.snapshot().state, "open");
        std::thread::sleep(Duration::from_millis(20));
        assert!(breaker.allow());
        breaker.record_failure();
        assert_eq!(breaker.snapshot().state, "open", "failed probe reopens");
        assert_eq!(breaker.snapshot().trips, 1, "re-opening is not a new trip");
    }

    #[test]
    fn successes_reset_the_failure_streak() {
        let breaker = breaker(3, 10);
        breaker.record_failure();
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(
            breaker.snapshot().state,
            "closed",
            "streak restarted after the success"
        );
    }

    #[test]
    fn multi_success_half_open_close() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_millis(10),
            half_open_successes: 2,
        });
        breaker.record_failure();
        std::thread::sleep(Duration::from_millis(20));
        assert!(breaker.allow());
        breaker.record_success();
        assert_eq!(breaker.snapshot().state, "half-open", "needs 2 successes");
        assert!(breaker.allow(), "probe slot freed by the success");
        breaker.record_success();
        assert_eq!(breaker.snapshot().state, "closed");
    }
}
