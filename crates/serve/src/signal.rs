//! SIGINT/SIGTERM → shutdown flag, without the `libc` crate.
//!
//! `std` already links the platform C library on Unix, so declaring
//! `signal(2)` ourselves is enough; the handler only stores to an atomic
//! (async-signal-safe).  The accept loop polls [`received`] between
//! accepts, so delivery latency is one poll interval.

use std::sync::atomic::{AtomicBool, Ordering};

static RECEIVED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::RECEIVED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn handle(_signum: i32) {
        RECEIVED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, handle);
            signal(SIGTERM, handle);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent).  Call once from the
/// binary before serving; library users (tests) normally skip this and
/// drive shutdown through the server's flag instead.
pub fn install() {
    imp::install();
}

/// True once a termination signal has been received.
pub fn received() -> bool {
    RECEIVED.load(Ordering::SeqCst)
}
