//! Deterministic fault injection: a `std`-only TCP proxy that sits between
//! a resolver chain and an upstream serve node and misbehaves **on
//! schedule**.
//!
//! Chaos testing is only convincing when it is reproducible: a fault that
//! fires "sometimes" proves nothing when the test passes.  The proxy
//! therefore draws each connection's fault from a [`FaultSchedule`] that is
//! a pure function of (spec, connection index) — a cyclic script or a
//! seeded pick — so a fixed spec yields the exact same fault sequence on
//! every run, and tests can assert *specific* breaker transitions instead
//! of sleeping and hoping.
//!
//! The fault menu covers every way a peer has ever ruined someone's day:
//!
//! | fault        | what the client sees                                   |
//! |--------------|--------------------------------------------------------|
//! | `pass`       | the upstream's bytes, verbatim                          |
//! | `refuse`     | connection accepted, then closed before any bytes      |
//! | `stall`      | an open socket that never answers                      |
//! | `drop`       | the first half of the raw response, then EOF           |
//! | `http500`    | a fabricated `500` (upstream never contacted)          |
//! | `truncate`   | a correct head whose body stops halfway                |
//! | `garbage`    | correct HTTP framing around an unparseable JSON body   |
//! | `slowdrip`   | the response at one byte per interval                  |
//!
//! Everything is bounded: stalls and drips give up after [`FAULT_CAP`] or
//! on proxy shutdown, so a wedged test run cannot outlive its harness.

use crate::backoff::XorShift64;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on how long a stall or slow-drip holds a connection.
pub const FAULT_CAP: Duration = Duration::from_secs(30);

/// Poll interval of the accept loop and of shutdown-aware sleeps.
const POLL: Duration = Duration::from_millis(10);

/// Milliseconds between slow-drip bytes.
const DRIP_INTERVAL: Duration = Duration::from_millis(50);

/// One way to misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward faithfully (the control arm of every chaos experiment).
    Pass,
    /// Accept, then close before reading or writing anything.
    Refuse,
    /// Read the request, then hold the socket open without answering.
    Stall,
    /// Forward the request, relay only the first half of the raw response
    /// bytes, then close (may cut mid-head or mid-body).
    DropMidBody,
    /// Answer a fabricated `500` without contacting the upstream.
    Http500,
    /// Relay the full response head (with its original `Content-Length`)
    /// but stop the body halfway — a lying length.
    TruncatedJson,
    /// Correct HTTP framing around a body that is not valid JSON.
    GarbageJson,
    /// Relay the full response at one byte per interval until the client
    /// gives up (its deadline) or [`FAULT_CAP`] expires.
    SlowDrip,
}

/// Every fault name, in [`Fault::ALL`] order, for CLI errors.
pub const FAULT_NAMES: [&str; 8] = [
    "pass", "refuse", "stall", "drop", "http500", "truncate", "garbage", "slowdrip",
];

impl Fault {
    /// Every fault kind, in the order of [`FAULT_NAMES`].
    pub const ALL: [Fault; 8] = [
        Fault::Pass,
        Fault::Refuse,
        Fault::Stall,
        Fault::DropMidBody,
        Fault::Http500,
        Fault::TruncatedJson,
        Fault::GarbageJson,
        Fault::SlowDrip,
    ];

    /// The fault's stable name.
    pub fn name(self) -> &'static str {
        FAULT_NAMES[self.index()]
    }

    /// The fault's index in [`Fault::ALL`] (counter slot).
    pub fn index(self) -> usize {
        Fault::ALL
            .iter()
            .position(|f| *f == self)
            .expect("every fault is in ALL")
    }

    /// Parse one fault name.
    pub fn parse(name: &str) -> Result<Fault, String> {
        FAULT_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| Fault::ALL[i])
            .ok_or_else(|| format!("unknown fault '{name}' (known: {})", FAULT_NAMES.join(" ")))
    }
}

/// Which fault each connection gets — a pure function of the connection
/// index, so a given spec misbehaves identically on every run.
#[derive(Debug, Clone)]
pub enum FaultSchedule {
    /// Connection `i` gets `script[i % len]`.
    Script(Vec<Fault>),
    /// Connection `i` gets a seeded pseudo-random pick from the menu
    /// (deterministic per index — concurrent connections cannot reorder
    /// the draws).
    Seeded {
        /// PRNG seed.
        seed: u64,
        /// Faults to pick among.
        menu: Vec<Fault>,
    },
}

impl FaultSchedule {
    /// Parse a schedule spec:
    ///
    /// * `"refuse,pass,stall"` — a cyclic script;
    /// * `"seed:42:refuse,stall,drop"` — seeded picks from a menu;
    /// * `"seed:42"` — seeded picks from the full menu.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parse_list = |list: &str| -> Result<Vec<Fault>, String> {
            let faults: Result<Vec<Fault>, String> = list
                .split(',')
                .map(|name| Fault::parse(name.trim()))
                .collect();
            let faults = faults?;
            if faults.is_empty() {
                return Err("empty fault list".to_string());
            }
            Ok(faults)
        };
        if let Some(rest) = spec.strip_prefix("seed:") {
            let (seed, menu) = match rest.split_once(':') {
                Some((seed, list)) => (seed, parse_list(list)?),
                None => (rest, Fault::ALL.to_vec()),
            };
            let seed: u64 = seed
                .trim()
                .parse()
                .map_err(|_| format!("invalid seed '{seed}'"))?;
            Ok(FaultSchedule::Seeded { seed, menu })
        } else {
            Ok(FaultSchedule::Script(parse_list(spec)?))
        }
    }

    /// The fault for connection number `connection` (0-based).
    pub fn pick(&self, connection: u64) -> Fault {
        match self {
            FaultSchedule::Script(script) => script[(connection as usize) % script.len()],
            FaultSchedule::Seeded { seed, menu } => {
                // Mix the index through the full PRNG so neighbouring
                // connections draw independently.
                let mut rng =
                    XorShift64::new(seed ^ (connection.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
                menu[rng.below(menu.len() as u64) as usize]
            }
        }
    }
}

/// A running fault proxy: listener address, per-fault counters, shutdown.
pub struct FaultProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    counts: Arc<[AtomicU64; 8]>,
    handle: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy on an ephemeral local port, forwarding to `upstream`
    /// under `schedule`.
    pub fn start(upstream: String, schedule: FaultSchedule) -> std::io::Result<FaultProxy> {
        Self::start_on("127.0.0.1:0", upstream, schedule)
    }

    /// Start a proxy on an explicit listen address.
    pub fn start_on(
        listen: &str,
        upstream: String,
        schedule: FaultSchedule,
    ) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let counts: Arc<[AtomicU64; 8]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));

        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let counts = Arc::clone(&counts);
            std::thread::spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let index = connections.fetch_add(1, Ordering::SeqCst);
                            let fault = schedule.pick(index);
                            counts[fault.index()].fetch_add(1, Ordering::Relaxed);
                            let upstream = upstream.clone();
                            let shutdown = Arc::clone(&shutdown);
                            workers.push(std::thread::spawn(move || {
                                serve_faulty(stream, &upstream, fault, &shutdown);
                            }));
                        }
                        Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => break,
                    }
                    workers.retain(|w| !w.is_finished());
                }
                for worker in workers {
                    let _ = worker.join();
                }
            })
        };

        Ok(FaultProxy {
            addr,
            shutdown,
            connections,
            counts,
            handle: Some(handle),
        })
    }

    /// The proxy's listen address (point `--peer` here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Per-fault connection counts, `(name, count)` in [`Fault::ALL`] order.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        Fault::ALL
            .iter()
            .map(|fault| {
                (
                    fault.name(),
                    self.counts[fault.index()].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Stop accepting and join every in-flight fault worker (stalls and
    /// drips observe the shutdown flag and exit promptly).
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Sleep in poll-sized steps until `total` elapses or shutdown is raised.
fn interruptible_sleep(total: Duration, shutdown: &AtomicBool) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(POLL.min(deadline.saturating_duration_since(Instant::now())));
    }
}

/// Read one `Connection: close` HTTP request (head + `Content-Length`
/// body) from the client.  Returns the raw bytes, or `None` on EOF /
/// error / malformed input — the proxy then just closes, which is itself
/// a fine fault from the client's point of view.
fn read_raw_request(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut buffer = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(position) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
            break position;
        }
        if buffer.len() > 64 * 1024 {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(read) => buffer.extend_from_slice(&chunk[..read]),
        }
    };
    let content_length = std::str::from_utf8(&buffer[..head_end])
        .ok()?
        .split("\r\n")
        .filter_map(|line| line.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, value)| value.trim().parse::<usize>().ok())
        .unwrap_or(0);
    let total = head_end + 4 + content_length.min(8 * 1024 * 1024);
    while buffer.len() < total {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(read) => buffer.extend_from_slice(&chunk[..read]),
        }
    }
    Some(buffer)
}

/// Forward `request` to the upstream and read its whole response
/// (`Connection: close` ⇒ EOF-delimited).
fn fetch_upstream(upstream: &str, request: &[u8]) -> Option<Vec<u8>> {
    let mut stream = TcpStream::connect(upstream).ok()?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(20)));
    stream.write_all(request).ok()?;
    let _ = stream.flush();
    let mut response = Vec::with_capacity(4096);
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(read) => response.extend_from_slice(&chunk[..read]),
            Err(_) => return None,
        }
    }
    Some(response)
}

/// Handle one proxied connection under its assigned fault.
fn serve_faulty(mut client: TcpStream, upstream: &str, fault: Fault, shutdown: &AtomicBool) {
    let _ = client.set_nodelay(true);
    match fault {
        Fault::Refuse => {
            // Close before reading anything: the client sees an
            // immediate EOF/reset where a response head should be.
        }
        Fault::Stall => {
            let _ = read_raw_request(&mut client);
            interruptible_sleep(FAULT_CAP, shutdown);
        }
        Fault::Http500 => {
            let _ = read_raw_request(&mut client);
            let body = r#"{"error":"injected fault"}"#;
            let head = format!(
                "HTTP/1.1 500 Internal Server Error\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            let _ = client.write_all(head.as_bytes());
            let _ = client.write_all(body.as_bytes());
        }
        Fault::GarbageJson => {
            let _ = read_raw_request(&mut client);
            let body = r#"{"results":[{"point":@@@ not json @@@"#;
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            let _ = client.write_all(head.as_bytes());
            let _ = client.write_all(body.as_bytes());
        }
        Fault::Pass | Fault::DropMidBody | Fault::TruncatedJson | Fault::SlowDrip => {
            let Some(request) = read_raw_request(&mut client) else {
                return;
            };
            let Some(response) = fetch_upstream(upstream, &request) else {
                return; // upstream gone: closing is fault enough
            };
            match fault {
                Fault::Pass => {
                    let _ = client.write_all(&response);
                }
                Fault::DropMidBody => {
                    let _ = client.write_all(&response[..response.len() / 2]);
                }
                Fault::TruncatedJson => {
                    // Full head (its Content-Length now lies), half body.
                    let head_end = response
                        .windows(4)
                        .position(|w| w == b"\r\n\r\n")
                        .map(|p| p + 4)
                        .unwrap_or(0);
                    let body_len = response.len() - head_end;
                    let keep = head_end + body_len / 2;
                    let _ = client.write_all(&response[..keep]);
                }
                Fault::SlowDrip => {
                    let deadline = Instant::now() + FAULT_CAP;
                    for byte in &response {
                        if shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                            break;
                        }
                        if client.write_all(std::slice::from_ref(byte)).is_err() {
                            break;
                        }
                        let _ = client.flush();
                        interruptible_sleep(DRIP_INTERVAL, shutdown);
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    let _ = client.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_names_round_trip() {
        for fault in Fault::ALL {
            assert_eq!(Fault::parse(fault.name()).unwrap(), fault);
        }
        let error = Fault::parse("gremlins").unwrap_err();
        for name in FAULT_NAMES {
            assert!(error.contains(name), "{error}");
        }
    }

    #[test]
    fn script_schedule_cycles() {
        let schedule = FaultSchedule::parse("refuse,pass").unwrap();
        assert_eq!(schedule.pick(0), Fault::Refuse);
        assert_eq!(schedule.pick(1), Fault::Pass);
        assert_eq!(schedule.pick(2), Fault::Refuse);
        assert_eq!(schedule.pick(101), Fault::Pass);
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_menu_bound() {
        let a = FaultSchedule::parse("seed:42:refuse,stall,drop").unwrap();
        let b = FaultSchedule::parse("seed:42:refuse,stall,drop").unwrap();
        let menu = [Fault::Refuse, Fault::Stall, Fault::DropMidBody];
        for connection in 0..64 {
            let fault = a.pick(connection);
            assert_eq!(fault, b.pick(connection), "same seed, same draw");
            assert!(menu.contains(&fault));
        }
        // A bare seed uses the full menu.
        let full = FaultSchedule::parse("seed:7").unwrap();
        let _ = full.pick(0);
        // Different seeds diverge somewhere in the first few draws.
        let other = FaultSchedule::parse("seed:43:refuse,stall,drop").unwrap();
        assert!(
            (0..64).any(|i| a.pick(i) != other.pick(i)),
            "different seeds should diverge"
        );
    }

    #[test]
    fn schedule_parse_rejects_bad_specs() {
        assert!(FaultSchedule::parse("").is_err());
        assert!(FaultSchedule::parse("refuse,bogus").is_err());
        assert!(FaultSchedule::parse("seed:notanumber:pass").is_err());
    }

    #[test]
    fn pass_fault_relays_verbatim_and_counts() {
        // A tiny upstream answering a fixed response.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = upstream.accept() {
                let mut sink = [0u8; 4096];
                let _ = stream.read(&mut sink);
                let _ = stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody");
            }
        });
        let proxy = FaultProxy::start(
            upstream_addr.to_string(),
            FaultSchedule::Script(vec![Fault::Pass]),
        )
        .unwrap();
        let reply = crate::client::post_json(
            &proxy.addr().to_string(),
            "/x",
            "{}",
            Duration::from_secs(2),
        )
        .unwrap();
        assert_eq!(reply.body, "body");
        assert_eq!(proxy.connections(), 1);
        assert_eq!(proxy.counts()[0], ("pass", 1));
        proxy.stop();
    }

    #[test]
    fn refuse_and_500_faults_fail_the_client() {
        let proxy = FaultProxy::start(
            "127.0.0.1:1".to_string(), // never contacted by these faults
            FaultSchedule::Script(vec![Fault::Refuse, Fault::Http500]),
        )
        .unwrap();
        let addr = proxy.addr().to_string();
        match crate::client::post_json(&addr, "/x", "{}", Duration::from_secs(2)) {
            Err(crate::client::ClientError::Malformed(_))
            | Err(crate::client::ClientError::Io(_)) => {}
            other => panic!("refuse: expected Malformed/Io, got {other:?}"),
        }
        match crate::client::post_json(&addr, "/x", "{}", Duration::from_secs(2)) {
            Err(crate::client::ClientError::Status(500)) => {}
            other => panic!("http500: expected Status(500), got {other:?}"),
        }
        proxy.stop();
    }
}
