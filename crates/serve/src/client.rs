//! A minimal deadline-bounded HTTP/1.1 client for peer-to-peer hops.
//!
//! The peer tier of the resolver chain speaks the service's own
//! `POST /points` wire format, so the client here is the mirror image of
//! [`crate::http`]: one request per connection, `Content-Length` framing,
//! `Connection: close`.  Every phase — connect, write, read — is charged
//! against **one overall deadline** (the same re-armed-timeout machinery as
//! [`crate::http::read_request_timeout`]): a stalled, slow-dripping or
//! half-dead peer costs at most the deadline, never a worker thread.

use crate::http::read_before_deadline;
use std::io::Write;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Cap on a peer response body (mirrors the server's `MAX_BODY_BYTES`).
const MAX_RESPONSE_BYTES: usize = 4 * 1024 * 1024;

/// One parsed peer response.
#[derive(Debug)]
pub struct ClientReply {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientReply {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }
}

/// Why a peer hop failed.  Every variant is retryable from the chain's
/// point of view — the distinction exists for counters and messages.
#[derive(Debug)]
pub enum ClientError {
    /// The peer could not be reached (refused, unroutable, bad address).
    Connect(String),
    /// The overall deadline expired (connect, write or read phase).
    Deadline,
    /// The connection died or misbehaved mid-exchange.
    Io(String),
    /// The response could not be parsed as HTTP (garbage, truncation).
    Malformed(String),
    /// The peer answered with a non-200 status.
    Status(u16),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(message) => write!(f, "connect: {message}"),
            ClientError::Deadline => write!(f, "deadline exceeded"),
            ClientError::Io(message) => write!(f, "io: {message}"),
            ClientError::Malformed(message) => write!(f, "malformed response: {message}"),
            ClientError::Status(status) => write!(f, "peer answered {status}"),
        }
    }
}

fn io_error(error: std::io::Error) -> ClientError {
    match error.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ClientError::Deadline,
        _ => ClientError::Io(error.to_string()),
    }
}

/// Resolve `addr` ("host:port") to its first socket address.
fn resolve(addr: &str) -> Result<SocketAddr, ClientError> {
    addr.to_socket_addrs()
        .map_err(|error| ClientError::Connect(format!("cannot resolve '{addr}': {error}")))?
        .next()
        .ok_or_else(|| ClientError::Connect(format!("'{addr}' resolves to no address")))
}

/// `POST` a JSON body to `addr` under one overall `deadline`, sending the
/// remaining budget to the peer as `X-Deadline-Ms` so it can shed work it
/// cannot finish in time.
pub fn post_json(
    addr: &str,
    path: &str,
    body: &str,
    deadline: Duration,
) -> Result<ClientReply, ClientError> {
    let expires = Instant::now() + deadline;
    let socket_addr = resolve(addr)?;
    let remaining = expires.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ClientError::Deadline);
    }
    let mut stream = TcpStream::connect_timeout(&socket_addr, remaining).map_err(|error| {
        if error.kind() == std::io::ErrorKind::TimedOut {
            ClientError::Deadline
        } else {
            ClientError::Connect(error.to_string())
        }
    })?;
    let _ = stream.set_nodelay(true);

    let remaining = expires.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ClientError::Deadline);
    }
    let _ = stream.set_write_timeout(Some(remaining));
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nX-Deadline-Ms: {}\r\nConnection: close\r\n\r\n",
        body.len(),
        remaining.as_millis()
    );
    stream.write_all(head.as_bytes()).map_err(io_error)?;
    stream.write_all(body.as_bytes()).map_err(io_error)?;
    stream.flush().map_err(io_error)?;

    read_response(&mut stream, expires)
}

/// Read and parse one `Connection: close` response before `expires`.
fn read_response(stream: &mut TcpStream, expires: Instant) -> Result<ClientReply, ClientError> {
    let mut buffer: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 8192];

    // Head: accumulate until the blank line.
    let head_end = loop {
        if let Some(position) = buffer.windows(4).position(|window| window == b"\r\n\r\n") {
            break position;
        }
        if buffer.len() > MAX_RESPONSE_BYTES {
            return Err(ClientError::Malformed(
                "response head too large".to_string(),
            ));
        }
        match read_before_deadline(stream, &mut chunk, expires).map_err(read_error)? {
            0 => {
                return Err(ClientError::Malformed(
                    "connection closed before the response head ended".to_string(),
                ))
            }
            read => buffer.extend_from_slice(&chunk[..read]),
        }
    };

    let head = std::str::from_utf8(&buffer[..head_end])
        .map_err(|_| ClientError::Malformed("response head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| ClientError::Malformed("empty response".to_string()))?;
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("bad status line '{status_line}'")))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_string()))
        .collect();

    let content_length: usize = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .and_then(|(_, value)| value.parse().ok())
        .ok_or_else(|| ClientError::Malformed("missing Content-Length".to_string()))?;
    if content_length > MAX_RESPONSE_BYTES {
        return Err(ClientError::Malformed(format!(
            "response body claims {content_length} bytes"
        )));
    }

    let mut body: Vec<u8> = buffer[head_end + 4..].to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        match read_before_deadline(stream, &mut chunk[..want], expires).map_err(read_error)? {
            0 => {
                // The peer closed before delivering what Content-Length
                // promised — a truncated body, not a short response.
                return Err(ClientError::Malformed(format!(
                    "body truncated at {} of {content_length} bytes",
                    body.len()
                )));
            }
            read => body.extend_from_slice(&chunk[..read]),
        }
    }

    let body = String::from_utf8(body)
        .map_err(|_| ClientError::Malformed("response body is not UTF-8".to_string()))?;
    if status != 200 {
        return Err(ClientError::Status(status));
    }
    Ok(ClientReply {
        status,
        headers,
        body,
    })
}

fn read_error(error: crate::http::ReadError) -> ClientError {
    match error {
        crate::http::ReadError::Io(io) => io_error(io),
        crate::http::ReadError::BadRequest(message) | crate::http::ReadError::TooLarge(message) => {
            ClientError::Malformed(message)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    /// A one-shot server thread answering with fixed raw bytes.
    fn one_shot(raw: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let mut sink = [0u8; 4096];
                let _ = stream.read(&mut sink); // consume the request head
                let _ = stream.write_all(raw);
            }
        });
        addr
    }

    #[test]
    fn parses_a_well_formed_response() {
        let addr = one_shot(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nX-Tag: yes\r\n\r\nok");
        let reply = post_json(&addr.to_string(), "/x", "{}", Duration::from_secs(2)).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, "ok");
        assert_eq!(reply.header("x-tag"), Some("yes"));
    }

    #[test]
    fn non_200_is_a_status_error() {
        let addr = one_shot(b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n");
        match post_json(&addr.to_string(), "/x", "{}", Duration::from_secs(2)) {
            Err(ClientError::Status(500)) => {}
            other => panic!("expected Status(500), got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_malformed() {
        let addr = one_shot(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort");
        match post_json(&addr.to_string(), "/x", "{}", Duration::from_secs(2)) {
            Err(ClientError::Malformed(message)) => {
                assert!(message.contains("truncated"), "{message}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_malformed() {
        let addr = one_shot(b"\x00\xffnot http at all\r\n\r\n");
        match post_json(&addr.to_string(), "/x", "{}", Duration::from_secs(2)) {
            Err(ClientError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn refused_connection_is_a_connect_error() {
        // Bind-then-drop: the port is very unlikely to be rebound between
        // drop and connect.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        match post_json(&addr.to_string(), "/x", "{}", Duration::from_millis(500)) {
            Err(ClientError::Connect(_)) | Err(ClientError::Deadline) => {}
            other => panic!("expected Connect/Deadline, got {other:?}"),
        }
    }

    #[test]
    fn stalled_peer_hits_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                // Hold the socket open without answering.
                std::thread::sleep(Duration::from_millis(600));
                drop(stream);
            }
        });
        let start = Instant::now();
        match post_json(&addr.to_string(), "/x", "{}", Duration::from_millis(150)) {
            Err(ClientError::Deadline) => {}
            other => panic!("expected Deadline, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "the deadline must bound the stall"
        );
    }
}
