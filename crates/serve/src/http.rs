//! A minimal HTTP/1.1 request parser and response writer over
//! `std::net::TcpStream` — just enough protocol for a JSON service: one
//! request per connection (`Connection: close`), `Content-Length` bodies,
//! bounded header and body sizes, read timeouts against stuck peers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Overall deadline for reading one request: a peer that has not delivered
/// the full head and body within this long forfeits it.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, ReadError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ReadError::BadRequest("request body is not valid UTF-8".to_string()))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Malformed request (maps to `400`).
    BadRequest(String),
    /// Head or body over the configured limits (maps to `413`).
    TooLarge(String),
    /// The connection died or timed out; nothing can be sent back.
    Io(std::io::Error),
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    read_request_timeout(stream, READ_TIMEOUT)
}

/// [`read_request`] with an explicit overall timeout (the backpressure path
/// drains rejected requests on a much shorter leash).
///
/// The timeout is a **total deadline for the whole request**, re-armed
/// before every read with the time remaining — not a per-read stall limit.
/// A slow-loris peer trickling one byte per read would otherwise hold a
/// worker for as long as it liked while each individual read stayed under
/// the limit.
pub fn read_request_timeout(
    stream: &mut TcpStream,
    timeout: Duration,
) -> Result<Request, ReadError> {
    let deadline = Instant::now() + timeout;

    // Accumulate until the blank line that ends the head.
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(position) = find_head_end(&buffer) {
            break position;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        match read_before_deadline(stream, &mut chunk, deadline)? {
            0 => {
                return Err(ReadError::BadRequest(
                    "connection closed before the request head ended".to_string(),
                ))
            }
            read => buffer.extend_from_slice(&chunk[..read]),
        }
    };

    let head = std::str::from_utf8(&buffer[..head_end])
        .map_err(|_| ReadError::BadRequest("request head is not valid UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::BadRequest("empty request".to_string()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing method".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol version '{version}'"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::BadRequest(format!("malformed header line '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // `Expect: 100-continue` clients (curl beyond 1 KiB bodies) wait for
    // the interim response before transmitting the body; answer it so they
    // do not stall out their expect timeout.
    let expects_continue = headers
        .iter()
        .any(|(name, value)| name == "expect" && value.eq_ignore_ascii_case("100-continue"));
    if expects_continue {
        stream
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .map_err(ReadError::Io)?;
    }

    // Body: whatever of it we already buffered, then the remainder.
    let mut body: Vec<u8> = buffer[head_end + 4..].to_vec();
    let content_length = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map(|(_, value)| {
            value
                .parse::<usize>()
                .map_err(|_| ReadError::BadRequest(format!("invalid Content-Length '{value}'")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(format!(
            "request body exceeds {MAX_BODY_BYTES} bytes"
        )));
    }
    body.truncate(content_length);
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        match read_before_deadline(stream, &mut chunk[..want], deadline)? {
            0 => {
                return Err(ReadError::BadRequest(
                    "connection closed before the request body ended".to_string(),
                ))
            }
            read => body.extend_from_slice(&chunk[..read]),
        }
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// One read with the socket timeout re-armed to the time left before
/// `deadline`; an expired deadline is a timeout error.  Shared with the
/// peer client ([`crate::client`]), which enforces its `X-Deadline-Ms`
/// budget with exactly this machinery.
pub(crate) fn read_before_deadline(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
) -> Result<usize, ReadError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ReadError::Io(std::io::Error::from(
            std::io::ErrorKind::TimedOut,
        )));
    }
    let _ = stream.set_read_timeout(Some(remaining));
    stream.read(chunk).map_err(ReadError::Io)
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|window| window == b"\r\n\r\n")
}

/// Cap on bytes [`drain_to_eof`] will discard.
const MAX_DRAIN_BYTES: usize = 8 * 1024 * 1024;

/// Read and discard the peer's remaining input until EOF, the byte cap or
/// the deadline — whichever comes first.  Used before closing a connection
/// whose request was answered without being fully read, where unread data
/// would turn the close into a reset that can discard the response.
pub fn drain_to_eof(stream: &mut TcpStream, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    let mut sink = [0u8; 8192];
    let mut drained = 0usize;
    while drained < MAX_DRAIN_BYTES {
        match read_before_deadline(stream, &mut sink, deadline) {
            Ok(0) | Err(_) => return,
            Ok(read) => drained += read,
        }
    }
}

/// One response to write back.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON in this service).
    pub body: String,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            headers: Vec::new(),
        }
    }

    /// A JSON error envelope (`{"error": "..."}`).
    pub fn error(status: u16, message: &str) -> Self {
        let envelope = serde::value::Value::Map(vec![(
            "error".to_string(),
            serde::value::Value::Str(message.to_string()),
        )]);
        Self::json(status, envelope.canonical())
    }

    /// Attach one extra header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }
}

/// The reason phrase for the status codes this service uses.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize and send one response.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_text(response.status),
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn error_responses_are_json_envelopes() {
        let response = Response::error(400, "nope");
        assert_eq!(response.status, 400);
        assert_eq!(response.body, "{\"error\":\"nope\"}");
        assert_eq!(status_text(503), "Service Unavailable");
    }
}
