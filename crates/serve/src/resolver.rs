//! The fault-tolerant tiered resolver chain.
//!
//! Every point the service resolves walks a chain of tiers, cheapest
//! first, and **degrades to the next tier on any failure** — the last tier
//! is local simulation, which is always available, so results are produced
//! even with the whole fleet gone:
//!
//! 1. **in-memory LRU** — bounded, per-process, canonical-key addressed;
//! 2. **on-disk [`PointCache`]** — shared with `earlyreg-exp`;
//! 3. **remote peers** — other serve nodes speaking the existing
//!    `POST /points` wire format, each hop bounded by a per-point deadline
//!    (sent as `X-Deadline-Ms`, enforced client-side), retried with capped
//!    exponential backoff + seeded jitter, and guarded by a per-peer
//!    [`CircuitBreaker`];
//! 4. **local compute** — the simulator itself.
//!
//! Correctness invariant: **results are bit-identical to a cold local run
//! no matter which tier answered.**  The memory/disk tiers are
//! content-addressed by the full canonical cache key.  The peer tier is
//! gated by [`peer_eligible`] (the peer derives the machine config from
//! the default Table 2 scenario, so scenario-overridden points skip the
//! peer hop) and double-checked by the `X-Point-Digest` response header:
//! a peer built from different code (different `CACHE_VERSION`, workload
//! generators, or config encoding) computes a different digest and is
//! treated as a failed hop, never as an answer.
//!
//! [`PointCache`]: earlyreg_experiments::PointCache

use crate::backoff::Backoff;
use crate::breaker::{BreakerConfig, BreakerSnapshot, CircuitBreaker};
use crate::client::{self, ClientError};
use earlyreg_experiments::engine::{PlanContext, PlannedPoint};
use earlyreg_experiments::Scenario;
use earlyreg_sim::SimStats;
use earlyreg_workloads::Scale;
use serde::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Every key `--resolver-config` accepts, for self-diagnosing errors
/// (mirrors the `SCENARIO_KEYS` pattern in `crates/experiments`).
pub const RESOLVER_KEYS: [&str; 9] = [
    "lru_capacity",
    "deadline_ms",
    "retries",
    "backoff_base_ms",
    "backoff_cap_ms",
    "jitter_seed",
    "breaker_threshold",
    "breaker_cooldown_ms",
    "breaker_half_open",
];

/// Tunables of the resolver chain (`--resolver-config key=value[,...]`).
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Peer addresses (`host:port`), tried in digest-sharded order
    /// (`--peer`, repeatable; empty disables the remote tier).
    pub peers: Vec<String>,
    /// Entries held by the in-memory LRU tier (`0` disables it).
    pub lru_capacity: usize,
    /// Overall per-hop deadline (connect + write + read) in milliseconds;
    /// also sent to the peer as `X-Deadline-Ms`.
    pub deadline_ms: u64,
    /// Retries per peer beyond the first attempt.
    pub retries: u32,
    /// Backoff base delay in milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff delay cap in milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the deterministic backoff jitter (mixed with each point's
    /// digest so concurrent points do not retry in lockstep).
    pub jitter_seed: u64,
    /// Consecutive failures that trip a peer's breaker open.
    pub breaker_threshold: u32,
    /// Milliseconds an open breaker rejects before half-open probing.
    pub breaker_cooldown_ms: u64,
    /// Consecutive half-open successes required to close the breaker.
    pub breaker_half_open: u32,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            peers: Vec::new(),
            lru_capacity: 2048,
            deadline_ms: 2000,
            retries: 1,
            backoff_base_ms: 10,
            backoff_cap_ms: 250,
            jitter_seed: 0x5eed,
            breaker_threshold: 3,
            breaker_cooldown_ms: 1000,
            breaker_half_open: 1,
        }
    }
}

impl ResolverConfig {
    /// Apply one `key=value` assignment (the `--resolver-config` format;
    /// unknown keys fail with the accepted list enumerated).
    pub fn apply(&mut self, assignment: &str) -> Result<(), String> {
        let (key, value) = assignment
            .split_once('=')
            .ok_or_else(|| format!("'{assignment}' is not a key=value assignment"))?;
        let (key, value) = (key.trim(), value.trim());
        let parse_u64 = |value: &str| -> Result<u64, String> {
            value
                .parse()
                .map_err(|_| format!("'{value}' is not a non-negative integer (key '{key}')"))
        };
        match key {
            "lru_capacity" => self.lru_capacity = parse_u64(value)? as usize,
            "deadline_ms" => self.deadline_ms = parse_u64(value)?.max(1),
            "retries" => self.retries = parse_u64(value)? as u32,
            "backoff_base_ms" => self.backoff_base_ms = parse_u64(value)?,
            "backoff_cap_ms" => self.backoff_cap_ms = parse_u64(value)?,
            "jitter_seed" => self.jitter_seed = parse_u64(value)?,
            "breaker_threshold" => self.breaker_threshold = (parse_u64(value)? as u32).max(1),
            "breaker_cooldown_ms" => self.breaker_cooldown_ms = parse_u64(value)?,
            "breaker_half_open" => self.breaker_half_open = (parse_u64(value)? as u32).max(1),
            _ => {
                return Err(format!(
                    "unknown resolver key '{key}' (accepted: {})",
                    RESOLVER_KEYS.join(" ")
                ))
            }
        }
        Ok(())
    }

    fn breaker(&self) -> BreakerConfig {
        BreakerConfig {
            threshold: self.breaker_threshold,
            cooldown: Duration::from_millis(self.breaker_cooldown_ms),
            half_open_successes: self.breaker_half_open,
        }
    }
}

/// A bounded in-memory store of canonical-key → stats, evicting the least
/// recently used entry on overflow.  Recency is a monotonic tick; eviction
/// scans for the minimum, which is fine at the capacities this tier runs
/// at (thousands) given each hit saves a disk read + JSON parse.
struct Lru {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, (SimStats, u64)>,
}

impl Lru {
    fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<SimStats> {
        self.tick += 1;
        let tick = self.tick;
        let (stats, touched) = self.entries.get_mut(key)?;
        *touched = tick;
        Some(stats.clone())
    }

    fn put(&mut self, key: &str, stats: &SimStats) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(key, _)| key.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries
            .insert(key.to_string(), (stats.clone(), self.tick));
    }
}

/// One remote peer: its address, breaker, and lifetime counters.
struct Peer {
    addr: String,
    breaker: CircuitBreaker,
    hits: AtomicU64,
    failures: AtomicU64,
}

/// A point-in-time view of one peer, for `/healthz` and tests.
#[derive(Debug, Clone)]
pub struct PeerSnapshot {
    /// The peer's address as configured.
    pub addr: String,
    /// Breaker state + trip count.
    pub breaker: BreakerSnapshot,
    /// Points this peer answered.
    pub hits: u64,
    /// Failed attempts against this peer.
    pub failures: u64,
}

/// Per-point counters of one remote resolution attempt; the service folds
/// them into [`earlyreg_experiments::engine::ResolveStats`].
#[derive(Debug, Default)]
pub struct RemoteOutcome {
    /// The peer-provided statistics (`None`: every peer hop failed or was
    /// skipped — fall through to local compute).
    pub stats: Option<SimStats>,
    /// Failed attempts across all peers for this point.
    pub failures: usize,
    /// Breaker closed→open transitions caused by this point.
    pub trips: usize,
    /// Peers skipped outright because their breaker was open.
    pub breaker_skips: usize,
}

/// The chain's shared state: the memory tier and the peer tier.  (The disk
/// tier stays on the service, which already owns the [`PointCache`]; the
/// local tier is the simulator.)
///
/// [`PointCache`]: earlyreg_experiments::PointCache
pub struct ResolverChain {
    config: ResolverConfig,
    lru: Mutex<Lru>,
    peers: Vec<Peer>,
}

impl ResolverChain {
    /// Build the chain from its config.
    pub fn new(config: ResolverConfig) -> Self {
        let peers = config
            .peers
            .iter()
            .map(|addr| Peer {
                addr: addr.clone(),
                breaker: CircuitBreaker::new(config.breaker()),
                hits: AtomicU64::new(0),
                failures: AtomicU64::new(0),
            })
            .collect();
        let lru = Mutex::new(Lru::new(config.lru_capacity));
        ResolverChain { config, lru, peers }
    }

    /// The chain's configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Whether a remote tier is configured at all.
    pub fn has_peers(&self) -> bool {
        !self.peers.is_empty()
    }

    /// Memory-tier lookup by canonical cache key.
    pub fn memory_get(&self, canonical: &str) -> Option<SimStats> {
        if self.config.lru_capacity == 0 {
            return None;
        }
        self.lru
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(canonical)
    }

    /// Admit a resolved point into the memory tier.
    pub fn memory_put(&self, canonical: &str, stats: &SimStats) {
        self.lru
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .put(canonical, stats);
    }

    /// Entries currently held by the memory tier.
    pub fn memory_len(&self) -> usize {
        self.lru
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// A snapshot of every peer (addresses, breaker states, counters).
    pub fn peer_snapshots(&self) -> Vec<PeerSnapshot> {
        self.peers
            .iter()
            .map(|peer| PeerSnapshot {
                addr: peer.addr.clone(),
                breaker: peer.breaker.snapshot(),
                hits: peer.hits.load(Ordering::Relaxed),
                failures: peer.failures.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Total breaker trips across all peers.
    pub fn breaker_trips(&self) -> u64 {
        self.peers
            .iter()
            .map(|peer| peer.breaker.snapshot().trips)
            .sum()
    }

    /// Try to resolve one point remotely.  Peers are walked starting at
    /// `digest % len` — the fleet's content-digest sharding — so each point
    /// has a stable home peer and load spreads uniformly.  Every failure
    /// degrades: next attempt, next peer, and finally `stats: None` (the
    /// caller computes locally).  This never panics and never blocks beyond
    /// `(retries + 1) × deadline + backoff` per peer.
    pub fn resolve_remote(&self, planned: &PlannedPoint, body: &str) -> RemoteOutcome {
        let mut outcome = RemoteOutcome::default();
        if self.peers.is_empty() {
            return outcome;
        }
        let start = (planned.digest as usize) % self.peers.len();
        let deadline = Duration::from_millis(self.config.deadline_ms);
        let mut backoff = Backoff::new(
            self.config.backoff_base_ms,
            self.config.backoff_cap_ms,
            self.config.jitter_seed ^ planned.digest,
        );

        for offset in 0..self.peers.len() {
            let peer = &self.peers[(start + offset) % self.peers.len()];
            if !peer.breaker.allow() {
                outcome.breaker_skips += 1;
                continue;
            }
            let mut attempt: u32 = 0;
            loop {
                match try_peer(&peer.addr, body, deadline, planned) {
                    Ok(stats) => {
                        peer.breaker.record_success();
                        peer.hits.fetch_add(1, Ordering::Relaxed);
                        outcome.stats = Some(stats);
                        return outcome;
                    }
                    Err(_error) => {
                        peer.failures.fetch_add(1, Ordering::Relaxed);
                        outcome.failures += 1;
                        if peer.breaker.record_failure() {
                            outcome.trips += 1;
                        }
                        if attempt >= self.config.retries {
                            break;
                        }
                        std::thread::sleep(backoff.delay(attempt));
                        attempt += 1;
                        // The breaker may have tripped on this very streak;
                        // stop hammering a peer the chain just declared dead.
                        if !peer.breaker.allow() {
                            outcome.breaker_skips += 1;
                            break;
                        }
                    }
                }
            }
        }
        outcome
    }
}

/// One peer attempt: POST the point, validate the reply, parse the stats.
fn try_peer(
    addr: &str,
    body: &str,
    deadline: Duration,
    planned: &PlannedPoint,
) -> Result<SimStats, String> {
    let reply = client::post_json(addr, "/points", body, deadline)
        .map_err(|error: ClientError| error.to_string())?;
    parse_peer_reply(&reply.body, reply.header("x-point-digest"), planned)
}

/// Validate and extract the statistics of a single-point peer reply.
///
/// The reply must carry exactly one result whose point coordinates match
/// what was asked, and — when the peer sends its `X-Point-Digest` — whose
/// full content digest matches ours.  A digest mismatch means the peer
/// computes a *different* cache identity for the same coordinates (version
/// skew somewhere in the stack); treating it as a failure preserves the
/// bit-identity guarantee at the cost of one local simulation.
fn parse_peer_reply(
    body: &str,
    digest_header: Option<&str>,
    planned: &PlannedPoint,
) -> Result<SimStats, String> {
    if let Some(digest) = digest_header {
        let digest = u64::from_str_radix(digest.trim(), 16)
            .map_err(|_| format!("unparsable X-Point-Digest '{digest}'"))?;
        if digest != planned.digest {
            return Err(format!(
                "peer digest {digest:016x} != local {:016x} (version skew?)",
                planned.digest
            ));
        }
    }
    let value = serde::json::parse(body).map_err(|error| format!("invalid JSON: {error}"))?;
    let results = value
        .get("results")
        .and_then(Value::as_seq)
        .ok_or("reply has no 'results' array")?;
    if results.len() != 1 {
        return Err(format!("expected 1 result, got {}", results.len()));
    }
    let point = results[0].get("point").ok_or("result has no 'point'")?;
    let field_str = |name: &str| point.get(name).and_then(Value::as_str).unwrap_or("");
    let field_u64 = |name: &str| point.get(name).and_then(Value::as_u64);
    if field_str("workload") != planned.point.workload
        || field_str("policy") != planned.point.policy.label()
        || field_u64("phys_int") != Some(planned.point.phys_int as u64)
        || field_u64("phys_fp") != Some(planned.point.phys_fp as u64)
    {
        return Err("peer answered a different point".to_string());
    }
    let stats = results[0].get("stats").ok_or("result has no 'stats'")?;
    serde::Deserialize::from_value(stats).map_err(|error| format!("unparsable stats: {error}"))
}

/// Whether the peer tier may serve this point.
///
/// The `POST /points` wire format carries (workload, policy, sizes, scale,
/// budget) but **not** the machine config — the peer derives it from the
/// default Table 2 scenario.  A point planned under scenario overrides
/// would therefore come back computed on a *different machine*; such
/// points skip the remote tier entirely and resolve locally.
pub fn peer_eligible(planned: &PlannedPoint) -> bool {
    let baseline = Scenario::table2().machine(
        planned.point.policy,
        planned.point.phys_int,
        planned.point.phys_fp,
    );
    planned.config == baseline
}

/// The scale name of the `/points` wire format.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Bench => "bench",
        Scale::Full => "full",
    }
}

/// The single-point `POST /points` body for one planned point.
pub fn peer_request_body(ctx: &PlanContext, planned: &PlannedPoint) -> String {
    format!(
        r#"{{"scale":"{}","max_instructions":{},"points":[{{"workload":"{}","policy":"{}","phys_int":{},"phys_fp":{}}}]}}"#,
        scale_name(ctx.options.scale),
        ctx.options.max_instructions,
        planned.point.workload,
        planned.point.policy.label(),
        planned.point.phys_int,
        planned.point.phys_fp,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_core::ReleasePolicy;
    use earlyreg_experiments::ExperimentOptions;

    fn smoke_ctx() -> PlanContext {
        PlanContext::new(
            ExperimentOptions {
                scale: Scale::Smoke,
                threads: 1,
                max_instructions: 2000,
            },
            Scenario::table2(),
        )
    }

    fn planned(ctx: &PlanContext) -> PlannedPoint {
        let workload = ctx.workload("swim").unwrap().clone();
        ctx.point(&workload, ReleasePolicy::Extended, 48, 48)
    }

    #[test]
    fn resolver_config_parses_assignments_and_rejects_unknown_keys() {
        let mut config = ResolverConfig::default();
        config.apply("lru_capacity=16").unwrap();
        config.apply("deadline_ms = 750").unwrap();
        config.apply("breaker_threshold=5").unwrap();
        assert_eq!(config.lru_capacity, 16);
        assert_eq!(config.deadline_ms, 750);
        assert_eq!(config.breaker_threshold, 5);
        let error = config.apply("warp_factor=9").unwrap_err();
        for key in RESOLVER_KEYS {
            assert!(error.contains(key), "error must enumerate '{key}': {error}");
        }
        assert!(config.apply("no-equals-sign").is_err());
        assert!(config.apply("retries=many").is_err());
    }

    #[test]
    fn lru_is_bounded_and_evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        let stats_a = SimStats {
            cycles: 1,
            ..Default::default()
        };
        let stats_b = SimStats {
            cycles: 2,
            ..Default::default()
        };
        let stats_c = SimStats {
            cycles: 3,
            ..Default::default()
        };
        lru.put("a", &stats_a);
        lru.put("b", &stats_b);
        assert!(lru.get("a").is_some()); // refresh a: b is now oldest
        lru.put("c", &stats_c);
        assert_eq!(lru.entries.len(), 2, "capacity is a hard bound");
        assert!(lru.get("b").is_none(), "b was least recently used");
        assert_eq!(lru.get("a").unwrap().cycles, 1);
        assert_eq!(lru.get("c").unwrap().cycles, 3);
    }

    #[test]
    fn zero_capacity_lru_is_disabled() {
        let chain = ResolverChain::new(ResolverConfig {
            lru_capacity: 0,
            ..ResolverConfig::default()
        });
        let stats = SimStats::default();
        chain.memory_put("k", &stats);
        assert_eq!(chain.memory_get("k"), None);
        assert_eq!(chain.memory_len(), 0);
    }

    #[test]
    fn chain_without_peers_returns_no_remote_stats() {
        let ctx = smoke_ctx();
        let planned = planned(&ctx);
        let chain = ResolverChain::new(ResolverConfig::default());
        assert!(!chain.has_peers());
        let outcome = chain.resolve_remote(&planned, "{}");
        assert!(outcome.stats.is_none());
        assert_eq!(outcome.failures, 0);
    }

    #[test]
    fn table2_points_are_peer_eligible_but_overridden_points_are_not() {
        let ctx = smoke_ctx();
        assert!(peer_eligible(&planned(&ctx)));

        let overridden = PlanContext::new(
            ctx.options,
            Scenario {
                ros_size: Some(64),
                ..Scenario::table2()
            },
        );
        let workload = overridden.workload("swim").unwrap().clone();
        let tight = overridden.point(&workload, ReleasePolicy::Extended, 48, 48);
        assert!(
            !peer_eligible(&tight),
            "scenario-overridden machines must not take the peer tier"
        );
    }

    #[test]
    fn peer_request_body_is_the_points_wire_format() {
        let ctx = smoke_ctx();
        let planned = planned(&ctx);
        let body = peer_request_body(&ctx, &planned);
        assert_eq!(
            body,
            r#"{"scale":"smoke","max_instructions":2000,"points":[{"workload":"swim","policy":"extended","phys_int":48,"phys_fp":48}]}"#
        );
    }

    #[test]
    fn peer_reply_validation_rejects_mismatches() {
        let ctx = smoke_ctx();
        let planned = planned(&ctx);
        let stats_json = serde::Serialize::to_value(&SimStats::default()).canonical();
        let good = format!(
            r#"{{"results":[{{"point":{{"workload":"swim","policy":"extended","phys_int":48,"phys_fp":48}},"stats":{stats_json}}}]}}"#
        );
        assert!(parse_peer_reply(&good, None, &planned).is_ok());
        let matching_digest = format!("{:016x}", planned.digest);
        assert!(parse_peer_reply(&good, Some(&matching_digest), &planned).is_ok());

        // Digest mismatch: version skew must degrade, not corrupt.
        let error = parse_peer_reply(&good, Some("00000000deadbeef"), &planned).unwrap_err();
        assert!(error.contains("version skew"), "{error}");

        // Wrong point coordinates.
        let wrong = good.replace("\"phys_int\":48", "\"phys_int\":64");
        assert!(parse_peer_reply(&wrong, None, &planned).is_err());

        // Garbage and truncation.
        assert!(parse_peer_reply("{\"results\":@@", None, &planned).is_err());
        assert!(parse_peer_reply("{}", None, &planned).is_err());
    }

    #[test]
    fn dead_peers_fail_over_and_trip_the_breaker() {
        let ctx = smoke_ctx();
        let planned = planned(&ctx);
        // Bind-then-drop: connecting to this port is refused.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let chain = ResolverChain::new(ResolverConfig {
            peers: vec![dead],
            retries: 2,
            deadline_ms: 300,
            backoff_base_ms: 1,
            backoff_cap_ms: 2,
            breaker_threshold: 3,
            breaker_cooldown_ms: 60_000,
            ..ResolverConfig::default()
        });
        let body = peer_request_body(&ctx, &planned);
        let outcome = chain.resolve_remote(&planned, &body);
        assert!(outcome.stats.is_none(), "a dead peer cannot answer");
        assert_eq!(outcome.failures, 3, "1 try + 2 retries");
        assert_eq!(outcome.trips, 1, "the third consecutive failure trips");
        let snapshot = &chain.peer_snapshots()[0];
        assert_eq!(snapshot.breaker.state, "open");
        assert_eq!(snapshot.failures, 3);

        // With the breaker open, the next point skips the peer outright.
        let outcome = chain.resolve_remote(&planned, &body);
        assert!(outcome.stats.is_none());
        assert_eq!(outcome.failures, 0, "no attempt was made");
        assert_eq!(outcome.breaker_skips, 1);
    }
}
