//! The transport layer: a `TcpListener` accept loop feeding a bounded
//! request queue drained by a fixed pool of scoped worker threads (the same
//! scoped-thread shape as `runner::run_parallel`).
//!
//! * the queue is **bounded** — when it is full, new connections are
//!   answered `503` with `Retry-After` immediately instead of piling up;
//! * shutdown is **graceful** — on SIGINT/SIGTERM (or the service's
//!   shutdown flag) the loop stops accepting, queued requests drain, and
//!   every in-flight response completes before the process exits;
//! * a panicking request handler answers `500` and the worker survives.

use crate::http::{self, ReadError, Response};
use crate::service::{Service, ServiceConfig};
use crate::signal;
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// How often the accept loop re-checks the shutdown flags while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Transport + service configuration of one server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address.
    pub addr: String,
    /// Listen port (`0` = ephemeral, kernel-assigned).
    pub port: u16,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bounded queue depth between accept and the workers; connections
    /// beyond it are answered `503`.
    pub queue_capacity: usize,
    /// How long the listener keeps accepting after draining begins.  During
    /// the window `/readyz` already answers `503`, so load balancers can
    /// stop routing to this node before its listener actually closes —
    /// without the window, requests in flight *towards* the socket at
    /// shutdown would be reset instead of served.  `0` closes immediately
    /// (the historical behaviour; tests use it to stay fast).
    pub drain_grace: Duration,
    /// Application-layer tunables.
    pub service: ServiceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cpus = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServeConfig {
            addr: "127.0.0.1".to_string(),
            port: 0,
            workers: cpus.clamp(1, 8),
            queue_capacity: 64,
            drain_grace: Duration::ZERO,
            // sim_threads stays 0 (= auto) here; `start` resolves it from
            // the *final* worker count so overriding `workers` after
            // `..Default::default()` cannot leave a stale ratio behind.
            service: ServiceConfig::default(),
        }
    }
}

/// A server running on its own thread.
pub struct RunningServer {
    /// The bound address (with the resolved ephemeral port).
    pub addr: std::net::SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    handle: thread::JoinHandle<()>,
}

impl RunningServer {
    /// The shared application state (tests read its counters).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the accept loop and every worker have exited.
    pub fn join(self) {
        let _ = self.handle.join();
    }

    /// [`Self::shutdown`] + [`Self::join`].
    pub fn stop(self) {
        self.shutdown();
        self.join();
    }
}

/// Bind and start serving on a background thread.
pub fn start(config: ServeConfig) -> io::Result<RunningServer> {
    let listener = TcpListener::bind((config.addr.as_str(), config.port))?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut service_config = config.service.clone();
    if service_config.sim_threads == 0 {
        // Auto: split the CPUs across the request workers.
        let cpus = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        service_config.sim_threads = (cpus / config.workers.max(1)).max(1);
    }
    let service = Arc::new(Service::new(service_config, Arc::clone(&shutdown)));
    let handle = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || {
            accept_loop(
                listener,
                &service,
                &shutdown,
                config.workers.max(1),
                config.queue_capacity,
                config.drain_grace,
            )
        })
    };
    Ok(RunningServer {
        addr,
        service,
        shutdown,
        handle,
    })
}

fn accept_loop(
    listener: TcpListener,
    service: &Service,
    shutdown: &AtomicBool,
    workers: usize,
    queue_capacity: usize,
    drain_grace: Duration,
) {
    listener
        .set_nonblocking(true)
        .expect("listener supports non-blocking accept");
    let queue: Queue<TcpStream> = Queue::new(queue_capacity);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(stream) = queue.pop() {
                    handle_connection(stream, service);
                }
            });
        }

        // Once draining begins (signal or shutdown flag), `/readyz` already
        // answers 503; the listener stays open for `drain_grace` more so
        // requests racing the shutdown are served, not reset.
        let mut draining_since: Option<std::time::Instant> = None;
        loop {
            if shutdown.load(Ordering::SeqCst) || signal::received() {
                let since = *draining_since.get_or_insert_with(std::time::Instant::now);
                if since.elapsed() >= drain_grace {
                    break;
                }
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if let Err(rejected) = queue.push(stream) {
                        reject_busy(rejected);
                    }
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
        // Graceful drain: stop accepting, let the workers finish what is
        // queued and in flight, then fall out of the scope.
        queue.close();
    });
}

fn handle_connection(mut stream: TcpStream, service: &Service) {
    // Accepted sockets do not inherit the listener's non-blocking mode on
    // the platforms we support, but make it explicit.
    let _ = stream.set_nonblocking(false);
    let (response, fully_read) = match http::read_request(&mut stream) {
        Ok(request) => (
            match catch_unwind(AssertUnwindSafe(|| service.handle(&request))) {
                Ok(response) => response,
                Err(_) => Response::error(500, "request handler panicked"),
            },
            true,
        ),
        Err(ReadError::BadRequest(message)) => (Response::error(400, &message), false),
        Err(ReadError::TooLarge(message)) => (Response::error(413, &message), false),
        // The peer is gone or unreadable; nothing to send.
        Err(ReadError::Io(_)) => return,
    };
    let _ = http::write_response(&mut stream, &response);
    if !fully_read {
        // The request was answered before its bytes were consumed (e.g. a
        // 413 for an oversized body).  Closing with unread data pending
        // would reset the connection and can discard the queued response,
        // so discard the remainder first — bounded, never buffered.
        http::drain_to_eof(&mut stream, Duration::from_secs(2));
    }
}

/// Cap on concurrent rejection handlers; connections beyond it are dropped
/// without a response (the client sees a reset, which is still backpressure).
const MAX_REJECTORS: usize = 32;

/// Live rejection-handler count (process-wide; the server is one per
/// process in practice and the cap is a safety valve, not an exact quota).
static REJECTORS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn reject_busy(mut stream: TcpStream) {
    // Answer on a short-lived detached thread: the accept loop must never
    // block on a rejected client's socket.  The request is drained first
    // (overall 250ms deadline) so the client reliably receives the 503 —
    // closing with unread data pending would reset the connection before
    // the response arrives.
    if REJECTORS.fetch_add(1, Ordering::SeqCst) >= MAX_REJECTORS {
        REJECTORS.fetch_sub(1, Ordering::SeqCst);
        return; // overload upon overload: just drop the connection
    }
    thread::spawn(move || {
        let _ = stream.set_nonblocking(false);
        let fully_read =
            http::read_request_timeout(&mut stream, Duration::from_millis(250)).is_ok();
        let response = Response::error(503, "request queue is full, retry shortly")
            .with_header("Retry-After", "1".to_string());
        let _ = http::write_response(&mut stream, &response);
        if !fully_read {
            // Same as handle_connection: closing with unread request bytes
            // pending would reset the connection and lose the 503.
            http::drain_to_eof(&mut stream, Duration::from_millis(500));
        }
        REJECTORS.fetch_sub(1, Ordering::SeqCst);
    });
}

/// A bounded multi-producer/multi-consumer queue with close semantics:
/// `push` fails fast when full or closed, `pop` blocks until an item or
/// close-and-drained.
struct Queue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Queue<T> {
    fn new(capacity: usize) -> Self {
        Queue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue, or hand the item back when the queue is full or closed.
    fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue poisoned");
        }
    }

    /// Reject future pushes and wake every blocked consumer.
    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bounds_and_close_semantics() {
        let queue: Queue<u32> = Queue::new(2);
        assert!(queue.push(1).is_ok());
        assert!(queue.push(2).is_ok());
        assert_eq!(queue.push(3), Err(3), "over capacity fails fast");
        assert_eq!(queue.pop(), Some(1));
        assert!(queue.push(3).is_ok());
        queue.close();
        assert_eq!(queue.push(4), Err(4), "closed rejects producers");
        // Consumers drain what is queued, then observe the close.
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn zero_capacity_queue_rejects_everything() {
        let queue: Queue<u32> = Queue::new(0);
        assert_eq!(queue.push(1), Err(1));
    }
}
