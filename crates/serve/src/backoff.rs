//! Capped exponential backoff with deterministic, seeded jitter.
//!
//! Retrying a failed peer hop immediately turns one stalled node into a
//! synchronized retry storm; retrying on a fixed schedule synchronizes the
//! *retriers* with each other instead.  The standard fix is exponential
//! backoff with jitter — but this codebase pins reproducibility everywhere
//! (fixed-seed fuzzing, bit-identical sweeps), so the jitter is drawn from
//! a seeded [`XorShift64`] stream: the same seed produces the same delay
//! schedule, which is what lets the chaos tests assert breaker transitions
//! on a fixed seed instead of sleeping "long enough".

use std::time::Duration;

/// Minimal xorshift64* PRNG — dependency-free, stable across platforms.
/// Shared by the backoff jitter and the fault-injection scheduler
/// ([`crate::fault`]); *not* a source of cryptographic randomness.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the stream (a zero seed is remapped — xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, bound)`; `0` for a zero bound.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A deterministic backoff schedule: `base * 2^attempt`, capped, with
/// "equal jitter" (half fixed, half drawn from the seeded stream) so
/// successive delays never collapse to zero yet stay reproducible.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    rng: XorShift64,
}

impl Backoff {
    /// Build a schedule from the resolver knobs.  The seed should mix a
    /// per-chain seed with a per-point discriminator (the point digest)
    /// so concurrent points do not march in lockstep.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms.max(base_ms)),
            rng: XorShift64::new(seed),
        }
    }

    /// Delay before retry number `attempt` (0-based: the delay between the
    /// first failure and the second try).
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        let half = exp / 2;
        let jitter_ms = self.rng.below(half.as_millis().max(1) as u64);
        half + Duration::from_millis(jitter_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(10, 250, 42);
        let mut b = Backoff::new(10, 250, 42);
        for attempt in 0..6 {
            assert_eq!(a.delay(attempt), b.delay(attempt));
        }
    }

    #[test]
    fn delays_grow_and_cap() {
        let mut backoff = Backoff::new(10, 80, 7);
        for attempt in 0..20 {
            let delay = backoff.delay(attempt);
            // Equal jitter: between half the exponential step and the step.
            assert!(delay >= Duration::from_millis(5), "{delay:?}");
            assert!(delay <= Duration::from_millis(80), "{delay:?}");
        }
        // Far past the cap the delay saturates at [cap/2, cap).
        let late = backoff.delay(19);
        assert!(late >= Duration::from_millis(40), "{late:?}");
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = XorShift64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn below_bounds_draws() {
        let mut rng = XorShift64::new(9);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(0), 0);
    }
}
