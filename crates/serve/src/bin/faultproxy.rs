//! `earlyreg-faultproxy` — the deterministic fault-injection proxy as a
//! standalone process, for chaos smoke tests in CI and manual poking.
//!
//! ```text
//! earlyreg-faultproxy --upstream ADDR [--addr A] [--port P]
//!                     [--schedule SPEC] [--port-file PATH]
//! ```
//!
//! Sits between a resolver chain (`earlyreg-serve --peer <proxy>`) and an
//! upstream serve node, applying the scheduled fault to each connection in
//! accept order.  The schedule is deterministic (see
//! [`earlyreg_serve::fault::FaultSchedule`]), so a fixed spec reproduces
//! the exact same fault sequence on every run.  Runs until SIGINT/SIGTERM,
//! then prints the per-fault connection counts and exits.

use earlyreg_serve::fault::{FaultProxy, FaultSchedule, FAULT_NAMES};
use earlyreg_serve::signal;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
usage: earlyreg-faultproxy --upstream ADDR [options]
  --upstream ADDR   the real serve node to forward to (required)
  --addr A          listen address (default 127.0.0.1)
  --port P          listen port (default 0 = ephemeral)
  --schedule SPEC   fault schedule (default 'pass'):
                      'refuse,pass,stall'      cyclic script
                      'seed:42:refuse,drop'    seeded picks from a menu
                      'seed:42'                seeded picks from all faults
                    faults: pass refuse stall drop http500 truncate
                            garbage slowdrip
  --port-file PATH  write the resolved port to PATH after binding
";

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!();
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut upstream: Option<String> = None;
    let mut addr = "127.0.0.1".to_string();
    let mut port: u16 = 0;
    let mut schedule = "pass".to_string();
    let mut port_file: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--upstream" => upstream = Some(value("--upstream")),
            "--addr" => addr = value("--addr"),
            "--port" => match value("--port").parse() {
                Ok(parsed) => port = parsed,
                Err(_) => fail("invalid --port"),
            },
            "--schedule" => schedule = value("--schedule"),
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file"))),
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    let Some(upstream) = upstream else {
        fail("--upstream is required");
    };
    let schedule = match FaultSchedule::parse(&schedule) {
        Ok(schedule) => schedule,
        Err(message) => fail(&format!("invalid --schedule: {message}")),
    };

    signal::install();
    let listen = format!("{addr}:{port}");
    let proxy = match FaultProxy::start_on(&listen, upstream.clone(), schedule) {
        Ok(proxy) => proxy,
        Err(error) => fail(&format!("cannot bind {listen}: {error}")),
    };
    println!(
        "earlyreg-faultproxy listening on {} -> {upstream}",
        proxy.addr()
    );
    if let Some(path) = &port_file {
        if let Err(error) = std::fs::write(path, format!("{}\n", proxy.addr().port())) {
            fail(&format!(
                "cannot write --port-file {}: {error}",
                path.display()
            ));
        }
    }

    while !signal::received() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let counts = proxy.counts();
    proxy.stop();
    let summary: Vec<String> = FAULT_NAMES
        .iter()
        .zip(&counts)
        .map(|(name, (_, count))| format!("{name}={count}"))
        .collect();
    println!("earlyreg-faultproxy: {}", summary.join(" "));
}
