//! `earlyreg-serve` — the HTTP simulation service.
//!
//! ```text
//! earlyreg-serve [--addr A] [--port P] [--workers N] [--queue N]
//!                [--sim-threads N] [--cache DIR | --no-cache]
//!                [--max-instructions N] [--port-file PATH] [--allow-shutdown]
//!                [--peer ADDR]... [--resolver-config K=V[,K=V...]]
//!                [--drain-grace-ms N]
//! ```
//!
//! Binds, prints the listening address (port `0` asks the kernel for an
//! ephemeral port; `--port-file` writes the resolved port for scripts),
//! serves until SIGINT/SIGTERM (or `POST /shutdown` with
//! `--allow-shutdown`), then drains and exits cleanly.  With `--peer` the
//! node resolves points through the fault-tolerant tiered chain (memory →
//! disk → peers → local); see `docs/SERVE.md` § Resilience.

use earlyreg_serve::{signal, start, ServeConfig};
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
usage: earlyreg-serve [options]
  --addr A              listen address (default 127.0.0.1)
  --port P              listen port (default 0 = ephemeral)
  --workers N           request worker threads (default: min(cpus, 8))
  --queue N             bounded request queue depth (default 64)
  --sim-threads N       simulation threads per request (default: cpus/workers)
  --cache DIR           point cache directory (default target/exp-cache)
  --no-cache            disable the on-disk point cache
  --max-instructions N  cap on per-point instruction budgets (default 5000000)
  --port-file PATH      write the resolved port to PATH after binding
  --allow-shutdown      honour POST /shutdown (tests / CI)
  --peer ADDR           resolve points via this peer before simulating
                        (repeatable; each peer gets its own circuit breaker)
  --resolver-config S   comma-separated key=value resolver knobs
                        (lru_capacity, deadline_ms, retries, backoff_base_ms,
                         backoff_cap_ms, jitter_seed, breaker_threshold,
                         breaker_cooldown_ms, breaker_half_open)
  --drain-grace-ms N    keep accepting for N ms after drain begins while
                        /readyz answers 503 (default 0)
";

fn fail(message: &str) -> ! {
    eprintln!("{message}");
    eprintln!();
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut config = ServeConfig::default();
    let mut port_file: Option<PathBuf> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--port" => match value("--port").parse() {
                Ok(port) => config.port = port,
                Err(_) => fail("invalid --port"),
            },
            "--workers" => match value("--workers").parse() {
                Ok(workers) if workers > 0 => config.workers = workers,
                _ => fail("invalid --workers (must be a positive integer)"),
            },
            "--queue" => match value("--queue").parse() {
                Ok(depth) if depth > 0 => config.queue_capacity = depth,
                _ => fail("invalid --queue (must be a positive integer)"),
            },
            "--sim-threads" => match value("--sim-threads").parse() {
                Ok(threads) if threads > 0 => config.service.sim_threads = threads,
                _ => fail("invalid --sim-threads (must be a positive integer)"),
            },
            "--cache" => config.service.cache_dir = Some(PathBuf::from(value("--cache"))),
            "--no-cache" => config.service.cache_dir = None,
            "--max-instructions" => match value("--max-instructions").parse() {
                Ok(limit) if limit > 0 => config.service.max_instructions_limit = limit,
                _ => fail("invalid --max-instructions"),
            },
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file"))),
            "--allow-shutdown" => config.service.allow_shutdown = true,
            "--peer" => config.service.resolver.peers.push(value("--peer")),
            "--resolver-config" => {
                for assignment in value("--resolver-config").split(',') {
                    if let Err(message) = config.service.resolver.apply(assignment) {
                        fail(&format!("invalid --resolver-config: {message}"));
                    }
                }
            }
            "--drain-grace-ms" => match value("--drain-grace-ms").parse() {
                Ok(millis) => config.drain_grace = Duration::from_millis(millis),
                Err(_) => fail("invalid --drain-grace-ms (must be a non-negative integer)"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }

    signal::install();
    let server = match start(config) {
        Ok(server) => server,
        Err(error) => fail(&format!("cannot bind: {error}")),
    };
    println!("earlyreg-serve listening on http://{}", server.addr);
    if let Some(path) = &port_file {
        if let Err(error) = std::fs::write(path, format!("{}\n", server.addr.port())) {
            fail(&format!(
                "cannot write --port-file {}: {error}",
                path.display()
            ));
        }
    }
    server.join();
    println!("earlyreg-serve: shut down cleanly");
}
