//! Single-flight deduplication of identical in-flight computations.
//!
//! The first caller to [`SingleFlight::join`] a key becomes the **leader**
//! and is handed a [`Leader`] token; everyone joining the same key before
//! the leader publishes becomes a **follower** holding a [`Follower`]
//! handle.  The leader computes once and [`Leader::publish`]es; every
//! follower's [`Follower::wait`] then returns a clone of the value.
//!
//! If the leader's computation panics (or its token is otherwise dropped
//! without publishing), followers receive `None` and are expected to fall
//! back to computing the value themselves — a failed leader must never
//! strand its followers.
//!
//! The intended protocol for batch users (the service resolver) is: join
//! every key first, compute and publish all led keys, and only then wait on
//! followed keys.  Publishing before waiting makes cross-request
//! leader/follower cycles impossible, so the map is deadlock-free.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

enum FlightState<V> {
    Pending,
    Done(Option<V>),
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// A map of in-flight computations.
///
/// The key must carry the *full* identity of the computation — the service
/// keys on the canonical cache-key string, not its 64-bit digest, so a
/// digest collision can never hand one point's result to another (the same
/// invariant the on-disk cache enforces by verifying the stored key).
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

/// The outcome of joining a key.
pub enum Join<'sf, K: Eq + Hash, V> {
    /// This caller computes the value and must publish it.
    Leader(Leader<'sf, K, V>),
    /// Another caller is already computing; wait for its result.
    Follower(Follower<V>),
}

/// The leader's obligation to publish (fulfilled automatically with a
/// failure marker on drop).
pub struct Leader<'sf, K: Eq + Hash, V> {
    owner: &'sf SingleFlight<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    published: bool,
}

/// A follower's claim on the leader's eventual result.
pub struct Follower<V> {
    flight: Arc<Flight<V>>,
}

impl<K: Eq + Hash + Clone, V> SingleFlight<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Join the flight for `key`: the first joiner leads, later joiners
    /// follow.
    pub fn join(&self, key: K) -> Join<'_, K, V> {
        let mut inflight = self.inflight.lock().expect("single-flight map poisoned");
        if let Some(flight) = inflight.get(&key) {
            return Join::Follower(Follower {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        });
        inflight.insert(key.clone(), Arc::clone(&flight));
        Join::Leader(Leader {
            owner: self,
            key,
            flight,
            published: false,
        })
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        self.inflight
            .lock()
            .expect("single-flight map poisoned")
            .len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone, V> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> Leader<'_, K, V> {
    /// Publish the computed value: wake every follower and retire the key.
    pub fn publish(mut self, value: V) {
        self.finish(Some(value));
    }

    fn finish(&mut self, value: Option<V>) {
        // Retire the key first so late joiners (who will re-check the cache
        // and find the stored result) start a fresh flight instead of
        // waiting on a finished one.
        self.owner
            .inflight
            .lock()
            .expect("single-flight map poisoned")
            .remove(&self.key);
        *self.flight.state.lock().expect("flight state poisoned") = FlightState::Done(value);
        self.flight.done.notify_all();
        self.published = true;
    }
}

impl<K: Eq + Hash, V> Drop for Leader<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            // The leader failed (panicked or bailed): signal followers to
            // compute for themselves rather than stranding them.
            self.finish(None);
        }
    }
}

impl<V: Clone> Follower<V> {
    /// Block until the leader publishes; `None` means the leader failed and
    /// the caller must compute the value itself.
    pub fn wait(self) -> Option<V> {
        let mut state = self.flight.state.lock().expect("flight state poisoned");
        loop {
            match &*state {
                FlightState::Done(value) => return value.clone(),
                FlightState::Pending => {
                    state = self.flight.done.wait(state).expect("flight state poisoned");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_joiner_leads_and_followers_receive_the_value() {
        let flights: SingleFlight<u64, u64> = SingleFlight::new();
        let leader = match flights.join(7) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => panic!("first joiner must lead"),
        };
        assert_eq!(flights.len(), 1);

        let computed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut waiters = Vec::new();
            for _ in 0..4 {
                let follower = match flights.join(7) {
                    Join::Follower(follower) => follower,
                    Join::Leader(_) => panic!("later joiners must follow"),
                };
                let computed = &computed;
                waiters.push(scope.spawn(move || {
                    assert_eq!(follower.wait(), Some(42));
                    computed.fetch_add(1, Ordering::Relaxed);
                }));
            }
            leader.publish(42);
            for waiter in waiters {
                waiter.join().unwrap();
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 4);
        assert!(flights.is_empty(), "published keys retire");
    }

    #[test]
    fn a_dropped_leader_releases_followers_with_none() {
        let flights: SingleFlight<u64, u64> = SingleFlight::new();
        let leader = match flights.join(1) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => unreachable!(),
        };
        let follower = match flights.join(1) {
            Join::Follower(follower) => follower,
            Join::Leader(_) => unreachable!(),
        };
        drop(leader); // the leader "panicked"
        assert_eq!(follower.wait(), None, "followers must not be stranded");
        assert!(flights.is_empty());
        // The key is free again: the follower can retry as the new leader.
        assert!(matches!(flights.join(1), Join::Leader(_)));
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let flights: SingleFlight<u64, &'static str> = SingleFlight::new();
        let a = match flights.join(1) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => unreachable!(),
        };
        let b = match flights.join(2) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => unreachable!(),
        };
        assert_eq!(flights.len(), 2);
        a.publish("a");
        assert_eq!(flights.len(), 1);
        b.publish("b");
        assert!(flights.is_empty());
    }
}
