//! Single-flight deduplication of identical in-flight computations.
//!
//! The first caller to [`SingleFlight::join`] a key becomes the **leader**
//! and is handed a [`Leader`] token; everyone joining the same key before
//! the leader publishes becomes a **follower** holding a [`Follower`]
//! handle.  The leader computes once and [`Leader::publish`]es; every
//! follower's [`Follower::wait`] then returns a clone of the value.
//!
//! If the leader's computation panics (or its token is otherwise dropped
//! without publishing), followers receive `None` and are expected to fall
//! back to computing the value themselves — a failed leader must never
//! strand its followers.
//!
//! The intended protocol for batch users (the service resolver) is: join
//! every key first, compute and publish all led keys, and only then wait on
//! followed keys.  Publishing before waiting makes cross-request
//! leader/follower cycles impossible, so the map is deadlock-free.
//!
//! The internal locks **recover from poisoning**: a panic inside a
//! critical section here (or in a caller holding a guard across a panic in
//! the leader's drop path) marks the mutex poisoned, but the protected
//! state — a `HashMap` of `Arc`s and a two-variant enum — is never left
//! mid-mutation by any operation in this module, so the value inside a
//! poisoned lock is still consistent.  Propagating the poison would turn
//! one worker's panic into a panic in *every* thread that touches the map
//! (the exact cascade the catch-unwind worker isolation exists to prevent);
//! recovering keeps the failure contained to the request that caused it.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Lock with poison recovery (see the module docs for why that is sound
/// here).
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

enum FlightState<V> {
    Pending,
    Done(Option<V>),
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// A map of in-flight computations.
///
/// The key must carry the *full* identity of the computation — the service
/// keys on the canonical cache-key string, not its 64-bit digest, so a
/// digest collision can never hand one point's result to another (the same
/// invariant the on-disk cache enforces by verifying the stored key).
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

/// The outcome of joining a key.
pub enum Join<'sf, K: Eq + Hash, V> {
    /// This caller computes the value and must publish it.
    Leader(Leader<'sf, K, V>),
    /// Another caller is already computing; wait for its result.
    Follower(Follower<V>),
}

/// The leader's obligation to publish (fulfilled automatically with a
/// failure marker on drop).
pub struct Leader<'sf, K: Eq + Hash, V> {
    owner: &'sf SingleFlight<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    published: bool,
}

/// A follower's claim on the leader's eventual result.
pub struct Follower<V> {
    flight: Arc<Flight<V>>,
}

impl<K: Eq + Hash + Clone, V> SingleFlight<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Join the flight for `key`: the first joiner leads, later joiners
    /// follow.
    pub fn join(&self, key: K) -> Join<'_, K, V> {
        let mut inflight = lock_recovering(&self.inflight);
        if let Some(flight) = inflight.get(&key) {
            return Join::Follower(Follower {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        });
        inflight.insert(key.clone(), Arc::clone(&flight));
        Join::Leader(Leader {
            owner: self,
            key,
            flight,
            published: false,
        })
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        lock_recovering(&self.inflight).len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone, V> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> Leader<'_, K, V> {
    /// Publish the computed value: wake every follower and retire the key.
    pub fn publish(mut self, value: V) {
        self.finish(Some(value));
    }

    fn finish(&mut self, value: Option<V>) {
        // Retire the key first so late joiners (who will re-check the cache
        // and find the stored result) start a fresh flight instead of
        // waiting on a finished one.
        lock_recovering(&self.owner.inflight).remove(&self.key);
        *lock_recovering(&self.flight.state) = FlightState::Done(value);
        self.flight.done.notify_all();
        self.published = true;
    }
}

impl<K: Eq + Hash, V> Drop for Leader<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            // The leader failed (panicked or bailed): signal followers to
            // compute for themselves rather than stranding them.
            self.finish(None);
        }
    }
}

impl<V: Clone> Follower<V> {
    /// Block until the leader publishes; `None` means the leader failed and
    /// the caller must compute the value itself.
    pub fn wait(self) -> Option<V> {
        let mut state = lock_recovering(&self.flight.state);
        loop {
            match &*state {
                FlightState::Done(value) => return value.clone(),
                FlightState::Pending => {
                    state = self
                        .flight
                        .done
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_joiner_leads_and_followers_receive_the_value() {
        let flights: SingleFlight<u64, u64> = SingleFlight::new();
        let leader = match flights.join(7) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => panic!("first joiner must lead"),
        };
        assert_eq!(flights.len(), 1);

        let computed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut waiters = Vec::new();
            for _ in 0..4 {
                let follower = match flights.join(7) {
                    Join::Follower(follower) => follower,
                    Join::Leader(_) => panic!("later joiners must follow"),
                };
                let computed = &computed;
                waiters.push(scope.spawn(move || {
                    assert_eq!(follower.wait(), Some(42));
                    computed.fetch_add(1, Ordering::Relaxed);
                }));
            }
            leader.publish(42);
            for waiter in waiters {
                waiter.join().unwrap();
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 4);
        assert!(flights.is_empty(), "published keys retire");
    }

    #[test]
    fn a_dropped_leader_releases_followers_with_none() {
        let flights: SingleFlight<u64, u64> = SingleFlight::new();
        let leader = match flights.join(1) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => unreachable!(),
        };
        let follower = match flights.join(1) {
            Join::Follower(follower) => follower,
            Join::Leader(_) => unreachable!(),
        };
        drop(leader); // the leader "panicked"
        assert_eq!(follower.wait(), None, "followers must not be stranded");
        assert!(flights.is_empty());
        // The key is free again: the follower can retry as the new leader.
        assert!(matches!(flights.join(1), Join::Leader(_)));
    }

    /// Regression test for poisoned-lock handling: a leader that panics
    /// while holding its token poisons nothing visible to followers, and a
    /// follower joining *after* the panic neither panics on the poisoned
    /// mutex nor deadlocks — it is released with `None`, retries, becomes
    /// the new leader and completes the flight.
    #[test]
    fn a_panicking_leader_fails_over_to_a_follower() {
        static FLIGHTS: std::sync::OnceLock<SingleFlight<u64, u64>> = std::sync::OnceLock::new();
        let flights = FLIGHTS.get_or_init(SingleFlight::new);

        let leader = match flights.join(9) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => unreachable!(),
        };
        let follower = match flights.join(9) {
            Join::Follower(follower) => follower,
            Join::Leader(_) => unreachable!(),
        };

        // The leader panics mid-computation on its own thread; its token's
        // Drop runs during unwinding and touches both internal locks.
        let crash = std::thread::spawn(move || {
            let _leader = leader;
            panic!("simulated leader crash");
        });
        assert!(crash.join().is_err(), "the leader thread must panic");

        // The follower is released, not stranded...
        assert_eq!(follower.wait(), None, "failed leaders release followers");
        // ...and the map is fully usable afterwards: joining again leads,
        // publishing completes, and a new follower receives the value.
        let retry = match flights.join(9) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => panic!("the key must be free after the failure"),
        };
        let second = match flights.join(9) {
            Join::Follower(follower) => follower,
            Join::Leader(_) => unreachable!(),
        };
        retry.publish(99);
        assert_eq!(second.wait(), Some(99), "failover completes the flight");
        assert!(flights.is_empty());
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let flights: SingleFlight<u64, &'static str> = SingleFlight::new();
        let a = match flights.join(1) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => unreachable!(),
        };
        let b = match flights.join(2) {
            Join::Leader(leader) => leader,
            Join::Follower(_) => unreachable!(),
        };
        assert_eq!(flights.len(), 2);
        a.publish("a");
        assert_eq!(flights.len(), 1);
        b.publish("b");
        assert!(flights.is_empty());
    }
}
