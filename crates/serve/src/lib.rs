//! # earlyreg-serve
//!
//! A dependency-free HTTP/1.1 JSON service over the experiment engine of the
//! ICPP'02 early-register-release reproduction.  Every simulation point is a
//! pure function of its cache key, so the service can cache and deduplicate
//! aggressively:
//!
//! * **on-disk [`PointCache`]** (shared with `earlyreg-exp`) answers warm
//!   points with bit-identical statistics;
//! * **single-flight dedup** ([`singleflight`]) makes identical in-flight
//!   points simulate exactly once — concurrent requests for the same point
//!   wait on the leader's result instead of re-simulating;
//! * a **fault-tolerant tiered [`resolver`] chain** (in-memory LRU → disk →
//!   remote peers → local compute) with per-point deadlines, capped
//!   exponential [`backoff`] with seeded jitter, and a per-peer circuit
//!   [`breaker`] — every tier failure degrades to the next tier, and the
//!   answer stays bit-identical to a cold local run;
//! * a **deterministic [`fault`]-injection proxy** for chaos tests and the
//!   CI chaos smoke;
//! * a **fixed worker pool** over `std::net::TcpListener` with a **bounded
//!   request queue** sheds load with `503` instead of queueing unboundedly;
//! * **graceful shutdown** on SIGINT/SIGTERM (or `POST /shutdown` when
//!   enabled): `/readyz` flips to `503`, the listener keeps serving for the
//!   configured drain grace, queued requests drain, exit.
//!
//! Endpoints (see `docs/SERVE.md` for schemas and examples):
//!
//! | method & path      | purpose                                           |
//! |--------------------|---------------------------------------------------|
//! | `GET /healthz`     | liveness plus service counters                    |
//! | `GET /readyz`      | readiness (`503` once draining begins)            |
//! | `GET /experiments` | experiment, policy and workload registries        |
//! | `POST /points`     | raw simulation points → `SimStats`                |
//! | `POST /run`        | experiment ids (+ scenario) → `Report` envelopes  |
//! | `POST /shutdown`   | graceful stop (only with `--allow-shutdown`)      |
//!
//! Everything is `std`-only: no async runtime, no HTTP framework, no signal
//! crate.  The library exposes [`start`] so tests (and embedders) can run
//! the full server in-process on an ephemeral port.
//!
//! [`PointCache`]: earlyreg_experiments::PointCache

pub mod backoff;
pub mod breaker;
pub mod client;
pub mod fault;
pub mod http;
pub mod resolver;
pub mod server;
pub mod service;
pub mod signal;
pub mod singleflight;

pub use resolver::{ResolverChain, ResolverConfig};
pub use server::{start, RunningServer, ServeConfig};
pub use service::{Service, ServiceConfig};
