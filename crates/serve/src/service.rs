//! The application layer: routing, request/response schemas, and the
//! single-flight point resolver over the experiment engine.
//!
//! A [`Service`] is shared (behind an `Arc`) by every worker thread.  It
//! owns the on-disk [`PointCache`], the [`SingleFlight`] map, one
//! [`WorkloadSet`] per requested scale (built lazily, shared across
//! requests), and the counters `/healthz` reports.  It implements the
//! engine's [`PointResolver`], so `POST /run` goes through exactly the same
//! plan → dedup → resolve → render pipeline as the `earlyreg-exp` CLI —
//! with cross-request single-flight dedup layered on top.

use crate::http::{Request, Response};
use crate::resolver::{self, ResolverChain, ResolverConfig};
use crate::signal;
use crate::singleflight::{Join, SingleFlight};
use earlyreg_core::ReleasePolicy;
use earlyreg_experiments::engine::{
    self, PlanContext, PlannedPoint, PointResolver, ResolveStats, ResultSet, WorkloadSet,
};
use earlyreg_experiments::runner::{run_parallel, RunResult};
use earlyreg_experiments::{ExperimentOptions, PointCache, Scenario};
use earlyreg_sim::SimStats;
use earlyreg_workloads::Scale;
use serde::value::Value;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tunables of the application layer.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Directory of the shared on-disk point cache (`None` disables it; the
    /// single-flight map still dedups concurrent identical points).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads used to simulate the points of one request (`0` =
    /// auto: `cpus / workers`, resolved by [`crate::start`] so it tracks
    /// the *final* worker count).
    pub sim_threads: usize,
    /// Whether `POST /shutdown` is honoured (tests and CI; off by default).
    pub allow_shutdown: bool,
    /// Cap on `POST /points` batch size.
    pub max_request_points: usize,
    /// Cap on the per-point committed-instruction budget a request may ask
    /// for (and the default when it asks for none).
    pub max_instructions_limit: u64,
    /// Resolver-chain tunables: the in-memory LRU tier, the peer list and
    /// the deadline/retry/breaker knobs (`--peer`, `--resolver-config`).
    pub resolver: ResolverConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_dir: Some(PathBuf::from("target/exp-cache")),
            sim_threads: 0,
            allow_shutdown: false,
            max_request_points: 2048,
            max_instructions_limit: 5_000_000,
            resolver: ResolverConfig::default(),
        }
    }
}

/// The shared application state behind every worker.
pub struct Service {
    config: ServiceConfig,
    cache: Option<PointCache>,
    // Keyed by the *canonical* cache-key string (not its digest), so a
    // digest collision can never serve one point's statistics as another's
    // — the same invariant the on-disk cache enforces on load.
    flights: SingleFlight<String, SimStats>,
    suites: Mutex<HashMap<Scale, Arc<WorkloadSet>>>,
    chain: ResolverChain,
    shutdown: Arc<AtomicBool>,
    simulations: AtomicU64,
    coalesced: AtomicU64,
    lru_hits: AtomicU64,
    peer_hits: AtomicU64,
    peer_failures: AtomicU64,
    requests: AtomicU64,
}

impl Service {
    /// Build the service; `shutdown` is the flag the accept loop watches
    /// (set by `POST /shutdown` when allowed).
    pub fn new(config: ServiceConfig, shutdown: Arc<AtomicBool>) -> Self {
        let cache = config.cache_dir.clone().map(PointCache::new);
        let chain = ResolverChain::new(config.resolver.clone());
        Service {
            config,
            cache,
            flights: SingleFlight::new(),
            suites: Mutex::new(HashMap::new()),
            chain,
            shutdown,
            simulations: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            lru_hits: AtomicU64::new(0),
            peer_hits: AtomicU64::new(0),
            peer_failures: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    /// Total simulations performed since start (the single-flight tests
    /// assert on this).
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Total points answered by waiting on another request's computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Total points answered by the in-memory LRU tier.
    pub fn lru_hits(&self) -> u64 {
        self.lru_hits.load(Ordering::Relaxed)
    }

    /// Total points answered by a remote peer.
    pub fn peer_hits(&self) -> u64 {
        self.peer_hits.load(Ordering::Relaxed)
    }

    /// Total failed remote attempts (each degraded to the next tier).
    pub fn peer_failures(&self) -> u64 {
        self.peer_failures.load(Ordering::Relaxed)
    }

    /// The resolver chain (tests read breaker snapshots off it).
    pub fn chain(&self) -> &ResolverChain {
        &self.chain
    }

    /// Whether the service has begun draining (shutdown flag or signal).
    pub fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::received()
    }

    /// Route one request.
    pub fn handle(&self, request: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        // Route on the path only — probes like `GET /healthz?probe=1` must
        // hit the endpoint, not the 404 arm.
        let path = request
            .path
            .split_once('?')
            .map_or(request.path.as_str(), |(path, _query)| path);
        match (request.method.as_str(), path) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/readyz") => self.readyz(),
            ("GET", "/experiments") => self.experiments(),
            ("POST", "/points") => self.points(request),
            ("POST", "/run") => self.run(request),
            ("POST", "/shutdown") => self.shutdown_requested(),
            (_, "/healthz" | "/readyz" | "/experiments" | "/points" | "/run" | "/shutdown") => {
                Response::error(405, "method not allowed for this endpoint")
            }
            _ => Response::error(
                404,
                "unknown endpoint (try /healthz, /readyz, /experiments, /points, /run)",
            ),
        }
    }

    fn healthz(&self) -> Response {
        let cache = match &self.cache {
            Some(cache) => Value::Str(cache.dir().display().to_string()),
            None => Value::Null,
        };
        let body = Value::Map(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            (
                "simulations".to_string(),
                Value::U64(self.simulations.load(Ordering::Relaxed)),
            ),
            (
                "coalesced".to_string(),
                Value::U64(self.coalesced.load(Ordering::Relaxed)),
            ),
            (
                "requests".to_string(),
                Value::U64(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "inflight_points".to_string(),
                Value::U64(self.flights.len() as u64),
            ),
            ("cache".to_string(), cache),
            ("lru_hits".to_string(), Value::U64(self.lru_hits())),
            (
                "lru_entries".to_string(),
                Value::U64(self.chain.memory_len() as u64),
            ),
            ("peer_hits".to_string(), Value::U64(self.peer_hits())),
            (
                "peer_failures".to_string(),
                Value::U64(self.peer_failures()),
            ),
            (
                "breaker_trips".to_string(),
                Value::U64(self.chain.breaker_trips()),
            ),
            (
                "peers".to_string(),
                Value::Seq(
                    self.chain
                        .peer_snapshots()
                        .into_iter()
                        .map(|peer| {
                            Value::Map(vec![
                                ("addr".to_string(), Value::Str(peer.addr)),
                                (
                                    "breaker".to_string(),
                                    Value::Str(peer.breaker.state.to_string()),
                                ),
                                ("trips".to_string(), Value::U64(peer.breaker.trips)),
                                ("hits".to_string(), Value::U64(peer.hits)),
                                ("failures".to_string(), Value::U64(peer.failures)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        Response::json(200, body.canonical())
    }

    /// `GET /readyz`: readiness as distinct from liveness.  `/healthz`
    /// answers `200` for as long as the process can serve at all; `/readyz`
    /// flips to `503` the moment draining begins (SIGINT/SIGTERM or an
    /// accepted `POST /shutdown`), so load balancers stop routing new work
    /// to a node that is about to leave while its in-flight requests finish.
    fn readyz(&self) -> Response {
        if self.draining() {
            let body = Value::Map(vec![(
                "status".to_string(),
                Value::Str("draining".to_string()),
            )]);
            Response::json(503, body.canonical())
        } else {
            let body = Value::Map(vec![(
                "status".to_string(),
                Value::Str("ready".to_string()),
            )]);
            Response::json(200, body.canonical())
        }
    }

    fn experiments(&self) -> Response {
        let experiments: Vec<Value> = engine::registry()
            .iter()
            .map(|experiment| {
                Value::Map(vec![
                    ("id".to_string(), Value::Str(experiment.id().to_string())),
                    (
                        "title".to_string(),
                        Value::Str(experiment.title().to_string()),
                    ),
                ])
            })
            .collect();
        // The accepted release policies come from the core registry, so a
        // newly registered scheme is discoverable (and usable in `/points`
        // bodies and `/run` scenarios) with no serve change.
        let policies: Vec<Value> = earlyreg_core::registry::descriptors()
            .iter()
            .map(|descriptor| {
                Value::Map(vec![
                    ("id".to_string(), Value::Str(descriptor.id.to_string())),
                    (
                        "title".to_string(),
                        Value::Str(descriptor.title.to_string()),
                    ),
                    ("paper".to_string(), Value::Bool(descriptor.paper)),
                ])
            })
            .collect();
        // Likewise the workloads: the string-keyed workload registry is the
        // single source, so a newly registered kernel (synthetic or
        // assembled) is discoverable and immediately usable in `/points`
        // bodies and `/run` scenarios with no serve change.
        let workloads: Vec<Value> = earlyreg_workloads::registry::descriptors()
            .iter()
            .map(|descriptor| {
                Value::Map(vec![
                    ("id".to_string(), Value::Str(descriptor.id.to_string())),
                    (
                        "class".to_string(),
                        Value::Str(match descriptor.class {
                            earlyreg_workloads::WorkloadClass::Int => "int".to_string(),
                            earlyreg_workloads::WorkloadClass::Fp => "fp".to_string(),
                        }),
                    ),
                    (
                        "description".to_string(),
                        Value::Str(descriptor.description.to_string()),
                    ),
                    ("paper".to_string(), Value::Bool(descriptor.paper)),
                ])
            })
            .collect();
        let body = Value::Map(vec![
            ("experiments".to_string(), Value::Seq(experiments)),
            ("policies".to_string(), Value::Seq(policies)),
            ("workloads".to_string(), Value::Seq(workloads)),
        ]);
        Response::json(200, body.canonical())
    }

    fn shutdown_requested(&self) -> Response {
        if !self.config.allow_shutdown {
            return Response::error(
                403,
                "shutdown endpoint is disabled (start with --allow-shutdown)",
            );
        }
        self.shutdown.store(true, Ordering::SeqCst);
        Response::json(
            200,
            Value::Map(vec![(
                "status".to_string(),
                Value::Str("shutting down".to_string()),
            )])
            .canonical(),
        )
    }

    /// `POST /points`: simulate (or serve from cache / an in-flight
    /// computation) a batch of raw points.
    ///
    /// The body contains only the results, so a warm response is
    /// byte-identical to the cold response for the same request; the
    /// `X-Cache-Hits` / `X-Coalesced` / `X-Simulated` headers carry the
    /// per-request counters instead.
    fn points(&self, request: &Request) -> Response {
        let body = match parse_json_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        // Cheap shape checks first: building a workload set for a new scale
        // is expensive, and a malformed request must not trigger it.
        let entries = match body.get("points").and_then(Value::as_seq) {
            Some(entries) if !entries.is_empty() => entries,
            Some(_) => return Response::error(400, "'points' must not be empty"),
            None => return Response::error(400, "missing 'points' array"),
        };
        if entries.len() > self.config.max_request_points {
            return Response::error(
                400,
                &format!("too many points (max {})", self.config.max_request_points),
            );
        }
        let ctx = match self.context_for(&body, Scenario::table2()) {
            Ok(ctx) => ctx,
            Err(response) => return response,
        };

        let mut plan = Vec::with_capacity(entries.len());
        for (index, entry) in entries.iter().enumerate() {
            match self.plan_point(&ctx, entry) {
                Ok(planned) => plan.push(planned),
                Err(message) => {
                    return Response::error(400, &format!("points[{index}]: {message}"))
                }
            }
        }

        let unique = engine::dedup_plan(plan.clone());
        let (results, stats) = self.resolve(&ctx, &unique);

        // Answer in request order (duplicates allowed in the request).
        let mut rendered = Vec::with_capacity(plan.len());
        for planned in &plan {
            let result = results
                .get(planned)
                .expect("resolver answered every planned point");
            rendered.push(Value::Map(vec![
                (
                    "point".to_string(),
                    serde::Serialize::to_value(&result.point),
                ),
                (
                    "stats".to_string(),
                    serde::Serialize::to_value(&result.stats),
                ),
            ]));
        }
        let body = Value::Map(vec![("results".to_string(), Value::Seq(rendered))]);
        let mut response = Response::json(200, body.canonical())
            .with_header("X-Cache-Hits", stats.cache_hits.to_string())
            .with_header("X-Coalesced", stats.coalesced.to_string())
            .with_header("X-Simulated", stats.simulated.to_string())
            .with_header("X-Lru-Hits", stats.lru_hits.to_string())
            .with_header("X-Peer-Hits", stats.peer_hits.to_string())
            .with_header("X-Peer-Failures", stats.peer_failures.to_string())
            .with_header("X-Breaker-Trips", stats.breaker_trips.to_string());
        if unique.len() == 1 {
            // Single-point responses carry the point's full content digest;
            // a chained caller compares it against its own plan so version
            // skew between nodes degrades to local compute instead of
            // silently mixing incompatible statistics.
            response = response.with_header("X-Point-Digest", format!("{:016x}", unique[0].digest));
        }
        response
    }

    /// `POST /run`: run experiments by id through the engine and return
    /// their report envelopes plus the planner summary.
    fn run(&self, request: &Request) -> Response {
        let body = match parse_json_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let scenario = match body.get("scenario") {
            None => Scenario::table2(),
            Some(value) => {
                let Some(text) = value.as_str() else {
                    return Response::error(
                        400,
                        "'scenario' must be a string of 'key = value' lines",
                    );
                };
                match Scenario::parse("request", text) {
                    Ok(scenario) => scenario,
                    Err(message) => {
                        return Response::error(400, &format!("invalid scenario: {message}"))
                    }
                }
            }
        };
        let ctx = match self.context_for(&body, scenario) {
            Ok(ctx) => ctx,
            Err(response) => return response,
        };

        let ids: Vec<String> = match body.get("experiments") {
            None => vec!["all".to_string()],
            Some(value) => {
                let Some(items) = value.as_seq() else {
                    return Response::error(400, "'experiments' must be an array of ids");
                };
                let mut ids = Vec::with_capacity(items.len());
                for item in items {
                    match item.as_str() {
                        Some(id) => ids.push(id.to_string()),
                        None => return Response::error(400, "'experiments' must contain strings"),
                    }
                }
                ids
            }
        };

        let outcome = match engine::run_reports(&ids, &ctx, self) {
            Ok(outcome) => outcome,
            Err(message) => return Response::error(400, &message),
        };

        let summary = &outcome.summary;
        let summary_value = Value::Map(vec![
            (
                "experiments".to_string(),
                Value::Seq(
                    summary
                        .experiments
                        .iter()
                        .map(|id| Value::Str(id.to_string()))
                        .collect(),
                ),
            ),
            ("planned".to_string(), Value::U64(summary.planned as u64)),
            ("unique".to_string(), Value::U64(summary.unique as u64)),
            (
                "cache_hits".to_string(),
                Value::U64(summary.cache_hits as u64),
            ),
            (
                "coalesced".to_string(),
                Value::U64(summary.coalesced as u64),
            ),
            (
                "simulated".to_string(),
                Value::U64(summary.simulated as u64),
            ),
            (
                "lru_hits".to_string(),
                Value::U64(summary.resolve.lru_hits as u64),
            ),
            (
                "peer_hits".to_string(),
                Value::U64(summary.resolve.peer_hits as u64),
            ),
            (
                "peer_failures".to_string(),
                Value::U64(summary.resolve.peer_failures as u64),
            ),
            (
                "breaker_trips".to_string(),
                Value::U64(summary.resolve.breaker_trips as u64),
            ),
        ]);
        let reports: Vec<Value> = outcome.reports.iter().map(|r| r.envelope()).collect();
        let body = Value::Map(vec![
            ("summary".to_string(), summary_value),
            ("reports".to_string(), Value::Seq(reports)),
        ]);
        Response::json(200, body.canonical())
    }

    /// Build the plan context for one request: scale and budget from the
    /// body, workload suite from the per-scale cache.
    fn context_for(&self, body: &Value, scenario: Scenario) -> Result<PlanContext, Response> {
        let scale = match body.get("scale") {
            None => Scale::Smoke,
            Some(value) => {
                let Some(name) = value.as_str() else {
                    return Err(Response::error(400, "'scale' must be a string"));
                };
                ExperimentOptions::parse_scale(name)
                    .map_err(|message| Response::error(400, &message))?
            }
        };
        let max_instructions = match body.get("max_instructions") {
            None => self.config.max_instructions_limit,
            Some(value) => {
                let Some(budget) = value.as_u64() else {
                    return Err(Response::error(
                        400,
                        "'max_instructions' must be a positive integer",
                    ));
                };
                if budget == 0 || budget > self.config.max_instructions_limit {
                    return Err(Response::error(
                        400,
                        &format!(
                            "'max_instructions' must be between 1 and {}",
                            self.config.max_instructions_limit
                        ),
                    ));
                }
                budget
            }
        };
        let options = ExperimentOptions {
            scale,
            threads: self.config.sim_threads,
            max_instructions,
        };
        let set = self.workload_set(scale);
        Ok(PlanContext::with_workloads(options, scenario, set))
    }

    /// The shared workload suite for one scale, built on first use.
    fn workload_set(&self, scale: Scale) -> Arc<WorkloadSet> {
        if let Some(set) = self.suites.lock().expect("suite map poisoned").get(&scale) {
            return Arc::clone(set);
        }
        // Build outside the lock — full-scale generation takes a moment and
        // must not block requests for other scales.  A concurrent builder of
        // the same scale produces an identical set; first insert wins.
        let fresh = Arc::new(WorkloadSet::new(scale));
        let mut suites = self.suites.lock().expect("suite map poisoned");
        Arc::clone(suites.entry(scale).or_insert(fresh))
    }

    /// Parse and validate one `/points` entry into a planned point.
    fn plan_point(&self, ctx: &PlanContext, entry: &Value) -> Result<PlannedPoint, String> {
        let workload_name = entry
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("missing 'workload' name")?;
        // The workload registry resolves aliases/case and produces the
        // canonical unknown-workload error with every registered id listed.
        let descriptor = earlyreg_workloads::registry::parse(workload_name)?;
        let workload = ctx
            .workload(descriptor.id)
            .cloned()
            .expect("every registered workload is in the per-scale set");
        let policy_name = entry
            .get("policy")
            .and_then(Value::as_str)
            .ok_or("missing 'policy'")?;
        let policy = ReleasePolicy::parse(policy_name)?;
        let phys_int = parse_size(entry, "phys_int")?;
        let phys_fp = parse_size(entry, "phys_fp")?;
        let planned = ctx.point(&workload, policy, phys_int, phys_fp);
        planned
            .config
            .validate()
            .map_err(|message| format!("invalid machine configuration: {message}"))?;
        Ok(planned)
    }
}

/// The tiered single-flight resolver.  Every point walks the chain —
/// in-memory LRU → disk cache → (single-flight join) → remote peers →
/// local simulation — and **any tier failure degrades to the next tier**;
/// the last tier always succeeds, so a request completes with bit-identical
/// results no matter how many peers are refusing, stalling or lying.
///
/// Leads are always published before follows are awaited, so two requests
/// that lead and follow each other's points cannot deadlock.
impl PointResolver for Service {
    fn resolve(&self, ctx: &PlanContext, unique: &[PlannedPoint]) -> (ResultSet, ResolveStats) {
        let mut results = ResultSet::default();
        let mut stats = ResolveStats::default();
        let mut leaders = Vec::new();
        let mut followers = Vec::new();

        for planned in unique {
            let canonical = planned.key.canonical();
            if let Some(hit) = self.chain.memory_get(&canonical) {
                stats.lru_hits += 1;
                record(&mut results, planned, hit);
                continue;
            }
            if let Some(cached) = self.cache.as_ref().and_then(|c| c.load(&planned.key)) {
                stats.cache_hits += 1;
                self.chain.memory_put(&canonical, &cached);
                record(&mut results, planned, cached);
                continue;
            }
            match self.flights.join(canonical) {
                Join::Leader(leader) => leaders.push((planned, leader)),
                Join::Follower(follower) => followers.push((planned, follower)),
            }
        }

        // A leader re-checks the memory and disk tiers after winning the
        // join: between this request's initial miss and the join, a previous
        // leader may have resolved, stored and retired its flight — without
        // the re-check that race would re-resolve an already-stored point.
        let mut to_resolve = Vec::with_capacity(leaders.len());
        for (planned, leader) in leaders {
            let canonical = planned.key.canonical();
            if let Some(hit) = self.chain.memory_get(&canonical) {
                stats.lru_hits += 1;
                leader.publish(hit.clone());
                record(&mut results, planned, hit);
                continue;
            }
            match self.cache.as_ref().and_then(|c| c.load(&planned.key)) {
                Some(cached) => {
                    stats.cache_hits += 1;
                    self.chain.memory_put(&canonical, &cached);
                    leader.publish(cached.clone());
                    record(&mut results, planned, cached);
                }
                None => to_resolve.push((planned, leader)),
            }
        }

        // Remote tier: led points whose machine the peer can reproduce are
        // offered to the peer chain, in parallel (peer hops are IO-bound —
        // the sim-thread pool doubles as the connection pool).  A point the
        // chain cannot answer (no peers, ineligible, every hop failed)
        // falls through to local simulation below.
        let mut remote_answers: Vec<Option<SimStats>> =
            (0..to_resolve.len()).map(|_| None).collect();
        if self.chain.has_peers() {
            let requests: Vec<(usize, &PlannedPoint, String)> = to_resolve
                .iter()
                .enumerate()
                .filter(|(_, (planned, _))| resolver::peer_eligible(planned))
                .map(|(slot, (planned, _))| {
                    (slot, *planned, resolver::peer_request_body(ctx, planned))
                })
                .collect();
            if !requests.is_empty() {
                let outcomes =
                    run_parallel(self.config.sim_threads, &requests, |(_, planned, body)| {
                        self.chain.resolve_remote(planned, body)
                    });
                for ((slot, _, _), outcome) in requests.iter().zip(outcomes) {
                    stats.peer_failures += outcome.failures;
                    stats.breaker_trips += outcome.trips;
                    stats.breaker_skips += outcome.breaker_skips;
                    if let Some(remote) = outcome.stats {
                        stats.peer_hits += 1;
                        remote_answers[*slot] = Some(remote);
                    }
                }
            }
        }
        let mut to_simulate = Vec::with_capacity(to_resolve.len());
        for ((planned, leader), answer) in to_resolve.into_iter().zip(remote_answers) {
            match answer {
                Some(remote) => {
                    // Peer answers enter the local tiers exactly like
                    // simulated ones: store before publish.
                    if let Some(cache) = &self.cache {
                        let _ = cache.store(&planned.key, &remote);
                    }
                    self.chain.memory_put(&planned.key.canonical(), &remote);
                    leader.publish(remote.clone());
                    record(&mut results, planned, remote);
                }
                None => to_simulate.push((planned, leader)),
            }
        }

        // Local tier: simulate every remaining led point (the per-request
        // parallelism knob), then store to the cache *before* publishing so
        // late joiners that just missed the flight hit the disk instead of
        // re-simulating.
        let led_points: Vec<&PlannedPoint> =
            to_simulate.iter().map(|(planned, _)| *planned).collect();
        let simulated = run_parallel(self.config.sim_threads, &led_points, |planned| {
            engine::simulate_planned(ctx, planned)
        });
        for ((planned, leader), result) in to_simulate.into_iter().zip(simulated) {
            self.simulations.fetch_add(1, Ordering::Relaxed);
            if let Some(cache) = &self.cache {
                if let Err(error) = cache.store(&planned.key, &result.stats) {
                    eprintln!("warning: cannot cache point {:?}: {error}", planned.point);
                }
            }
            self.chain
                .memory_put(&planned.key.canonical(), &result.stats);
            leader.publish(result.stats.clone());
            stats.simulated += 1;
            results.insert(planned.digest, result);
        }

        for (planned, follower) in followers {
            match follower.wait() {
                Some(flown) => {
                    stats.coalesced += 1;
                    record(&mut results, planned, flown);
                }
                None => {
                    // The leading request died; recover without a
                    // simulate-everywhere herd.
                    self.resolve_after_failed_leader(ctx, planned, &mut results, &mut stats);
                }
            }
        }

        self.coalesced
            .fetch_add(stats.coalesced as u64, Ordering::Relaxed);
        self.lru_hits
            .fetch_add(stats.lru_hits as u64, Ordering::Relaxed);
        self.peer_hits
            .fetch_add(stats.peer_hits as u64, Ordering::Relaxed);
        self.peer_failures
            .fetch_add(stats.peer_failures as u64, Ordering::Relaxed);
        (results, stats)
    }
}

impl Service {
    /// Recover one point whose flight leader failed: re-check the memory
    /// and disk tiers (a racing leader may have landed), then re-join the
    /// flight — exactly one of the released followers becomes the new
    /// leader and walks the remaining tiers (peers, then local simulation);
    /// the rest follow again.  Loops only as long as successive leaders
    /// keep failing.
    fn resolve_after_failed_leader(
        &self,
        ctx: &PlanContext,
        planned: &PlannedPoint,
        results: &mut ResultSet,
        stats: &mut ResolveStats,
    ) {
        loop {
            let canonical = planned.key.canonical();
            if let Some(hit) = self.chain.memory_get(&canonical) {
                stats.lru_hits += 1;
                record(results, planned, hit);
                return;
            }
            if let Some(cached) = self.cache.as_ref().and_then(|c| c.load(&planned.key)) {
                stats.cache_hits += 1;
                self.chain.memory_put(&canonical, &cached);
                record(results, planned, cached);
                return;
            }
            match self.flights.join(canonical) {
                Join::Leader(leader) => {
                    // Same post-join re-check as the batch path: a racing
                    // leader may have stored between our miss and the join.
                    if let Some(cached) = self.cache.as_ref().and_then(|c| c.load(&planned.key)) {
                        stats.cache_hits += 1;
                        self.chain.memory_put(&planned.key.canonical(), &cached);
                        leader.publish(cached.clone());
                        record(results, planned, cached);
                        return;
                    }
                    if self.chain.has_peers() && resolver::peer_eligible(planned) {
                        let body = resolver::peer_request_body(ctx, planned);
                        let outcome = self.chain.resolve_remote(planned, &body);
                        stats.peer_failures += outcome.failures;
                        stats.breaker_trips += outcome.trips;
                        stats.breaker_skips += outcome.breaker_skips;
                        if let Some(remote) = outcome.stats {
                            stats.peer_hits += 1;
                            if let Some(cache) = &self.cache {
                                let _ = cache.store(&planned.key, &remote);
                            }
                            self.chain.memory_put(&planned.key.canonical(), &remote);
                            leader.publish(remote.clone());
                            record(results, planned, remote);
                            return;
                        }
                    }
                    let result = engine::simulate_planned(ctx, planned);
                    self.simulations.fetch_add(1, Ordering::Relaxed);
                    if let Some(cache) = &self.cache {
                        let _ = cache.store(&planned.key, &result.stats);
                    }
                    self.chain
                        .memory_put(&planned.key.canonical(), &result.stats);
                    leader.publish(result.stats.clone());
                    stats.simulated += 1;
                    results.insert(planned.digest, result);
                    return;
                }
                Join::Follower(follower) => {
                    if let Some(flown) = follower.wait() {
                        stats.coalesced += 1;
                        record(results, planned, flown);
                        return;
                    }
                }
            }
        }
    }
}

/// Record one resolved point — the shared tail of every hit/coalesce/
/// simulate path in the resolver.
fn record(results: &mut ResultSet, planned: &PlannedPoint, stats: SimStats) {
    results.insert(
        planned.digest,
        RunResult {
            point: planned.point,
            stats,
        },
    );
}

/// Parse the request body as JSON (an empty body is an empty object, so
/// GET-style POSTs with all defaults work).
fn parse_json_body(request: &Request) -> Result<Value, Response> {
    let text = request
        .body_text()
        .map_err(|_| Response::error(400, "request body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Ok(Value::Map(Vec::new()));
    }
    serde::json::parse(text)
        .map_err(|error| Response::error(400, &format!("invalid JSON body: {error}")))
}

/// Parse a register-file size field.
fn parse_size(entry: &Value, field: &str) -> Result<usize, String> {
    let raw = entry
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{field}'"))?;
    usize::try_from(raw).map_err(|_| format!("'{field}' out of range"))
}
