//! Chaos tests of the tiered resolver chain: a front node resolving
//! through a [`FaultProxy`] to an upstream node, under every fault kind
//! the proxy can inject.
//!
//! The invariant under test is the chain's contract: **any** peer failure
//! degrades to local compute, the response stays `200`, and the body is
//! bit-identical to what a cold, peer-less node produces.  The faults are
//! scheduled deterministically (scripts and fixed seeds), so these tests
//! assert specific breaker transitions instead of sleeping and hoping.

use earlyreg_serve::fault::{Fault, FaultProxy, FaultSchedule};
use earlyreg_serve::{start, ResolverConfig, RunningServer, ServeConfig, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed HTTP response (mirror of the helper in `tests/server.rs`).
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: earlyreg\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    Reply {
        status,
        headers: lines
            .filter_map(|line| line.split_once(':'))
            .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_string()))
            .collect(),
        body: body.to_string(),
    }
}

/// A plain local node: no cache, no peers — the ground truth every chained
/// answer must be bit-identical to.
fn local_node() -> RunningServer {
    start(node_config(ResolverConfig::default())).expect("bind local node")
}

fn node_config(resolver: ResolverConfig) -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_capacity: 64,
        service: ServiceConfig {
            cache_dir: None,
            sim_threads: 2,
            allow_shutdown: true,
            resolver,
            ..ServiceConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// A front node whose only peer is `peer`, tuned for fast test failure:
/// short deadlines (stalls and drips fail in 300 ms, not 2 s) and minimal
/// backoff.
fn front_config(peer: String, retries: u32) -> ServeConfig {
    node_config(ResolverConfig {
        peers: vec![peer],
        deadline_ms: 300,
        retries,
        backoff_base_ms: 1,
        backoff_cap_ms: 5,
        ..ResolverConfig::default()
    })
}

fn point(phys_int: usize, phys_fp: usize) -> String {
    format!(
        r#"{{"scale":"smoke","max_instructions":5000,
          "points":[{{"workload":"swim","policy":"extended","phys_int":{phys_int},"phys_fp":{phys_fp}}}]}}"#
    )
}

/// The matrix: every fault kind, one at a time, between the front node and
/// its peer.  `pass` is the control arm (the peer answers); every other
/// fault must degrade to local compute — same status, same bytes.
#[test]
fn every_fault_kind_degrades_to_local_with_bit_identical_results() {
    let truth = local_node();
    let baseline = request(truth.addr, "POST", "/points", &point(48, 48));
    assert_eq!(baseline.status, 200, "{}", baseline.body);
    let digest = baseline
        .header("x-point-digest")
        .expect("digest")
        .to_string();

    let upstream = local_node();
    for fault in Fault::ALL {
        let proxy = FaultProxy::start(
            upstream.addr.to_string(),
            FaultSchedule::Script(vec![fault]),
        )
        .expect("start proxy");
        let front = start(front_config(proxy.addr().to_string(), 0)).expect("bind front");

        let reply = request(front.addr, "POST", "/points", &point(48, 48));
        assert_eq!(
            reply.status,
            200,
            "fault '{}' must not surface to the caller: {}",
            fault.name(),
            reply.body
        );
        assert_eq!(
            reply.body,
            baseline.body,
            "fault '{}' broke bit-identity",
            fault.name()
        );
        assert_eq!(
            reply.header("x-point-digest"),
            Some(digest.as_str()),
            "fault '{}' changed the content digest",
            fault.name()
        );
        if fault == Fault::Pass {
            assert_eq!(reply.header("x-peer-hits"), Some("1"), "control arm");
            assert_eq!(reply.header("x-peer-failures"), Some("0"));
            assert_eq!(reply.header("x-simulated"), Some("0"));
        } else {
            assert_eq!(
                reply.header("x-simulated"),
                Some("1"),
                "fault '{}' must fall back to local compute",
                fault.name()
            );
            assert_eq!(reply.header("x-peer-hits"), Some("0"));
            assert_eq!(
                reply.header("x-peer-failures"),
                Some("1"),
                "fault '{}' is one failed hop (no retries configured)",
                fault.name()
            );
            // One isolated failure must not trip the breaker (threshold 3).
            assert_eq!(reply.header("x-breaker-trips"), Some("0"));
        }
        assert_eq!(
            proxy.connections(),
            1,
            "fault '{}': exactly one peer hop",
            fault.name()
        );
        front.stop();
        proxy.stop();
    }
    upstream.stop();
    truth.stop();
}

/// The breaker's full lifecycle on a deterministic script: three refused
/// connections trip it open, an open breaker skips the peer without
/// connecting, and after the cooldown a half-open probe that succeeds
/// closes it again — with the peer answering once more.
#[test]
fn breaker_trips_on_sustained_faults_and_recovers_through_half_open() {
    let upstream = local_node();
    // Connections 0‥2 are refused (the trip streak); connection 3 — the
    // half-open probe — passes.  The script cycles, but the test makes
    // exactly four connections.
    let proxy = FaultProxy::start(
        upstream.addr.to_string(),
        FaultSchedule::Script(vec![
            Fault::Refuse,
            Fault::Refuse,
            Fault::Refuse,
            Fault::Pass,
        ]),
    )
    .expect("start proxy");
    let front = start(node_config(ResolverConfig {
        peers: vec![proxy.addr().to_string()],
        deadline_ms: 300,
        retries: 0,
        backoff_base_ms: 1,
        backoff_cap_ms: 5,
        breaker_threshold: 3,
        breaker_cooldown_ms: 150,
        breaker_half_open: 1,
        ..ResolverConfig::default()
    }))
    .expect("bind front");
    let addr = front.addr;

    // Three distinct points, three refused hops: the third failure trips.
    for (index, phys) in [48usize, 56, 64].into_iter().enumerate() {
        let reply = request(addr, "POST", "/points", &point(phys, phys));
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert_eq!(reply.header("x-peer-failures"), Some("1"));
        assert_eq!(reply.header("x-simulated"), Some("1"), "degraded to local");
        let expected_trips = if index == 2 { "1" } else { "0" };
        assert_eq!(
            reply.header("x-breaker-trips"),
            Some(expected_trips),
            "the breaker trips exactly on the third consecutive failure"
        );
    }
    let snapshot = &front.service().chain().peer_snapshots()[0];
    assert_eq!(snapshot.breaker.state, "open");
    assert_eq!(snapshot.breaker.trips, 1);

    // Open breaker: the peer is skipped outright — no new connection.
    let reply = request(addr, "POST", "/points", &point(72, 72));
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("x-peer-failures"),
        Some("0"),
        "no attempt made"
    );
    assert_eq!(reply.header("x-simulated"), Some("1"));
    assert_eq!(proxy.connections(), 3, "an open breaker must not connect");

    // After the cooldown, the half-open probe rides the next request; the
    // scripted `pass` answers it and the breaker closes again.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let reply = request(addr, "POST", "/points", &point(80, 80));
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.header("x-peer-hits"), Some("1"), "probe succeeded");
    assert_eq!(reply.header("x-simulated"), Some("0"));
    let snapshot = &front.service().chain().peer_snapshots()[0];
    assert_eq!(snapshot.breaker.state, "closed", "recovered");
    assert_eq!(snapshot.breaker.trips, 1, "recovery is not a second trip");
    assert_eq!(proxy.connections(), 4);

    front.stop();
    proxy.stop();
    upstream.stop();
}

/// A full scenario sweep (`POST /run`) through the chain under a seeded
/// storm: the report envelopes — the artifacts the paper reproduction
/// pins — must be bit-identical to a fault-free single node's.  (The
/// `summary` legitimately differs: it carries the tier counters.)
#[test]
fn scenario_sweep_reports_survive_chaos_bit_identically() {
    // A scenario that trims the sweep (sizes, policies) without touching
    // the machine config keeps every point peer-eligible.
    let run = r#"{"experiments":["fig11"],"scale":"smoke","max_instructions":2000,
      "scenario":"sweep_sizes = 48\npolicies = conv, ext"}"#;
    let truth = local_node();
    let baseline = request(truth.addr, "POST", "/run", run);
    assert_eq!(baseline.status, 200, "{}", baseline.body);
    let baseline_reports = serde::json::parse(&baseline.body)
        .expect("valid JSON")
        .get("reports")
        .expect("reports")
        .canonical();

    let upstream = local_node();
    let proxy = FaultProxy::start(
        upstream.addr.to_string(),
        FaultSchedule::parse("seed:7").expect("valid spec"),
    )
    .expect("start proxy");
    let front = start(front_config(proxy.addr().to_string(), 1)).expect("bind front");

    let reply = request(front.addr, "POST", "/run", run);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let chaos_reports = serde::json::parse(&reply.body)
        .expect("valid JSON")
        .get("reports")
        .expect("reports")
        .canonical();
    assert_eq!(
        chaos_reports, baseline_reports,
        "report envelopes must survive the storm byte-for-byte"
    );
    assert!(
        proxy.connections() > 0,
        "the sweep must actually exercise the peer tier"
    );

    front.stop();
    proxy.stop();
    upstream.stop();
    truth.stop();
}

/// A seeded storm: the proxy misbehaves pseudo-randomly (fixed seed, so
/// the sequence is reproducible) across a multi-point batch with retries
/// enabled, and the front node still answers every point bit-identically
/// to the peer-less ground truth.
#[test]
fn seeded_chaos_storm_still_answers_bit_identically() {
    let batch = r#"{"scale":"smoke","max_instructions":4000,"points":[
      {"workload":"swim","policy":"extended","phys_int":48,"phys_fp":48},
      {"workload":"perl","policy":"conventional","phys_int":64,"phys_fp":64},
      {"workload":"swim","policy":"basic","phys_int":56,"phys_fp":56}
    ]}"#;
    let truth = local_node();
    let baseline = request(truth.addr, "POST", "/points", batch);
    assert_eq!(baseline.status, 200, "{}", baseline.body);

    let upstream = local_node();
    let proxy = FaultProxy::start(
        upstream.addr.to_string(),
        FaultSchedule::parse("seed:1337").expect("valid spec"),
    )
    .expect("start proxy");
    let front = start(front_config(proxy.addr().to_string(), 1)).expect("bind front");

    let reply = request(front.addr, "POST", "/points", batch);
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(
        reply.body, baseline.body,
        "chaos must never change the answer"
    );
    // Every point was answered by *some* tier.
    let answered: usize = ["x-peer-hits", "x-simulated", "x-lru-hits", "x-coalesced"]
        .iter()
        .map(|h| reply.header(h).unwrap().parse::<usize>().unwrap())
        .sum();
    assert_eq!(answered, 3, "all three unique points resolved");

    front.stop();
    proxy.stop();
    upstream.stop();
    truth.stop();
}
