//! End-to-end tests of `earlyreg-serve` over real TCP connections: routing,
//! cache bit-identity, single-flight dedup of concurrent identical
//! requests, backpressure and graceful shutdown.

use earlyreg_serve::{start, ServeConfig, ServiceConfig};
use serde::value::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

/// A parsed HTTP response.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(key, _)| *key == name)
            .map(|(_, value)| value.as_str())
    }

    fn json(&self) -> Value {
        serde::json::parse(&self.body)
            .unwrap_or_else(|error| panic!("invalid JSON body: {error}\n{}", self.body))
    }
}

/// Issue one request over a fresh connection.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: earlyreg\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");

    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("earlyreg-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(cache_dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        workers: 4,
        queue_capacity: 64,
        service: ServiceConfig {
            cache_dir,
            sim_threads: 1,
            allow_shutdown: true,
            ..ServiceConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn cache_entries(dir: &PathBuf) -> Vec<String> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .map(|entry| entry.unwrap().file_name().into_string().unwrap())
            .collect(),
        Err(_) => Vec::new(),
    }
}

const SWIM_POINT: &str = r#"{"scale":"smoke","max_instructions":5000,
  "points":[{"workload":"swim","policy":"extended","phys_int":48,"phys_fp":48}]}"#;

#[test]
fn healthz_and_experiments_respond() {
    let server = start(test_config(None)).expect("bind");
    let addr = server.addr;

    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    // Probes append query strings; routing must ignore them.
    assert_eq!(request(addr, "GET", "/healthz?probe=1", "").status, 200);
    let health_json = health.json();
    assert_eq!(
        health_json.get("status").and_then(Value::as_str),
        Some("ok")
    );
    assert_eq!(
        health_json.get("simulations").and_then(Value::as_u64),
        Some(0)
    );

    let experiments = request(addr, "GET", "/experiments", "");
    assert_eq!(experiments.status, 200);
    let listing = experiments.json();
    let listed = listing
        .get("experiments")
        .and_then(Value::as_seq)
        .expect("experiments array")
        .len();
    assert_eq!(listed, 10, "the full registry is listed");
    assert!(experiments.body.contains("\"fig10\""));

    // The accepted release policies are listed from the core registry, one
    // entry per registered scheme.
    let policies = listing
        .get("policies")
        .and_then(Value::as_seq)
        .expect("policies array");
    let listed_ids: Vec<&str> = policies
        .iter()
        .map(|p| p.get("id").and_then(Value::as_str).expect("policy id"))
        .collect();
    assert_eq!(listed_ids, earlyreg_core::registry::ids());

    // The workloads are listed from the workload registry, one entry per
    // registered kernel (synthetic and assembled alike).
    let workloads = listing
        .get("workloads")
        .and_then(Value::as_seq)
        .expect("workloads array");
    let listed_ids: Vec<&str> = workloads
        .iter()
        .map(|w| w.get("id").and_then(Value::as_str).expect("workload id"))
        .collect();
    assert_eq!(listed_ids, earlyreg_workloads::registry::ids());
    for w in workloads {
        let class = w.get("class").and_then(Value::as_str).expect("class");
        assert!(class == "int" || class == "fp");
        assert!(w.get("paper").is_some());
    }

    server.stop();
}

/// Every workload id the registry (and therefore `GET /experiments`) lists
/// is accepted by `POST /points` — discovered from the listing, not
/// hard-coded, so a new registration extends this test automatically.
#[test]
fn every_registered_workload_round_trips_through_points() {
    let server = start(test_config(None)).expect("bind");
    let addr = server.addr;

    let listing = request(addr, "GET", "/experiments", "").json();
    let ids: Vec<String> = listing
        .get("workloads")
        .and_then(Value::as_seq)
        .expect("workloads array")
        .iter()
        .map(|w| w.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect();
    assert!(ids.contains(&"swim".to_string()));
    assert!(ids.contains(&"matmul".to_string()));
    for id in ids {
        let body = format!(
            r#"{{"scale":"smoke","max_instructions":2000,
               "points":[{{"workload":"{id}","policy":"extended","phys_int":64,"phys_fp":64}}]}}"#
        );
        let reply = request(addr, "POST", "/points", &body);
        assert_eq!(reply.status, 200, "workload '{id}': {}", reply.body);
        assert!(reply.body.contains(&format!("\"workload\":\"{id}\"")));
    }
    server.stop();
}

/// Every policy id the registry (and therefore `GET /experiments`) lists is
/// accepted by `POST /points` — the serve ↔ registry round-trip the CI
/// policy-matrix smoke also exercises.
#[test]
fn every_registered_policy_round_trips_through_points() {
    let server = start(test_config(None)).expect("bind");
    let addr = server.addr;

    let listing = request(addr, "GET", "/experiments", "").json();
    let ids: Vec<String> = listing
        .get("policies")
        .and_then(Value::as_seq)
        .expect("policies array")
        .iter()
        .map(|p| p.get("id").and_then(Value::as_str).unwrap().to_string())
        .collect();
    assert!(ids.contains(&"oracle".to_string()));
    assert!(ids.contains(&"counter".to_string()));
    for id in ids {
        let body = format!(
            r#"{{"scale":"smoke","max_instructions":2000,
               "points":[{{"workload":"perl","policy":"{id}","phys_int":64,"phys_fp":64}}]}}"#
        );
        let reply = request(addr, "POST", "/points", &body);
        assert_eq!(reply.status, 200, "policy '{id}': {}", reply.body);
        assert!(reply.body.contains(&format!("\"policy\":\"{id}\"")));
    }
    server.stop();
}

#[test]
fn routing_rejects_unknown_paths_methods_and_bad_json() {
    let server = start(test_config(None)).expect("bind");
    let addr = server.addr;

    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(addr, "DELETE", "/points", "").status, 405);
    assert_eq!(request(addr, "POST", "/points", "{not json").status, 400);
    assert_eq!(request(addr, "POST", "/points", "{}").status, 400); // no points
    let unknown_workload =
        r#"{"points":[{"workload":"doom","policy":"basic","phys_int":48,"phys_fp":48}]}"#;
    let reply = request(addr, "POST", "/points", unknown_workload);
    assert_eq!(reply.status, 400);
    assert!(
        reply.body.contains("unknown workload 'doom'"),
        "{}",
        reply.body
    );
    for id in earlyreg_workloads::registry::ids() {
        assert!(
            reply.body.contains(id),
            "the 400 body must list '{id}': {}",
            reply.body
        );
    }
    // An unknown policy is a 400 (not a 500) whose message enumerates the
    // registered ids so the client can self-correct.
    let bad_policy =
        r#"{"points":[{"workload":"swim","policy":"yolo","phys_int":48,"phys_fp":48}]}"#;
    let reply = request(addr, "POST", "/points", bad_policy);
    assert_eq!(reply.status, 400);
    assert!(
        reply.body.contains("unknown policy 'yolo'"),
        "{}",
        reply.body
    );
    for id in earlyreg_core::registry::ids() {
        assert!(
            reply.body.contains(id),
            "the 400 body must list '{id}': {}",
            reply.body
        );
    }

    server.stop();
}

/// The service accepts the same policy spellings as `run_workload --policy`
/// (one shared parser): abbreviations and any casing.
#[test]
fn policy_aliases_match_the_cli() {
    let server = start(test_config(None)).expect("bind");
    let addr = server.addr;
    for policy in ["ext", "Extended", "EXTENDED", "conv"] {
        let body = format!(
            r#"{{"scale":"smoke","max_instructions":2000,
               "points":[{{"workload":"perl","policy":"{policy}","phys_int":64,"phys_fp":64}}]}}"#
        );
        let reply = request(addr, "POST", "/points", &body);
        assert_eq!(reply.status, 200, "policy '{policy}': {}", reply.body);
    }
    server.stop();
}

/// An oversized body is answered 413 — and the client actually receives it
/// (the server drains the unread bytes before closing instead of resetting
/// the connection).
#[test]
fn oversized_body_receives_a_413() {
    let server = start(test_config(None)).expect("bind");
    let huge = "x".repeat(2 * 1024 * 1024);
    let reply = request(server.addr, "POST", "/points", &huge);
    assert_eq!(reply.status, 413);
    assert!(reply.body.contains("exceeds"));
    server.stop();
}

/// `Expect: 100-continue` clients (curl with >1 KiB bodies) receive the
/// interim response instead of stalling out their expect timeout.
#[test]
fn expect_100_continue_is_answered() {
    let server = start(test_config(None)).expect("bind");
    let body = r#"{"scale":"smoke","max_instructions":2000,
      "points":[{"workload":"perl","policy":"basic","phys_int":64,"phys_fp":64}]}"#;

    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let head = format!(
        "POST /points HTTP/1.1\r\nHost: earlyreg\r\nExpect: 100-continue\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    // A strict client would wait for the interim response here; sending the
    // body immediately is also legal and keeps the test deterministic.
    stream.write_all(body.as_bytes()).expect("send body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read responses");

    assert!(
        raw.starts_with("HTTP/1.1 100 Continue\r\n\r\n"),
        "interim response first: {raw:?}"
    );
    let after = &raw["HTTP/1.1 100 Continue\r\n\r\n".len()..];
    assert!(
        after.starts_with("HTTP/1.1 200 OK"),
        "then the real one: {after:?}"
    );
    assert!(after.contains("\"results\""));
    server.stop();
}

/// Acceptance criterion: a warm `POST /points` body is bit-identical to the
/// cold one, the point is simulated exactly once, and the counters move to
/// the headers (not the body) so identity holds.
#[test]
fn warm_points_response_is_bit_identical_to_cold() {
    let cache_dir = temp_cache("warmcold");
    let server = start(test_config(Some(cache_dir.clone()))).expect("bind");
    let addr = server.addr;

    let cold = request(addr, "POST", "/points", SWIM_POINT);
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-cache-hits"), Some("0"));
    assert_eq!(cold.header("x-simulated"), Some("1"));
    // Single-point responses carry the content digest for peer validation.
    assert_eq!(
        cold.header("x-point-digest").map(str::len),
        Some(16),
        "single-point responses carry a 16-hex-digit digest"
    );

    // The warm request is answered by the in-memory LRU tier, which sits
    // in front of the disk cache.
    let warm = request(addr, "POST", "/points", SWIM_POINT);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-lru-hits"), Some("1"));
    assert_eq!(warm.header("x-cache-hits"), Some("0"));
    assert_eq!(warm.header("x-simulated"), Some("0"));
    assert_eq!(
        warm.header("x-point-digest"),
        cold.header("x-point-digest"),
        "tier changes must not change identity"
    );

    assert_eq!(cold.body, warm.body, "warm body must be bit-identical");
    assert_eq!(server.service().simulations(), 1, "one simulation total");
    let entries = cache_entries(&cache_dir);
    assert_eq!(entries.len(), 1, "one cache entry: {entries:?}");
    assert!(entries[0].ends_with(".json"));

    // The response carries real statistics.
    let stats = cold.json();
    let results = stats.get("results").and_then(Value::as_seq).unwrap();
    assert_eq!(results.len(), 1);
    let committed = results[0]
        .get("stats")
        .and_then(|s| s.get("committed"))
        .and_then(Value::as_u64)
        .expect("committed counter");
    assert!(committed > 1_000, "committed = {committed}");

    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Acceptance criterion: M concurrent identical requests perform exactly
/// one simulation — proven by the cache-dir entry count and the service's
/// simulation counter.
#[test]
fn concurrent_identical_points_simulate_exactly_once() {
    let cache_dir = temp_cache("singleflight");
    let server = start(test_config(Some(cache_dir.clone()))).expect("bind");
    let addr = server.addr;

    const CONCURRENT: usize = 8;
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CONCURRENT)
            .map(|_| {
                scope.spawn(move || {
                    let reply = request(addr, "POST", "/points", SWIM_POINT);
                    assert_eq!(reply.status, 200, "{}", reply.body);
                    reply.body
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "every response is bit-identical");
    }
    assert_eq!(
        server.service().simulations(),
        1,
        "identical in-flight points must simulate exactly once"
    );
    let entries = cache_entries(&cache_dir);
    assert_eq!(entries.len(), 1, "one cache entry: {entries:?}");

    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Distinct points in one batch resolve independently and in request order,
/// and duplicates within a batch collapse.
#[test]
fn batches_resolve_in_request_order_and_dedup_within() {
    let server = start(test_config(None)).expect("bind");
    let addr = server.addr;

    let body = r#"{"scale":"smoke","max_instructions":3000,"points":[
      {"workload":"perl","policy":"conventional","phys_int":64,"phys_fp":64},
      {"workload":"swim","policy":"extended","phys_int":48,"phys_fp":48},
      {"workload":"perl","policy":"conventional","phys_int":64,"phys_fp":64}
    ]}"#;
    let reply = request(addr, "POST", "/points", body);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let json = reply.json();
    let results = json.get("results").and_then(Value::as_seq).unwrap();
    assert_eq!(results.len(), 3, "duplicates are answered, not dropped");
    let workload = |index: usize| {
        results[index]
            .get("point")
            .and_then(|p| p.get("workload"))
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    };
    assert_eq!(workload(0), "perl");
    assert_eq!(workload(1), "swim");
    assert_eq!(workload(2), "perl");
    assert_eq!(
        results[0], results[2],
        "duplicate points answer identically"
    );
    assert_eq!(reply.header("x-simulated"), Some("2"), "2 unique points");
    assert_eq!(server.service().simulations(), 2);

    server.stop();
}

/// `POST /run` produces the same report envelopes the CLI's JSON backend
/// writes, plus the planner summary.
#[test]
fn run_endpoint_returns_report_envelopes() {
    let server = start(test_config(None)).expect("bind");
    let addr = server.addr;

    let reply = request(
        addr,
        "POST",
        "/run",
        r#"{"experiments":["table1","table3"],"scale":"smoke","max_instructions":3000}"#,
    );
    assert_eq!(reply.status, 200, "{}", reply.body);
    let json = reply.json();
    let reports = json.get("reports").and_then(Value::as_seq).unwrap();
    assert_eq!(reports.len(), 2);
    assert_eq!(
        reports[0].get("experiment").and_then(Value::as_str),
        Some("table1")
    );
    assert!(reports[0].get("data").is_some());
    let summary = json.get("summary").expect("summary");
    assert_eq!(summary.get("planned").and_then(Value::as_u64), Some(0));

    // Unknown experiment ids are a client error.
    let bad = request(addr, "POST", "/run", r#"{"experiments":["fig99"]}"#);
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("unknown experiment"));

    // A scenario override must parse — and a broken one is rejected.
    let with_scenario = request(
        addr,
        "POST",
        "/run",
        r#"{"experiments":["table1"],"scenario":"ros_size = 64"}"#,
    );
    assert_eq!(with_scenario.status, 200);
    let bad_scenario = request(
        addr,
        "POST",
        "/run",
        r#"{"experiments":["table1"],"scenario":"bogus_key = 1"}"#,
    );
    assert_eq!(bad_scenario.status, 400);

    // A scenario can retarget the figure sweeps at any registered policy
    // set; an unknown policy name in it is a 400 naming the registered ids.
    let with_policies = request(
        addr,
        "POST",
        "/run",
        r#"{"experiments":["fig10"],"scale":"smoke","max_instructions":2000,
            "scenario":"policies = conv, counter"}"#,
    );
    assert_eq!(with_policies.status, 200, "{}", with_policies.body);
    assert!(with_policies.body.contains("counter"));
    let bad_policy_scenario = request(
        addr,
        "POST",
        "/run",
        r#"{"experiments":["fig10"],"scenario":"policies = conv, warp9"}"#,
    );
    assert_eq!(bad_policy_scenario.status, 400);
    assert!(
        bad_policy_scenario.body.contains("unknown policy 'warp9'"),
        "{}",
        bad_policy_scenario.body
    );
    assert!(bad_policy_scenario.body.contains("oracle"));

    server.stop();
}

/// A full request queue sheds load with `503` + `Retry-After` instead of
/// queueing without bound.
#[test]
fn full_queue_answers_503() {
    let config = ServeConfig {
        queue_capacity: 0, // every request overflows the queue immediately
        ..test_config(None)
    };
    let server = start(config).expect("bind");
    let reply = request(server.addr, "GET", "/healthz", "");
    assert_eq!(reply.status, 503);
    assert_eq!(reply.header("retry-after"), Some("1"));
    assert!(reply.body.contains("queue"));
    server.stop();
}

/// `POST /shutdown` (when allowed) stops the server: the accept loop exits,
/// `join` returns, and the port stops answering.
#[test]
fn shutdown_endpoint_stops_the_server_cleanly() {
    let server = start(test_config(None)).expect("bind");
    let addr = server.addr;

    let reply = request(addr, "POST", "/shutdown", "");
    assert_eq!(reply.status, 200);
    assert!(reply.body.contains("shutting down"));
    server.join(); // must return: the accept loop saw the flag

    // The listener is gone; a fresh connection must fail (give the OS a
    // moment to tear the socket down).
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        TcpStream::connect(addr).is_err(),
        "the port must stop answering after shutdown"
    );
}

/// Readiness is distinct from liveness: once draining begins, `/readyz`
/// answers `503` while `/healthz` stays `200` and — with a drain grace
/// window configured — the listener keeps serving real requests, so a load
/// balancer can deroute the node before its socket closes.
#[test]
fn readyz_flips_to_503_during_the_drain_window() {
    let config = ServeConfig {
        drain_grace: std::time::Duration::from_millis(600),
        ..test_config(None)
    };
    let server = start(config).expect("bind");
    let addr = server.addr;

    let ready = request(addr, "GET", "/readyz", "");
    assert_eq!(ready.status, 200);
    assert!(ready.body.contains("\"ready\""), "{}", ready.body);

    let begun = std::time::Instant::now();
    assert_eq!(request(addr, "POST", "/shutdown", "").status, 200);

    // Inside the grace window: still accepting, but no longer ready.
    let draining = request(addr, "GET", "/readyz", "");
    assert_eq!(draining.status, 503, "draining nodes are not ready");
    assert!(draining.body.contains("\"draining\""), "{}", draining.body);
    assert_eq!(
        request(addr, "GET", "/healthz", "").status,
        200,
        "liveness must hold while draining"
    );
    assert_eq!(
        request(addr, "POST", "/points", SWIM_POINT).status,
        200,
        "requests racing the shutdown are served, not reset"
    );

    server.join(); // returns once the window ends and workers drain
    assert!(
        begun.elapsed() >= std::time::Duration::from_millis(600),
        "the listener must honour the full grace window"
    );
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        TcpStream::connect(addr).is_err(),
        "after the window the port stops answering"
    );
}

/// Without `--allow-shutdown` the endpoint is refused.
#[test]
fn shutdown_endpoint_is_disabled_by_default() {
    let config = ServeConfig {
        service: ServiceConfig {
            cache_dir: None,
            ..ServiceConfig::default()
        },
        ..test_config(None)
    };
    assert!(!config.service.allow_shutdown);
    let server = start(config).expect("bind");
    let reply = request(server.addr, "POST", "/shutdown", "");
    assert_eq!(reply.status, 403);
    // The server is still alive.
    assert_eq!(request(server.addr, "GET", "/healthz", "").status, 200);
    server.stop();
}
