//! Rename-side bookkeeping of in-flight instructions.
//!
//! The paper's Reorder Structure (ROS) keeps, next to the usual pipeline
//! state, the rename-related fields shown in Figures 1 and 5: the logical and
//! physical identifiers of the operands, the previous-version identifier
//! `old_pd`, the conventional-release enable `rel_old` and the three
//! early-release bits `rel1`/`rel2`/`reld`.  The cycle-level simulator keeps
//! its own pipeline-status view of the reorder structure; this module holds
//! the *rename engine's* view, which is what the release mechanisms operate
//! on.
//!
//! Entries are stored in program order in an [`IdRing`]: a slot-indexed ring
//! buffer where an [`InstrId`] resolves to its entry in O(1) (identifiers are
//! strictly increasing in program order, even across squashes — see the
//! `id_ring` module documentation for how squash gaps are handled).

use crate::id_ring::{HasInstrId, IdRing};
use crate::types::{InstrId, PhysReg, UseKind};
use earlyreg_isa::ArchReg;

/// Destination-register rename information of one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DstRename {
    /// The logical destination register (`rd`).
    pub arch: ArchReg,
    /// The physical register holding the new version (`pd`).
    pub phys: PhysReg,
    /// The physical register holding the previous version (`old_pd`).
    pub prev: PhysReg,
    /// True when the previous version's register was *reused* as the new
    /// version (Section 3.2 optimisation): no new register was allocated.
    pub reused: bool,
}

/// Rename bookkeeping for one in-flight instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct RosEntry {
    /// Unique dynamic instruction identifier.
    pub id: InstrId,
    /// Source operands: logical and physical identifiers (`r1/p1`, `r2/p2`).
    pub srcs: [Option<(ArchReg, PhysReg)>; 2],
    /// Destination operand, if the instruction writes a register.
    pub dst: Option<DstRename>,
    /// True for conditional branches (they own a checkpoint / RelQue level).
    pub is_branch: bool,
    /// Early-release bits `rel1`, `rel2`, `reld`: when set, the corresponding
    /// physical operand register is released when this instruction commits.
    /// In the extended mechanism this array is the `RwC0` row of the entry.
    pub rel: [bool; 3],
    /// Conventional-release enable (`rel_old`).  When set, `old_pd` is
    /// released when this instruction commits.  Always false for the extended
    /// mechanism (which removes the field altogether) and for instructions
    /// without a destination.
    pub rel_old: bool,
}

impl RosEntry {
    /// The physical register referenced by an operand slot, if present.
    pub fn operand_phys(&self, kind: UseKind) -> Option<(ArchReg, PhysReg)> {
        match kind {
            UseKind::Src1 => self.srcs[0],
            UseKind::Src2 => self.srcs[1],
            UseKind::Dst => self.dst.map(|d| (d.arch, d.phys)),
        }
    }
}

impl HasInstrId for RosEntry {
    fn instr_id(&self) -> InstrId {
        self.id
    }
}

/// Program-ordered collection of in-flight [`RosEntry`]s.
#[derive(Debug, Clone)]
pub struct RosBook {
    entries: IdRing<RosEntry>,
}

impl Default for RosBook {
    fn default() -> Self {
        Self::new()
    }
}

impl RosBook {
    /// Empty book (grows on demand; the pipeline bounds occupancy by the
    /// reorder-structure size before renaming).
    pub fn new() -> Self {
        RosBook {
            entries: IdRing::growable(128),
        }
    }

    /// Number of in-flight instructions tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no instruction is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append a newly renamed instruction (must be younger than everything
    /// already present).
    pub fn push(&mut self, entry: RosEntry) {
        self.entries.push(entry);
    }

    /// Shared access to an entry by id (O(1)).
    pub fn get(&self, id: InstrId) -> Option<&RosEntry> {
        self.entries.get(id)
    }

    /// Mutable access to an entry by id (O(1)).
    pub fn get_mut(&mut self, id: InstrId) -> Option<&mut RosEntry> {
        self.entries.get_mut(id)
    }

    /// The oldest in-flight entry.
    pub fn head(&self) -> Option<&RosEntry> {
        self.entries.front()
    }

    /// Remove and return the oldest entry; panics if it is not `id`
    /// (commit must proceed in program order).
    pub fn pop_head(&mut self, id: InstrId) -> RosEntry {
        assert!(
            !self.entries.is_empty(),
            "commit of {id} with an empty reorder structure"
        );
        let head = self.entries.pop_front();
        assert_eq!(
            head.id, id,
            "commit must be in program order: expected {}, got {id}",
            head.id
        );
        head
    }

    /// Remove every entry strictly younger than `id` (branch misprediction
    /// recovery) or younger-or-equal (`inclusive = true`, exception
    /// recovery), appending them youngest-first to `out` (which is cleared
    /// first).  The allocation-free path used by the rename unit.
    pub fn squash_after_into(&mut self, id: InstrId, inclusive: bool, out: &mut Vec<RosEntry>) {
        out.clear();
        self.entries.squash_after(id, inclusive, |e| out.push(e));
    }

    /// As [`RosBook::squash_after_into`], returning a fresh vector
    /// (convenience for tests).
    pub fn squash_after(&mut self, id: InstrId, inclusive: bool) -> Vec<RosEntry> {
        let mut out = Vec::new();
        self.squash_after_into(id, inclusive, &mut out);
        out
    }

    /// Iterate oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RosEntry> {
        self.entries.iter()
    }

    /// Drain every entry (exception recovery), youngest first, into `out`
    /// (which is cleared first).
    pub fn drain_all_into(&mut self, out: &mut Vec<RosEntry>) {
        out.clear();
        self.entries.drain_all(|e| out.push(e));
    }

    /// As [`RosBook::drain_all_into`], returning a fresh vector (convenience
    /// for tests).
    pub fn drain_all(&mut self) -> Vec<RosEntry> {
        let mut out = Vec::new();
        self.drain_all_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::ArchReg;

    fn entry(id: u64) -> RosEntry {
        RosEntry {
            id: InstrId(id),
            srcs: [Some((ArchReg::int(1), PhysReg(1))), None],
            dst: Some(DstRename {
                arch: ArchReg::int(2),
                phys: PhysReg(40),
                prev: PhysReg(2),
                reused: false,
            }),
            is_branch: false,
            rel: [false; 3],
            rel_old: true,
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut book = RosBook::new();
        for id in [3, 7, 9, 20] {
            book.push(entry(id));
        }
        assert_eq!(book.len(), 4);
        assert!(book.get(InstrId(9)).is_some());
        assert!(book.get(InstrId(10)).is_none());
        assert_eq!(book.head().unwrap().id, InstrId(3));
    }

    #[test]
    fn lookup_with_id_gaps() {
        let mut book = RosBook::new();
        book.push(entry(1));
        book.push(entry(100));
        book.push(entry(101));
        assert!(book.get(InstrId(100)).is_some());
        assert!(book.get(InstrId(50)).is_none());
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_push_panics() {
        let mut book = RosBook::new();
        book.push(entry(5));
        book.push(entry(4));
    }

    #[test]
    fn pop_head_in_order() {
        let mut book = RosBook::new();
        book.push(entry(1));
        book.push(entry(2));
        let e = book.pop_head(InstrId(1));
        assert_eq!(e.id, InstrId(1));
        assert_eq!(book.len(), 1);
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn pop_head_out_of_order_panics() {
        let mut book = RosBook::new();
        book.push(entry(1));
        book.push(entry(2));
        let _ = book.pop_head(InstrId(2));
    }

    #[test]
    fn squash_after_exclusive_keeps_the_pivot() {
        let mut book = RosBook::new();
        for id in 1..=6 {
            book.push(entry(id));
        }
        let squashed = book.squash_after(InstrId(3), false);
        assert_eq!(squashed.len(), 3);
        assert_eq!(squashed[0].id, InstrId(6)); // youngest first
        assert_eq!(book.len(), 3);
        assert!(book.get(InstrId(3)).is_some());
    }

    #[test]
    fn squash_after_inclusive_removes_the_pivot() {
        let mut book = RosBook::new();
        for id in 1..=4 {
            book.push(entry(id));
        }
        let squashed = book.squash_after(InstrId(3), true);
        assert_eq!(squashed.len(), 2);
        assert!(book.get(InstrId(3)).is_none());
        assert!(book.get(InstrId(2)).is_some());
    }

    #[test]
    fn drain_all_empties_the_book() {
        let mut book = RosBook::new();
        for id in 1..=3 {
            book.push(entry(id));
        }
        let drained = book.drain_all();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].id, InstrId(3));
        assert!(book.is_empty());
    }

    #[test]
    fn operand_phys_selects_the_right_slot() {
        let e = entry(1);
        assert_eq!(
            e.operand_phys(UseKind::Src1),
            Some((ArchReg::int(1), PhysReg(1)))
        );
        assert_eq!(e.operand_phys(UseKind::Src2), None);
        assert_eq!(
            e.operand_phys(UseKind::Dst),
            Some((ArchReg::int(2), PhysReg(40)))
        );
    }
}
