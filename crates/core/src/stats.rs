//! Release / allocation accounting.
//!
//! These counters are the raw material for the evaluation: how many registers
//! were released by which path, how often the basic/extended mechanisms could
//! retime a release, how many redefinitions fell back to the conventional
//! path because of pending branches, and so on.

use crate::types::ReleaseReason;
use earlyreg_isa::RegClass;
use serde::{Deserialize, Serialize};

/// Per-class release/allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassReleaseStats {
    /// Physical registers allocated (excluding the initial architectural
    /// mappings and excluding reuses).
    pub allocations: u64,
    /// Redefinitions that reused the previous version's register
    /// (Section 3.2 optimisation).
    pub reuses: u64,
    /// Conventional releases (at next-version commit).
    pub conventional_releases: u64,
    /// Early releases performed at the commit of the last-use instruction
    /// (rel bits / RwC0).
    pub early_at_lu_commit: u64,
    /// Immediate releases performed at next-version decode (last use already
    /// committed, no pending branches).
    pub immediate_at_decode: u64,
    /// Conditional releases performed when the oldest pending branch was
    /// confirmed (RwNS1).
    pub branch_confirm_releases: u64,
    /// Registers of squashed instructions returned on branch misprediction.
    pub squash_mispredict_frees: u64,
    /// Registers of squashed instructions returned on exception recovery.
    pub squash_exception_frees: u64,
    /// Redefinitions that had to fall back to the conventional release path
    /// because an unverified branch separated them from the last use
    /// (only meaningful for the basic mechanism).
    pub fallback_to_conventional: u64,
    /// Redefinitions whose release was scheduled conditionally in the Release
    /// Queue (extended mechanism only).
    pub conditional_schedulings: u64,
}

impl ClassReleaseStats {
    /// Total registers returned to the free list (all reasons, excluding
    /// reuses which never leave the allocated state).
    pub fn total_frees(&self) -> u64 {
        self.conventional_releases
            + self.early_at_lu_commit
            + self.immediate_at_decode
            + self.branch_confirm_releases
            + self.squash_mispredict_frees
            + self.squash_exception_frees
    }

    /// Total releases attributable to the early-release mechanisms
    /// (including reuses, which end the previous version's lifetime early).
    pub fn total_early(&self) -> u64 {
        self.early_at_lu_commit
            + self.immediate_at_decode
            + self.branch_confirm_releases
            + self.reuses
    }

    /// Record a release by reason.
    pub fn record_release(&mut self, reason: ReleaseReason) {
        match reason {
            ReleaseReason::Conventional => self.conventional_releases += 1,
            ReleaseReason::EarlyAtLuCommit => self.early_at_lu_commit += 1,
            ReleaseReason::ImmediateAtDecode => self.immediate_at_decode += 1,
            ReleaseReason::Reused => self.reuses += 1,
            ReleaseReason::BranchConfirm => self.branch_confirm_releases += 1,
            ReleaseReason::SquashMispredict => self.squash_mispredict_frees += 1,
            ReleaseReason::SquashException => self.squash_exception_frees += 1,
        }
    }
}

/// Combined release statistics for both register classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReleaseStats {
    /// Integer-file counters.
    pub int: ClassReleaseStats,
    /// FP-file counters.
    pub fp: ClassReleaseStats,
}

impl ReleaseStats {
    /// Counters for one class.
    pub fn class(&self, class: RegClass) -> &ClassReleaseStats {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    /// Mutable counters for one class.
    pub fn class_mut(&mut self, class: RegClass) -> &mut ClassReleaseStats {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_release_routes_to_the_right_counter() {
        let mut s = ClassReleaseStats::default();
        s.record_release(ReleaseReason::Conventional);
        s.record_release(ReleaseReason::EarlyAtLuCommit);
        s.record_release(ReleaseReason::EarlyAtLuCommit);
        s.record_release(ReleaseReason::ImmediateAtDecode);
        s.record_release(ReleaseReason::Reused);
        s.record_release(ReleaseReason::BranchConfirm);
        s.record_release(ReleaseReason::SquashMispredict);
        s.record_release(ReleaseReason::SquashException);
        assert_eq!(s.conventional_releases, 1);
        assert_eq!(s.early_at_lu_commit, 2);
        assert_eq!(s.immediate_at_decode, 1);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.branch_confirm_releases, 1);
        assert_eq!(s.squash_mispredict_frees, 1);
        assert_eq!(s.squash_exception_frees, 1);
        assert_eq!(s.total_frees(), 7);
        assert_eq!(s.total_early(), 5);
    }

    #[test]
    fn per_class_access() {
        let mut s = ReleaseStats::default();
        s.class_mut(RegClass::Int).allocations = 3;
        s.class_mut(RegClass::Fp).allocations = 5;
        assert_eq!(s.class(RegClass::Int).allocations, 3);
        assert_eq!(s.class(RegClass::Fp).allocations, 5);
    }
}
