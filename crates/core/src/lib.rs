//! # earlyreg-core
//!
//! The contribution of *"Hardware Schemes for Early Register Release"*
//! (Monreal, Viñals, González, Valero — ICPP 2002): register renaming for a
//! merged physical register file with three release policies —
//! **conventional**, **basic early release** and **extended early release** —
//! plus every hardware structure the mechanisms need:
//!
//! * [`free_list`] — the per-class free list of physical registers;
//! * [`map_table`] — the speculative Map Table and the In-Order Map Table;
//! * [`lus_table`] — the Last-Uses Table (Section 3.1, Figure 5);
//! * [`ros`] — the rename-side view of the Reorder Structure with the
//!   `old_pd` / `rel_old` / `rel1`/`rel2`/`reld` fields;
//! * [`release_queue`] — the Release Queue of the extended mechanism
//!   (Section 4, Figures 7–8);
//! * [`regstate`] — exact Empty/Ready/Idle occupancy accounting (Figures 2–3);
//! * [`rename`] — the [`RenameUnit`](rename::RenameUnit) driving all of the
//!   above, including branch-misprediction and precise-exception recovery;
//! * [`scheme`] — the open release-scheme layer: the
//!   [`ReleaseScheme`](scheme::ReleaseScheme) trait every policy implements;
//! * [`schemes`] — the built-in schemes (the paper's three plus the oracle
//!   upper bound and a counter-based conservative scheme);
//! * [`registry`] — the string-keyed policy registry every layer above
//!   enumerates instead of hard-coding policy lists;
//! * [`stats`] — release/allocation accounting.
//!
//! The crate is deliberately independent of the cycle-level simulator: the
//! `RenameUnit` is driven through a small event API (rename, value written,
//! commit, branch resolved, recover), which is what `earlyreg-sim` calls from
//! its pipeline and what the unit tests and property tests exercise directly.

pub mod free_list;
pub mod id_ring;
pub mod lus_table;
pub mod map_table;
pub mod registry;
pub mod regstate;
pub mod release_queue;
pub mod rename;
pub mod ros;
pub mod scheme;
pub mod schemes;
pub mod stats;
pub mod types;

#[cfg(test)]
mod rename_tests;

pub use free_list::FreeList;
pub use id_ring::{HasInstrId, IdRing};
pub use lus_table::{LusEntry, LusTable};
pub use map_table::{MapTable, MapTablePair};
pub use registry::{PolicyDescriptor, PAPER_POLICIES};
pub use regstate::{OccupancyTotals, OccupancyTracker};
pub use release_queue::{ConfirmOutcome, RelQueLevel, ReleaseQueue};
pub use rename::{CommitOutcome, RecoveryOutcome, ReleaseEvent, RenameUnit, RenamedInstr};
pub use ros::{DstRename, RosBook, RosEntry};
pub use scheme::{DestPlan, DestQuery, KillPlan, ReleaseScheme, SchemeSeed};
pub use schemes::{BasicScheme, ConventionalScheme, CounterScheme, ExtendedScheme, OracleScheme};
pub use stats::{ClassReleaseStats, ReleaseStats};
pub use types::{
    InstrId, PhysReg, ReleasePolicy, ReleaseReason, RenameConfig, RenameStall, UseKind,
};
