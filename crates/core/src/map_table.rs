//! Map Table and In-Order Map Table.
//!
//! The Map Table (MT) holds the speculative logical→physical mapping used by
//! rename; the In-Order Map Table (IOMT, called Retirement Register Alias
//! Table in the Pentium 4) holds the *architectural* mapping updated at
//! commit, and is the recovery source for precise exceptions (paper Figure 1
//! and Section 2).

use crate::types::PhysReg;
use earlyreg_isa::{ArchReg, RegClass};

/// A logical→physical mapping for one register class.
///
/// Besides the forward map, the table maintains a reverse index (per
/// physical register: how many logical registers name it, and the most
/// recent one) so that release paths can find the logical registers naming
/// a physical register in O(1) instead of scanning the table — the scan
/// survives only as a fallback for the rare duplicate-mapping states that
/// stale dead-value mappings create.  Equality compares the forward map
/// only; the reverse index is derived state.
#[derive(Debug, Clone, Eq)]
pub struct MapTable {
    class: RegClass,
    map: Vec<PhysReg>,
    /// Per physical register: number of logical registers currently mapped
    /// to it (grown on demand — the table does not know the file size).
    rev_count: Vec<u8>,
    /// Per physical register: the logical register most recently mapped to
    /// it.  Meaningful only while `rev_count` is 1 *and* the forward map
    /// confirms it; otherwise callers fall back to a scan.
    rev_logical: Vec<u16>,
}

impl PartialEq for MapTable {
    fn eq(&self, other: &Self) -> bool {
        self.class == other.class && self.map == other.map
    }
}

impl MapTable {
    /// Create the identity mapping `logical i → physical i`, which is the
    /// reset state of the machine (the first `L` physical registers hold the
    /// initial architectural values).
    pub fn identity(class: RegClass) -> Self {
        let logical = class.num_logical();
        MapTable {
            class,
            map: (0..logical).map(|i| PhysReg(i as u16)).collect(),
            rev_count: vec![1; logical],
            rev_logical: (0..logical).map(|i| i as u16).collect(),
        }
    }

    fn ensure_rev(&mut self, phys: PhysReg) {
        if phys.index() >= self.rev_count.len() {
            self.rev_count.resize(phys.index() + 1, 0);
            self.rev_logical.resize(phys.index() + 1, 0);
        }
    }

    /// Rebuild the reverse index from the forward map (bulk restores).
    fn rebuild_rev(&mut self) {
        self.rev_count.iter_mut().for_each(|c| *c = 0);
        for i in 0..self.map.len() {
            let p = self.map[i];
            self.ensure_rev(p);
            self.rev_count[p.index()] += 1;
            self.rev_logical[p.index()] = i as u16;
        }
    }

    /// The register class this table maps.
    #[inline]
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Current mapping of a logical register.
    #[inline]
    pub fn get(&self, reg: ArchReg) -> PhysReg {
        debug_assert_eq!(reg.class(), self.class);
        self.map[reg.index()]
    }

    /// Redirect a logical register to a new physical register, returning the
    /// previous mapping (the paper's `old_pd`).
    #[inline]
    pub fn set(&mut self, reg: ArchReg, phys: PhysReg) -> PhysReg {
        debug_assert_eq!(reg.class(), self.class);
        let old = std::mem::replace(&mut self.map[reg.index()], phys);
        if old != phys {
            self.rev_count[old.index()] -= 1;
            self.ensure_rev(phys);
            self.rev_count[phys.index()] += 1;
            self.rev_logical[phys.index()] = reg.index() as u16;
        }
        old
    }

    /// Restore this table from a snapshot (branch misprediction recovery).
    pub fn restore_from(&mut self, snapshot: &MapTable) {
        debug_assert_eq!(self.class, snapshot.class);
        self.map.copy_from_slice(&snapshot.map);
        self.rebuild_rev();
    }

    /// Call `f` for every logical register currently mapped to `phys`.
    ///
    /// The common cases (no mapping, exactly one mapping) resolve through
    /// the reverse index without touching the forward map; only the rare
    /// duplicate-mapping state falls back to a full scan.
    #[inline]
    pub fn for_each_logical_of(&self, phys: PhysReg, mut f: impl FnMut(ArchReg)) {
        let Some(&count) = self.rev_count.get(phys.index()) else {
            return;
        };
        match count {
            0 => {}
            // `rev_logical` tracks the *latest* logical mapped to `phys`; if
            // that one has since remapped away while an older mapping
            // remains, the hint is stale and we fall through to the scan.
            1 if self.map[self.rev_logical[phys.index()] as usize] == phys => {
                f(ArchReg::new(
                    self.class,
                    self.rev_logical[phys.index()] as usize,
                ));
            }
            _ => {
                for (i, &p) in self.map.iter().enumerate() {
                    if p == phys {
                        f(ArchReg::new(self.class, i));
                    }
                }
            }
        }
    }

    /// Whether any logical register currently maps to `phys`, in O(1).
    #[inline]
    pub fn maps_physical(&self, phys: PhysReg) -> bool {
        self.rev_count.get(phys.index()).is_some_and(|&c| c > 0)
    }

    /// Find the logical register currently mapped to `phys`, if any.
    ///
    /// Returns the lowest-indexed match; use [`MapTable::find_logical_all`]
    /// where duplicates matter (a freed-but-still-mapped register can be
    /// reallocated while one or more stale mappings to it remain, so several
    /// logical registers may name the same physical register).
    pub fn find_logical(&self, phys: PhysReg) -> Option<ArchReg> {
        self.map
            .iter()
            .position(|&p| p == phys)
            .map(|i| ArchReg::new(self.class, i))
    }

    /// Every logical register currently mapped to `phys`.  Stale dead-value
    /// mappings make duplicates legal: when an early-released register is
    /// reallocated, the stale mapping (flagged skip-release) and the new
    /// live mapping coexist until the stale one is redefined.
    pub fn find_logical_all(&self, phys: PhysReg) -> impl Iterator<Item = ArchReg> + '_ {
        self.map
            .iter()
            .enumerate()
            .filter(move |&(_, &p)| p == phys)
            .map(move |(i, _)| ArchReg::new(self.class, i))
    }

    /// Iterate over `(logical, physical)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ArchReg, PhysReg)> + '_ {
        self.map
            .iter()
            .enumerate()
            .map(move |(i, &p)| (ArchReg::new(self.class, i), p))
    }

    /// All mapped physical registers (with duplicates, if any — duplicates
    /// only occur transiently for stale dead-value mappings after an
    /// exception recovery, see `RenameUnit` documentation).
    pub fn mapped_physical(&self) -> impl Iterator<Item = PhysReg> + '_ {
        self.map.iter().copied()
    }
}

/// The pair of speculative and architectural map tables for one class.
#[derive(Debug, Clone)]
pub struct MapTablePair {
    /// Speculative map updated at rename.
    pub front: MapTable,
    /// In-order (architectural) map updated at commit.
    pub retire: MapTable,
}

impl MapTablePair {
    /// Reset state: both tables hold the identity mapping.
    pub fn new(class: RegClass) -> Self {
        MapTablePair {
            front: MapTable::identity(class),
            retire: MapTable::identity(class),
        }
    }

    /// Precise-exception recovery: the speculative map becomes a copy of the
    /// architectural map.
    pub fn recover_from_retire(&mut self) {
        let retire = self.retire.clone();
        self.front.restore_from(&retire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_reset_state() {
        let mt = MapTable::identity(RegClass::Int);
        for i in 0..32 {
            assert_eq!(mt.get(ArchReg::int(i)), PhysReg(i as u16));
        }
    }

    #[test]
    fn set_returns_previous_mapping() {
        let mut mt = MapTable::identity(RegClass::Int);
        let old = mt.set(ArchReg::int(3), PhysReg(40));
        assert_eq!(old, PhysReg(3));
        assert_eq!(mt.get(ArchReg::int(3)), PhysReg(40));
        let old2 = mt.set(ArchReg::int(3), PhysReg(41));
        assert_eq!(old2, PhysReg(40));
    }

    #[test]
    fn restore_matches_snapshot() {
        let mut mt = MapTable::identity(RegClass::Fp);
        let snapshot = mt.clone();
        mt.set(ArchReg::fp(1), PhysReg(50));
        mt.set(ArchReg::fp(2), PhysReg(51));
        assert_ne!(mt, snapshot);
        mt.restore_from(&snapshot);
        assert_eq!(mt, snapshot);
    }

    #[test]
    fn find_logical_locates_mapping() {
        let mut mt = MapTable::identity(RegClass::Int);
        mt.set(ArchReg::int(7), PhysReg(99));
        assert_eq!(mt.find_logical(PhysReg(99)), Some(ArchReg::int(7)));
        assert_eq!(mt.find_logical(PhysReg(98)), None);
    }

    #[test]
    fn pair_recovery_copies_retire_into_front() {
        let mut pair = MapTablePair::new(RegClass::Int);
        pair.front.set(ArchReg::int(1), PhysReg(60));
        pair.retire.set(ArchReg::int(1), PhysReg(33));
        pair.recover_from_retire();
        assert_eq!(pair.front.get(ArchReg::int(1)), PhysReg(33));
        assert_eq!(pair.retire.get(ArchReg::int(1)), PhysReg(33));
    }

    #[test]
    fn iter_covers_all_logical_registers() {
        let mt = MapTable::identity(RegClass::Fp);
        assert_eq!(mt.iter().count(), 32);
        assert_eq!(mt.mapped_physical().count(), 32);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn wrong_class_lookup_is_rejected_in_debug() {
        let mt = MapTable::identity(RegClass::Int);
        let _ = mt.get(ArchReg::fp(0));
    }

    fn logicals_of(mt: &MapTable, phys: PhysReg) -> Vec<ArchReg> {
        let mut out = Vec::new();
        mt.for_each_logical_of(phys, |r| out.push(r));
        out
    }

    #[test]
    fn reverse_index_tracks_single_mapping() {
        let mut mt = MapTable::identity(RegClass::Int);
        mt.set(ArchReg::int(7), PhysReg(99));
        assert_eq!(logicals_of(&mt, PhysReg(99)), vec![ArchReg::int(7)]);
        assert!(logicals_of(&mt, PhysReg(98)).is_empty());
        assert!(mt.maps_physical(PhysReg(99)));
        assert!(!mt.maps_physical(PhysReg(98)));
        // Remapping away drops the entry.
        mt.set(ArchReg::int(7), PhysReg(40));
        assert!(logicals_of(&mt, PhysReg(99)).is_empty());
        assert!(!mt.maps_physical(PhysReg(99)));
    }

    #[test]
    fn reverse_index_handles_duplicates_and_stale_hint() {
        let mut mt = MapTable::identity(RegClass::Int);
        // Two logicals name the same physical register (stale dead-value
        // duplicate), then the *latest* one remaps away, leaving the hint
        // stale with count 1.
        mt.set(ArchReg::int(3), PhysReg(77));
        mt.set(ArchReg::int(9), PhysReg(77));
        assert_eq!(
            logicals_of(&mt, PhysReg(77)),
            vec![ArchReg::int(3), ArchReg::int(9)]
        );
        mt.set(ArchReg::int(9), PhysReg(50));
        assert_eq!(logicals_of(&mt, PhysReg(77)), vec![ArchReg::int(3)]);
    }

    #[test]
    fn reverse_index_survives_restore() {
        let mut mt = MapTable::identity(RegClass::Fp);
        let snapshot = mt.clone();
        mt.set(ArchReg::fp(1), PhysReg(50));
        mt.restore_from(&snapshot);
        assert!(logicals_of(&mt, PhysReg(50)).is_empty());
        assert_eq!(logicals_of(&mt, PhysReg(1)), vec![ArchReg::fp(1)]);
        // Mutations after a restore keep the rebuilt index consistent.
        mt.set(ArchReg::fp(2), PhysReg(60));
        assert_eq!(logicals_of(&mt, PhysReg(60)), vec![ArchReg::fp(2)]);
        assert!(logicals_of(&mt, PhysReg(2)).is_empty());
    }
}
