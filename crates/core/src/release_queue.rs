//! The Release Queue (RelQue) of the extended mechanism (paper Section 4,
//! Figures 7 and 8).
//!
//! The queue holds **conditional releases**: releases scheduled by
//! next-version instructions that were decoded while branches were still
//! pending verification.  It is organised as a FIFO of *levels*, one per
//! pending branch, oldest branch at the front.  Each level holds:
//!
//! * `RwNSx` (*Release when Non-Speculative*): a bit-vector over physical
//!   registers (one per class here, since the machine has separate integer
//!   and FP files), used when the last-use instruction has **already
//!   committed** — the only remaining condition is the branch outcome.
//! * `RwCx` (*Release when Commit*): per last-use-instruction 3-bit marks
//!   (`rel1`/`rel2`/`reld`), used when the last-use instruction is **still in
//!   flight** — the release also has to wait for its commit.
//!
//! The operations map one-to-one onto the paper's control steps:
//!
//! * branch decode       → [`ReleaseQueue::push_level`] (Step 1)
//! * speculative NV decode → [`ReleaseQueue::mark_committed_lu`] /
//!   [`ReleaseQueue::mark_inflight_lu`] (Step 2)
//! * branch misprediction → [`ReleaseQueue::mispredict`] (Step 3)
//! * branch confirmation → [`ReleaseQueue::confirm_into`] (Steps 4 and 6)
//! * LU commit while still conditional → [`ReleaseQueue::on_commit`] (Step 5)
//!
//! ## Hot-path organisation
//!
//! The seed kept the `RwCx` marks in a per-level `BTreeMap<InstrId, u8>` and
//! allocated fresh levels and result vectors on every branch decode and
//! confirmation.  The simulator decodes a conditional branch every handful of
//! instructions, so this module is now allocation-free in steady state:
//! retired levels are pooled and reused, the `RwCx` marks live in a flat
//! id-sorted array, the `RwNSx` bit-vectors carry a side list of set bits so
//! draining them is O(marks) instead of O(register-file size), and
//! confirmation writes into caller-provided scratch vectors.

use crate::types::{InstrId, PhysReg, UseKind};
use earlyreg_isa::RegClass;
use std::collections::VecDeque;

/// One level of the Release Queue (all the conditional releases that depend
/// on a particular pending branch and every older pending branch).
#[derive(Debug, Clone)]
pub struct RelQueLevel {
    /// The pending branch this level belongs to.
    pub branch_id: InstrId,
    /// `RwNSx`: per-class decoded bit-vectors over physical registers.
    rwns: [Vec<bool>; 2],
    /// Set bits of `rwns` (no duplicates), for O(marks) drains and merges.
    rwns_marked: Vec<(RegClass, PhysReg)>,
    /// `RwCx`: marks keyed by the last-use instruction (sorted by id), one
    /// 3-bit mask each.
    rwc: Vec<(InstrId, u8)>,
}

impl RelQueLevel {
    fn new(branch_id: InstrId, phys_int: usize, phys_fp: usize) -> Self {
        RelQueLevel {
            branch_id,
            rwns: [vec![false; phys_int], vec![false; phys_fp]],
            rwns_marked: Vec::new(),
            rwc: Vec::new(),
        }
    }

    /// Reset a retired level for reuse under a new owning branch.
    fn reset(&mut self, branch_id: InstrId) {
        self.branch_id = branch_id;
        for (class, phys) in self.rwns_marked.drain(..) {
            self.rwns[class.index()][phys.index()] = false;
        }
        self.rwc.clear();
    }

    /// Number of conditional releases recorded in this level.
    pub fn mark_count(&self) -> usize {
        let rwc: usize = self.rwc.iter().map(|(_, m)| m.count_ones() as usize).sum();
        self.rwns_marked.len() + rwc
    }

    /// True if the level holds a RwNS mark for `(class, phys)`.
    pub fn has_rwns(&self, class: RegClass, phys: PhysReg) -> bool {
        self.rwns[class.index()][phys.index()]
    }

    /// The RwC mask recorded for `lu`, if any.
    pub fn rwc_mask(&self, lu: InstrId) -> Option<u8> {
        self.rwc_position(lu).map(|i| self.rwc[i].1)
    }

    fn rwc_position(&self, lu: InstrId) -> Option<usize> {
        self.rwc.binary_search_by_key(&lu, |&(id, _)| id).ok()
    }

    fn mark_rwns(&mut self, class: RegClass, phys: PhysReg) {
        let bit = &mut self.rwns[class.index()][phys.index()];
        if !*bit {
            *bit = true;
            self.rwns_marked.push((class, phys));
        }
    }

    fn mark_rwc(&mut self, lu: InstrId, mask: u8) {
        match self.rwc.binary_search_by_key(&lu, |&(id, _)| id) {
            Ok(i) => self.rwc[i].1 |= mask,
            Err(i) => self.rwc.insert(i, (lu, mask)),
        }
    }

    fn or_into(&mut self, other: &mut RelQueLevel) {
        for &(class, phys) in &self.rwns_marked {
            other.mark_rwns(class, phys);
        }
        for &(id, mask) in &self.rwc {
            other.mark_rwc(id, mask);
        }
    }

    /// Move every RwNS mark into `out`, sorted by (class, register) — the
    /// order the seed's full bit-vector scan produced.
    fn drain_rwns_into(&mut self, out: &mut Vec<(RegClass, PhysReg)>) {
        self.rwns_marked
            .sort_unstable_by_key(|&(class, phys)| (class.index(), phys.index()));
        for (class, phys) in self.rwns_marked.drain(..) {
            self.rwns[class.index()][phys.index()] = false;
            out.push((class, phys));
        }
    }
}

/// What happened when a branch prediction was confirmed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfirmOutcome {
    /// Registers to release right now (the paper's *Branch-Confirm Release*,
    /// only non-empty when the confirmed branch was the oldest pending one).
    pub release_now: Vec<(RegClass, PhysReg)>,
    /// `RwC1` marks to merge into `RwC0`, i.e. into the early-release bits of
    /// the corresponding reorder-structure entries (`(last-use id, mask)`).
    pub to_rwc0: Vec<(InstrId, u8)>,
}

/// The Release Queue.
#[derive(Debug, Clone)]
pub struct ReleaseQueue {
    levels: VecDeque<RelQueLevel>,
    /// Retired levels kept for reuse (their vectors retain capacity).
    pool: Vec<RelQueLevel>,
    phys_int: usize,
    phys_fp: usize,
}

impl ReleaseQueue {
    /// Create an empty queue for register files of the given sizes.
    pub fn new(phys_int: usize, phys_fp: usize) -> Self {
        ReleaseQueue {
            levels: VecDeque::new(),
            pool: Vec::new(),
            phys_int,
            phys_fp,
        }
    }

    /// Number of levels currently stacked (the paper's `TAIL`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// True when no branch is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Total number of conditional releases across all levels.  The paper
    /// notes this is bounded by the reorder-structure size; the rename unit's
    /// tests assert that invariant.
    pub fn total_marks(&self) -> usize {
        self.levels.iter().map(|l| l.mark_count()).sum()
    }

    /// Access a level by 0-based position (0 = oldest pending branch).
    pub fn level(&self, position: usize) -> Option<&RelQueLevel> {
        self.levels.get(position)
    }

    /// 0-based position of the level owned by `branch_id`.
    pub fn position_of(&self, branch_id: InstrId) -> Option<usize> {
        self.levels.iter().position(|l| l.branch_id == branch_id)
    }

    fn retire(&mut self, level: RelQueLevel) {
        self.pool.push(level);
    }

    /// Step 1 — a conditional branch was decoded: stack a new, empty level.
    pub fn push_level(&mut self, branch_id: InstrId) {
        if let Some(back) = self.levels.back() {
            assert!(
                back.branch_id < branch_id,
                "branches must enter the release queue in program order"
            );
        }
        let level = match self.pool.pop() {
            Some(mut level) => {
                level.reset(branch_id);
                level
            }
            None => RelQueLevel::new(branch_id, self.phys_int, self.phys_fp),
        };
        self.levels.push_back(level);
    }

    /// Step 2 (last use already committed) — record a conditional release of
    /// `(class, phys)` in the youngest level.
    ///
    /// # Panics
    /// Panics if no branch is pending (the caller must use the unconditional
    /// path in that case).
    pub fn mark_committed_lu(&mut self, class: RegClass, phys: PhysReg) {
        let level = self
            .levels
            .back_mut()
            .expect("mark_committed_lu requires at least one pending branch");
        level.mark_rwns(class, phys);
    }

    /// Step 2 (last use still in flight) — record a conditional release tied
    /// to the commit of `lu`'s operand slot `kind`, in the youngest level.
    pub fn mark_inflight_lu(&mut self, lu: InstrId, kind: UseKind) {
        let level = self
            .levels
            .back_mut()
            .expect("mark_inflight_lu requires at least one pending branch");
        level.mark_rwc(lu, kind.mask());
    }

    /// Step 5 — the last-use instruction `id` is committing while some of its
    /// scheduled releases are still conditional: move its `RwCx` marks to the
    /// corresponding `RwNSx` bit-vectors.  `resolve` maps an operand slot of
    /// the committing instruction to the physical register it references.
    pub fn on_commit<F>(&mut self, id: InstrId, mut resolve: F)
    where
        F: FnMut(UseKind) -> Option<(RegClass, PhysReg)>,
    {
        for level in &mut self.levels {
            if let Some(i) = level.rwc_position(id) {
                let (_, mask) = level.rwc.remove(i);
                for kind in UseKind::ALL {
                    if mask & kind.mask() != 0 {
                        let (class, phys) = resolve(kind).unwrap_or_else(|| {
                            panic!(
                                "RwC mark references operand {kind:?} of {id} which does not exist"
                            )
                        });
                        level.mark_rwns(class, phys);
                    }
                }
            }
        }
    }

    /// Steps 4 and 6 — the prediction of `branch_id` was verified correct.
    ///
    /// If it was the oldest pending branch, its `RwNS` registers are appended
    /// to `release_now` for immediate release and its `RwC` marks to
    /// `to_rwc0` for merging into `RwC0` (the reorder-structure early-release
    /// bits).  Otherwise the level is OR-merged into the next older level.
    /// Neither vector is cleared, so callers can pass persistent scratch.
    pub fn confirm_into(
        &mut self,
        branch_id: InstrId,
        release_now: &mut Vec<(RegClass, PhysReg)>,
        to_rwc0: &mut Vec<(InstrId, u8)>,
    ) {
        let pos = self
            .position_of(branch_id)
            .unwrap_or_else(|| panic!("confirm of branch {branch_id} which owns no RelQue level"));
        let mut level = self.levels.remove(pos).expect("position is valid");
        if pos == 0 {
            level.drain_rwns_into(release_now);
            to_rwc0.append(&mut level.rwc);
        } else {
            let older = &mut self.levels[pos - 1];
            level.or_into(older);
        }
        self.retire(level);
    }

    /// As [`ReleaseQueue::confirm_into`], returning a fresh
    /// [`ConfirmOutcome`] (convenience for tests and benchmarks).
    pub fn confirm(&mut self, branch_id: InstrId) -> ConfirmOutcome {
        let mut outcome = ConfirmOutcome::default();
        self.confirm_into(branch_id, &mut outcome.release_now, &mut outcome.to_rwc0);
        outcome
    }

    /// Step 3 — the prediction of `branch_id` was wrong: clear its level and
    /// every younger one (their schedulings belong to squashed instructions).
    pub fn mispredict(&mut self, branch_id: InstrId) {
        let pos = self.position_of(branch_id).unwrap_or_else(|| {
            panic!("mispredict of branch {branch_id} which owns no RelQue level")
        });
        while self.levels.len() > pos {
            let level = self.levels.pop_back().expect("length checked");
            self.retire(level);
        }
    }

    /// Clear everything (exception recovery).
    pub fn clear(&mut self) {
        while let Some(level) = self.levels.pop_back() {
            self.retire(level);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> ReleaseQueue {
        ReleaseQueue::new(64, 64)
    }

    #[test]
    fn push_levels_in_order() {
        let mut q = queue();
        q.push_level(InstrId(10));
        q.push_level(InstrId(20));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.position_of(InstrId(10)), Some(0));
        assert_eq!(q.position_of(InstrId(20)), Some(1));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_levels_panic() {
        let mut q = queue();
        q.push_level(InstrId(20));
        q.push_level(InstrId(10));
    }

    #[test]
    fn marks_land_in_the_youngest_level() {
        let mut q = queue();
        q.push_level(InstrId(10));
        q.push_level(InstrId(20));
        q.mark_committed_lu(RegClass::Int, PhysReg(5));
        q.mark_inflight_lu(InstrId(15), UseKind::Src2);
        assert!(q.level(1).unwrap().has_rwns(RegClass::Int, PhysReg(5)));
        assert!(!q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(5)));
        assert_eq!(
            q.level(1).unwrap().rwc_mask(InstrId(15)),
            Some(UseKind::Src2.mask())
        );
        assert_eq!(q.total_marks(), 2);
    }

    #[test]
    fn confirm_of_oldest_releases_rwns_and_exposes_rwc() {
        let mut q = queue();
        q.push_level(InstrId(10));
        q.mark_committed_lu(RegClass::Fp, PhysReg(7));
        q.mark_inflight_lu(InstrId(8), UseKind::Dst);
        let out = q.confirm(InstrId(10));
        assert_eq!(out.release_now, vec![(RegClass::Fp, PhysReg(7))]);
        assert_eq!(out.to_rwc0, vec![(InstrId(8), UseKind::Dst.mask())]);
        assert!(q.is_empty());
    }

    #[test]
    fn confirm_of_non_oldest_merges_into_previous_level() {
        // Figure 8.a: the second oldest branch is confirmed — its schedulings
        // become conditional only on the oldest branch.
        let mut q = queue();
        q.push_level(InstrId(10));
        q.push_level(InstrId(20));
        q.mark_committed_lu(RegClass::Int, PhysReg(33));
        q.mark_inflight_lu(InstrId(12), UseKind::Src1);
        let out = q.confirm(InstrId(20));
        assert_eq!(out, ConfirmOutcome::default());
        assert_eq!(q.depth(), 1);
        assert!(q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(33)));
        assert_eq!(
            q.level(0).unwrap().rwc_mask(InstrId(12)),
            Some(UseKind::Src1.mask())
        );
    }

    #[test]
    fn out_of_order_confirmation_then_oldest() {
        let mut q = queue();
        q.push_level(InstrId(10));
        q.push_level(InstrId(20));
        q.push_level(InstrId(30));
        q.mark_committed_lu(RegClass::Int, PhysReg(40)); // conditional on all three

        // Branch 30 verifies first: merge into level of 20.
        assert_eq!(q.confirm(InstrId(30)), ConfirmOutcome::default());
        // Branch 20 verifies: merge into level of 10.
        assert_eq!(q.confirm(InstrId(20)), ConfirmOutcome::default());
        // Branch 10 (now the oldest) verifies: the release fires.
        let out = q.confirm(InstrId(10));
        assert_eq!(out.release_now, vec![(RegClass::Int, PhysReg(40))]);
        assert!(q.is_empty());
    }

    #[test]
    fn mispredict_clears_the_level_and_younger_ones() {
        // Step 3: TAIL is left pointing at the level just older than the
        // mispredicted branch.
        let mut q = queue();
        q.push_level(InstrId(10));
        q.mark_committed_lu(RegClass::Int, PhysReg(50));
        q.push_level(InstrId(20));
        q.mark_committed_lu(RegClass::Int, PhysReg(51));
        q.push_level(InstrId(30));
        q.mark_committed_lu(RegClass::Int, PhysReg(52));
        q.mispredict(InstrId(20));
        assert_eq!(q.depth(), 1);
        assert!(q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(50)));
        assert_eq!(q.total_marks(), 1);
    }

    #[test]
    fn commit_moves_rwc_marks_to_rwns_in_every_level() {
        // Step 5 ("Mark" in Figure 8.b): an LU commits while its NV is still
        // speculative — the release stays conditional but switches to the
        // decoded RwNS form.
        let mut q = queue();
        q.push_level(InstrId(10));
        q.mark_inflight_lu(InstrId(5), UseKind::Src1);
        q.push_level(InstrId(20));
        q.mark_inflight_lu(InstrId(5), UseKind::Dst);
        q.on_commit(InstrId(5), |kind| match kind {
            UseKind::Src1 => Some((RegClass::Int, PhysReg(3))),
            UseKind::Dst => Some((RegClass::Fp, PhysReg(9))),
            UseKind::Src2 => None,
        });
        assert!(q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(3)));
        assert!(q.level(1).unwrap().has_rwns(RegClass::Fp, PhysReg(9)));
        assert_eq!(q.level(0).unwrap().rwc_mask(InstrId(5)), None);
        assert_eq!(q.level(1).unwrap().rwc_mask(InstrId(5)), None);
    }

    #[test]
    fn clear_removes_everything() {
        let mut q = queue();
        q.push_level(InstrId(1));
        q.mark_committed_lu(RegClass::Int, PhysReg(2));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_marks(), 0);
    }

    #[test]
    fn duplicate_marks_do_not_double_count_rwns() {
        let mut q = queue();
        q.push_level(InstrId(1));
        q.mark_committed_lu(RegClass::Int, PhysReg(2));
        q.mark_committed_lu(RegClass::Int, PhysReg(2));
        assert_eq!(q.total_marks(), 1);
        let out = q.confirm(InstrId(1));
        assert_eq!(out.release_now.len(), 1);
    }

    #[test]
    fn pooled_levels_are_reset_before_reuse() {
        let mut q = queue();
        q.push_level(InstrId(1));
        q.mark_committed_lu(RegClass::Int, PhysReg(2));
        q.mark_inflight_lu(InstrId(0), UseKind::Src1);
        q.mispredict(InstrId(1));
        // The retired level is reused for the next branch and must be clean.
        q.push_level(InstrId(5));
        assert_eq!(q.total_marks(), 0);
        assert!(!q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(2)));
        assert_eq!(q.level(0).unwrap().rwc_mask(InstrId(0)), None);
        assert_eq!(q.level(0).unwrap().branch_id, InstrId(5));
    }
}
