//! The Release Queue (RelQue) of the extended mechanism (paper Section 4,
//! Figures 7 and 8).
//!
//! The queue holds **conditional releases**: releases scheduled by
//! next-version instructions that were decoded while branches were still
//! pending verification.  It is organised as a FIFO of *levels*, one per
//! pending branch, oldest branch at the front.  Each level holds:
//!
//! * `RwNSx` (*Release when Non-Speculative*): a bit-vector over physical
//!   registers (one per class here, since the machine has separate integer
//!   and FP files), used when the last-use instruction has **already
//!   committed** — the only remaining condition is the branch outcome.
//! * `RwCx` (*Release when Commit*): per last-use-instruction 3-bit marks
//!   (`rel1`/`rel2`/`reld`), used when the last-use instruction is **still in
//!   flight** — the release also has to wait for its commit.
//!
//! The operations map one-to-one onto the paper's control steps:
//!
//! * branch decode       → [`ReleaseQueue::push_level`] (Step 1)
//! * speculative NV decode → [`ReleaseQueue::mark_committed_lu`] /
//!   [`ReleaseQueue::mark_inflight_lu`] (Step 2)
//! * branch misprediction → [`ReleaseQueue::mispredict`] (Step 3)
//! * branch confirmation → [`ReleaseQueue::confirm`] (Steps 4 and 6)
//! * LU commit while still conditional → [`ReleaseQueue::on_commit`] (Step 5)

use crate::types::{InstrId, PhysReg, UseKind};
use earlyreg_isa::RegClass;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One level of the Release Queue (all the conditional releases that depend
/// on a particular pending branch and every older pending branch).
#[derive(Debug, Clone)]
pub struct RelQueLevel {
    /// The pending branch this level belongs to.
    pub branch_id: InstrId,
    /// `RwNSx`: per-class decoded bit-vectors over physical registers.
    rwns: [Vec<bool>; 2],
    /// `RwCx`: marks keyed by the last-use instruction, one 3-bit mask each.
    rwc: BTreeMap<InstrId, u8>,
}

impl RelQueLevel {
    fn new(branch_id: InstrId, phys_int: usize, phys_fp: usize) -> Self {
        RelQueLevel {
            branch_id,
            rwns: [vec![false; phys_int], vec![false; phys_fp]],
            rwc: BTreeMap::new(),
        }
    }

    /// Number of conditional releases recorded in this level.
    pub fn mark_count(&self) -> usize {
        let rwns: usize = self
            .rwns
            .iter()
            .map(|v| v.iter().filter(|&&b| b).count())
            .sum();
        let rwc: usize = self.rwc.values().map(|m| m.count_ones() as usize).sum();
        rwns + rwc
    }

    /// True if the level holds a RwNS mark for `(class, phys)`.
    pub fn has_rwns(&self, class: RegClass, phys: PhysReg) -> bool {
        self.rwns[class.index()][phys.index()]
    }

    /// The RwC mask recorded for `lu`, if any.
    pub fn rwc_mask(&self, lu: InstrId) -> Option<u8> {
        self.rwc.get(&lu).copied()
    }

    fn or_into(&self, other: &mut RelQueLevel) {
        for class in 0..2 {
            for (dst, src) in other.rwns[class].iter_mut().zip(self.rwns[class].iter()) {
                *dst |= *src;
            }
        }
        for (&id, &mask) in &self.rwc {
            *other.rwc.entry(id).or_insert(0) |= mask;
        }
    }

    fn drain_rwns(&mut self) -> Vec<(RegClass, PhysReg)> {
        let mut out = Vec::new();
        for class in RegClass::ALL {
            for (idx, bit) in self.rwns[class.index()].iter_mut().enumerate() {
                if *bit {
                    out.push((class, PhysReg(idx as u16)));
                    *bit = false;
                }
            }
        }
        out
    }
}

/// What happened when a branch prediction was confirmed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfirmOutcome {
    /// Registers to release right now (the paper's *Branch-Confirm Release*,
    /// only non-empty when the confirmed branch was the oldest pending one).
    pub release_now: Vec<(RegClass, PhysReg)>,
    /// `RwC1` marks to merge into `RwC0`, i.e. into the early-release bits of
    /// the corresponding reorder-structure entries (`(last-use id, mask)`).
    pub to_rwc0: Vec<(InstrId, u8)>,
}

/// The Release Queue.
#[derive(Debug, Clone)]
pub struct ReleaseQueue {
    levels: VecDeque<RelQueLevel>,
    phys_int: usize,
    phys_fp: usize,
}

impl ReleaseQueue {
    /// Create an empty queue for register files of the given sizes.
    pub fn new(phys_int: usize, phys_fp: usize) -> Self {
        ReleaseQueue {
            levels: VecDeque::new(),
            phys_int,
            phys_fp,
        }
    }

    /// Number of levels currently stacked (the paper's `TAIL`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// True when no branch is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Total number of conditional releases across all levels.  The paper
    /// notes this is bounded by the reorder-structure size; the rename unit's
    /// tests assert that invariant.
    pub fn total_marks(&self) -> usize {
        self.levels.iter().map(|l| l.mark_count()).sum()
    }

    /// Access a level by 0-based position (0 = oldest pending branch).
    pub fn level(&self, position: usize) -> Option<&RelQueLevel> {
        self.levels.get(position)
    }

    /// 0-based position of the level owned by `branch_id`.
    pub fn position_of(&self, branch_id: InstrId) -> Option<usize> {
        self.levels.iter().position(|l| l.branch_id == branch_id)
    }

    /// Step 1 — a conditional branch was decoded: stack a new, empty level.
    pub fn push_level(&mut self, branch_id: InstrId) {
        if let Some(back) = self.levels.back() {
            assert!(
                back.branch_id < branch_id,
                "branches must enter the release queue in program order"
            );
        }
        self.levels
            .push_back(RelQueLevel::new(branch_id, self.phys_int, self.phys_fp));
    }

    /// Step 2 (last use already committed) — record a conditional release of
    /// `(class, phys)` in the youngest level.
    ///
    /// # Panics
    /// Panics if no branch is pending (the caller must use the unconditional
    /// path in that case).
    pub fn mark_committed_lu(&mut self, class: RegClass, phys: PhysReg) {
        let level = self
            .levels
            .back_mut()
            .expect("mark_committed_lu requires at least one pending branch");
        level.rwns[class.index()][phys.index()] = true;
    }

    /// Step 2 (last use still in flight) — record a conditional release tied
    /// to the commit of `lu`'s operand slot `kind`, in the youngest level.
    pub fn mark_inflight_lu(&mut self, lu: InstrId, kind: UseKind) {
        let level = self
            .levels
            .back_mut()
            .expect("mark_inflight_lu requires at least one pending branch");
        *level.rwc.entry(lu).or_insert(0) |= kind.mask();
    }

    /// Step 5 — the last-use instruction `id` is committing while some of its
    /// scheduled releases are still conditional: move its `RwCx` marks to the
    /// corresponding `RwNSx` bit-vectors.  `resolve` maps an operand slot of
    /// the committing instruction to the physical register it references.
    pub fn on_commit<F>(&mut self, id: InstrId, mut resolve: F)
    where
        F: FnMut(UseKind) -> Option<(RegClass, PhysReg)>,
    {
        for level in &mut self.levels {
            if let Some(mask) = level.rwc.remove(&id) {
                for kind in UseKind::ALL {
                    if mask & kind.mask() != 0 {
                        let (class, phys) = resolve(kind).unwrap_or_else(|| {
                            panic!(
                                "RwC mark references operand {kind:?} of {id} which does not exist"
                            )
                        });
                        level.rwns[class.index()][phys.index()] = true;
                    }
                }
            }
        }
    }

    /// Steps 4 and 6 — the prediction of `branch_id` was verified correct.
    ///
    /// If it was the oldest pending branch, its `RwNS` registers are returned
    /// for immediate release and its `RwC` marks are returned for merging
    /// into `RwC0` (the reorder-structure early-release bits).  Otherwise the
    /// level is OR-merged into the next older level.
    pub fn confirm(&mut self, branch_id: InstrId) -> ConfirmOutcome {
        let pos = self
            .position_of(branch_id)
            .unwrap_or_else(|| panic!("confirm of branch {branch_id} which owns no RelQue level"));
        let mut level = self.levels.remove(pos).expect("position is valid");
        if pos == 0 {
            ConfirmOutcome {
                release_now: level.drain_rwns(),
                to_rwc0: level.rwc.into_iter().collect(),
            }
        } else {
            let older = &mut self.levels[pos - 1];
            level.or_into(older);
            ConfirmOutcome::default()
        }
    }

    /// Step 3 — the prediction of `branch_id` was wrong: clear its level and
    /// every younger one (their schedulings belong to squashed instructions).
    pub fn mispredict(&mut self, branch_id: InstrId) {
        let pos = self.position_of(branch_id).unwrap_or_else(|| {
            panic!("mispredict of branch {branch_id} which owns no RelQue level")
        });
        self.levels.truncate(pos);
    }

    /// Clear everything (exception recovery).
    pub fn clear(&mut self) {
        self.levels.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> ReleaseQueue {
        ReleaseQueue::new(64, 64)
    }

    #[test]
    fn push_levels_in_order() {
        let mut q = queue();
        q.push_level(InstrId(10));
        q.push_level(InstrId(20));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.position_of(InstrId(10)), Some(0));
        assert_eq!(q.position_of(InstrId(20)), Some(1));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_levels_panic() {
        let mut q = queue();
        q.push_level(InstrId(20));
        q.push_level(InstrId(10));
    }

    #[test]
    fn marks_land_in_the_youngest_level() {
        let mut q = queue();
        q.push_level(InstrId(10));
        q.push_level(InstrId(20));
        q.mark_committed_lu(RegClass::Int, PhysReg(5));
        q.mark_inflight_lu(InstrId(15), UseKind::Src2);
        assert!(q.level(1).unwrap().has_rwns(RegClass::Int, PhysReg(5)));
        assert!(!q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(5)));
        assert_eq!(
            q.level(1).unwrap().rwc_mask(InstrId(15)),
            Some(UseKind::Src2.mask())
        );
        assert_eq!(q.total_marks(), 2);
    }

    #[test]
    fn confirm_of_oldest_releases_rwns_and_exposes_rwc() {
        let mut q = queue();
        q.push_level(InstrId(10));
        q.mark_committed_lu(RegClass::Fp, PhysReg(7));
        q.mark_inflight_lu(InstrId(8), UseKind::Dst);
        let out = q.confirm(InstrId(10));
        assert_eq!(out.release_now, vec![(RegClass::Fp, PhysReg(7))]);
        assert_eq!(out.to_rwc0, vec![(InstrId(8), UseKind::Dst.mask())]);
        assert!(q.is_empty());
    }

    #[test]
    fn confirm_of_non_oldest_merges_into_previous_level() {
        // Figure 8.a: the second oldest branch is confirmed — its schedulings
        // become conditional only on the oldest branch.
        let mut q = queue();
        q.push_level(InstrId(10));
        q.push_level(InstrId(20));
        q.mark_committed_lu(RegClass::Int, PhysReg(33));
        q.mark_inflight_lu(InstrId(12), UseKind::Src1);
        let out = q.confirm(InstrId(20));
        assert_eq!(out, ConfirmOutcome::default());
        assert_eq!(q.depth(), 1);
        assert!(q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(33)));
        assert_eq!(
            q.level(0).unwrap().rwc_mask(InstrId(12)),
            Some(UseKind::Src1.mask())
        );
    }

    #[test]
    fn out_of_order_confirmation_then_oldest() {
        let mut q = queue();
        q.push_level(InstrId(10));
        q.push_level(InstrId(20));
        q.push_level(InstrId(30));
        q.mark_committed_lu(RegClass::Int, PhysReg(40)); // conditional on all three

        // Branch 30 verifies first: merge into level of 20.
        assert_eq!(q.confirm(InstrId(30)), ConfirmOutcome::default());
        // Branch 20 verifies: merge into level of 10.
        assert_eq!(q.confirm(InstrId(20)), ConfirmOutcome::default());
        // Branch 10 (now the oldest) verifies: the release fires.
        let out = q.confirm(InstrId(10));
        assert_eq!(out.release_now, vec![(RegClass::Int, PhysReg(40))]);
        assert!(q.is_empty());
    }

    #[test]
    fn mispredict_clears_the_level_and_younger_ones() {
        // Step 3: TAIL is left pointing at the level just older than the
        // mispredicted branch.
        let mut q = queue();
        q.push_level(InstrId(10));
        q.mark_committed_lu(RegClass::Int, PhysReg(50));
        q.push_level(InstrId(20));
        q.mark_committed_lu(RegClass::Int, PhysReg(51));
        q.push_level(InstrId(30));
        q.mark_committed_lu(RegClass::Int, PhysReg(52));
        q.mispredict(InstrId(20));
        assert_eq!(q.depth(), 1);
        assert!(q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(50)));
        assert_eq!(q.total_marks(), 1);
    }

    #[test]
    fn commit_moves_rwc_marks_to_rwns_in_every_level() {
        // Step 5 ("Mark" in Figure 8.b): an LU commits while its NV is still
        // speculative — the release stays conditional but switches to the
        // decoded RwNS form.
        let mut q = queue();
        q.push_level(InstrId(10));
        q.mark_inflight_lu(InstrId(5), UseKind::Src1);
        q.push_level(InstrId(20));
        q.mark_inflight_lu(InstrId(5), UseKind::Dst);
        q.on_commit(InstrId(5), |kind| match kind {
            UseKind::Src1 => Some((RegClass::Int, PhysReg(3))),
            UseKind::Dst => Some((RegClass::Fp, PhysReg(9))),
            UseKind::Src2 => None,
        });
        assert!(q.level(0).unwrap().has_rwns(RegClass::Int, PhysReg(3)));
        assert!(q.level(1).unwrap().has_rwns(RegClass::Fp, PhysReg(9)));
        assert_eq!(q.level(0).unwrap().rwc_mask(InstrId(5)), None);
        assert_eq!(q.level(1).unwrap().rwc_mask(InstrId(5)), None);
    }

    #[test]
    fn clear_removes_everything() {
        let mut q = queue();
        q.push_level(InstrId(1));
        q.mark_committed_lu(RegClass::Int, PhysReg(2));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_marks(), 0);
    }

    #[test]
    fn duplicate_marks_do_not_double_count_rwns() {
        let mut q = queue();
        q.push_level(InstrId(1));
        q.mark_committed_lu(RegClass::Int, PhysReg(2));
        q.mark_committed_lu(RegClass::Int, PhysReg(2));
        assert_eq!(q.total_marks(), 1);
        let out = q.confirm(InstrId(1));
        assert_eq!(out.release_now.len(), 1);
    }
}
