//! Last-Uses Table (LUs Table), the key structure of both early-release
//! mechanisms (paper Section 3.1, Figure 5).
//!
//! For every *logical* register the table records which dynamic instruction
//! uses the current version for the last time (so far), in which operand slot
//! (`Kind`: src1/src2/dst), and whether that instruction has already committed
//! (the `C` bit).  When a redefinition (next-version, NV) of the register is
//! renamed, the table identifies the last-use (LU) instruction so the release
//! of the previous version can be retimed to the LU's commit — or performed
//! immediately if the LU has already committed.
//!
//! Like the Map Table, the LUs Table is checkpointed at every branch so that
//! a misprediction can restore the pre-branch contents (Section 3.1: "we
//! assume that an LUs Table copy is made at each branch prediction").  Commit
//! updates of the `C` bit are applied to *all* copies (Section 3.2).

use crate::types::{InstrId, UseKind};
use earlyreg_isa::{ArchReg, RegClass};
use serde::{Deserialize, Serialize};

/// One Last-Uses Table entry (one per logical register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LusEntry {
    /// The instruction that uses the current version of this logical register
    /// for the last time (so far).  `None` means "no in-flight producer or
    /// reader exists" — the reset / post-exception state, equivalent to a
    /// committed last use of unknown identity.
    pub last_user: Option<InstrId>,
    /// Which operand slot of that instruction uses the register.
    pub kind: UseKind,
    /// The paper's `C` bit: true once the last-use instruction has committed.
    pub committed: bool,
}

impl LusEntry {
    /// Reset state: the last use is considered long committed.
    pub fn reset() -> Self {
        LusEntry {
            last_user: None,
            kind: UseKind::Dst,
            committed: true,
        }
    }
}

/// The Last-Uses Table for one register class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LusTable {
    class: RegClass,
    entries: Vec<LusEntry>,
}

impl LusTable {
    /// Create a table in the reset state.
    pub fn new(class: RegClass) -> Self {
        LusTable {
            class,
            entries: vec![LusEntry::reset(); class.num_logical()],
        }
    }

    /// The register class this table covers.
    #[inline]
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Current entry for a logical register.
    #[inline]
    pub fn get(&self, reg: ArchReg) -> LusEntry {
        debug_assert_eq!(reg.class(), self.class);
        self.entries[reg.index()]
    }

    /// Record that instruction `id` uses `reg` in operand slot `kind`
    /// ("Renaming 1" in Section 3.2).  The new user is by construction the
    /// youngest so far, so it simply overwrites the entry, with `C = 0`.
    pub fn record_use(&mut self, reg: ArchReg, id: InstrId, kind: UseKind) {
        debug_assert_eq!(reg.class(), self.class);
        self.entries[reg.index()] = LusEntry {
            last_user: Some(id),
            kind,
            committed: false,
        };
    }

    /// Commit-time `C` bit update ("Commit" step in Section 3.2): for each
    /// logical register operand of the committing instruction, set the `C`
    /// bit if this instruction is still recorded as the last user.
    pub fn mark_committed(&mut self, reg: ArchReg, id: InstrId) {
        debug_assert_eq!(reg.class(), self.class);
        let entry = &mut self.entries[reg.index()];
        if entry.last_user == Some(id) {
            entry.committed = true;
        }
    }

    /// Reset every entry to the "last use long committed" state (used at
    /// machine reset and after a precise-exception recovery, where every
    /// in-flight instruction has been squashed).
    pub fn reset_all(&mut self) {
        for e in &mut self.entries {
            *e = LusEntry::reset();
        }
    }

    /// Restore the table contents from a checkpoint copy.
    pub fn restore_from(&mut self, snapshot: &LusTable) {
        debug_assert_eq!(self.class, snapshot.class);
        self.entries.copy_from_slice(&snapshot.entries);
    }

    /// Iterate over `(logical register, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ArchReg, LusEntry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(move |(i, &e)| (ArchReg::new(self.class, i), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_is_committed_with_no_user() {
        let t = LusTable::new(RegClass::Int);
        let e = t.get(ArchReg::int(5));
        assert_eq!(e.last_user, None);
        assert!(e.committed);
    }

    #[test]
    fn record_use_overwrites_and_clears_c_bit() {
        let mut t = LusTable::new(RegClass::Int);
        let r = ArchReg::int(3);
        t.record_use(r, InstrId(10), UseKind::Src1);
        let e = t.get(r);
        assert_eq!(e.last_user, Some(InstrId(10)));
        assert_eq!(e.kind, UseKind::Src1);
        assert!(!e.committed);

        // A younger user supersedes the previous one.
        t.record_use(r, InstrId(12), UseKind::Dst);
        let e = t.get(r);
        assert_eq!(e.last_user, Some(InstrId(12)));
        assert_eq!(e.kind, UseKind::Dst);
    }

    #[test]
    fn mark_committed_only_applies_to_the_recorded_last_user() {
        let mut t = LusTable::new(RegClass::Fp);
        let r = ArchReg::fp(7);
        t.record_use(r, InstrId(10), UseKind::Src2);
        // Commit of a different instruction does not set the C bit.
        t.mark_committed(r, InstrId(9));
        assert!(!t.get(r).committed);
        // Commit of the recorded last user does.
        t.mark_committed(r, InstrId(10));
        assert!(t.get(r).committed);
        // The identity of the last user is preserved (needed so a later
        // redefinition can still see "committed" state).
        assert_eq!(t.get(r).last_user, Some(InstrId(10)));
    }

    #[test]
    fn restore_from_checkpoint_reverts_younger_uses() {
        let mut t = LusTable::new(RegClass::Int);
        let r = ArchReg::int(1);
        t.record_use(r, InstrId(5), UseKind::Src1);
        let checkpoint = t.clone();
        t.record_use(r, InstrId(9), UseKind::Dst);
        t.restore_from(&checkpoint);
        assert_eq!(t.get(r).last_user, Some(InstrId(5)));
        assert_eq!(t.get(r).kind, UseKind::Src1);
    }

    #[test]
    fn c_bit_updates_survive_via_explicit_propagation() {
        // The paper requires commit-time C updates to be applied to every
        // checkpoint copy; the RenameUnit does this by calling mark_committed
        // on each stored copy.  Here we check the primitive works on a copy.
        let mut working = LusTable::new(RegClass::Int);
        let r = ArchReg::int(2);
        working.record_use(r, InstrId(4), UseKind::Src1);
        let mut copy = working.clone();
        working.mark_committed(r, InstrId(4));
        copy.mark_committed(r, InstrId(4));
        assert!(copy.get(r).committed);
    }

    #[test]
    fn reset_all_clears_every_entry() {
        let mut t = LusTable::new(RegClass::Int);
        for i in 0..32 {
            t.record_use(ArchReg::int(i), InstrId(i as u64), UseKind::Dst);
        }
        t.reset_all();
        assert!(t.iter().all(|(_, e)| e.committed && e.last_user.is_none()));
    }

    #[test]
    fn iter_yields_one_entry_per_logical_register() {
        let t = LusTable::new(RegClass::Fp);
        assert_eq!(t.iter().count(), 32);
    }
}
