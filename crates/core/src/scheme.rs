//! The open release-scheme layer.
//!
//! Everything policy-specific about register release lives behind the
//! [`ReleaseScheme`] trait: rename-time last-use tracking, the decision of
//! how a redefinition's previous version is released ([`DestPlan`]),
//! checkpoint capture/restore of scheme state across branches, and the
//! commit / branch-resolution release events.  The
//! [`RenameUnit`](crate::rename::RenameUnit) owns the policy-*independent*
//! machinery — free lists, map tables, the reorder-structure book, branch
//! checkpoints of the map, occupancy and release statistics — and drives the
//! scheme through the hooks below.  Adding a release scheme therefore means
//! implementing this trait in one file and registering a descriptor in
//! [`crate::registry`]; no engine, simulator, experiment or serving code
//! changes.  See `docs/POLICIES.md` for the full contract.
//!
//! ## Hook protocol (one rename-unit event → scheme hooks, in order)
//!
//! * `rename` — [`ReleaseScheme::plan_dest`] (pure, may be called again by
//!   `can_rename`), then [`ReleaseScheme::record_use`] for each source
//!   operand, then plan execution (the engine calls
//!   [`ReleaseScheme::schedule_conditional`] for [`DestPlan::Conditional`]),
//!   then `record_use` for the destination, then — for conditional branches —
//!   [`ReleaseScheme::on_branch_renamed`] after the engine captured its own
//!   map checkpoint.
//! * `commit` — [`ReleaseScheme::on_commit`]; releases the scheme requests
//!   are performed by the engine with reason
//!   [`ReleaseReason::EarlyAtLuCommit`](crate::types::ReleaseReason), and any
//!   speculative (or checkpointed) map entry still naming a freed register is
//!   flagged stale so the eventual redefinition skips it.
//! * `branch verified correct` — [`ReleaseScheme::on_branch_correct`]; the
//!   engine frees the returned `release_now` set (reason `BranchConfirm`) and
//!   ORs the returned `to_rwc0` masks into the early-release bits of the
//!   named in-flight entries.
//! * `branch mispredicted` — [`ReleaseScheme::on_squash`] with the squashed
//!   entries (youngest first), then [`ReleaseScheme::on_branch_mispredict`]
//!   after the engine restored its map checkpoint.
//! * `precise exception` — [`ReleaseScheme::on_exception`] only (no
//!   `on_squash`): every in-flight instruction is gone and the scheme must
//!   reset all of its speculative state.

use crate::ros::RosEntry;
use crate::types::{InstrId, PhysReg, ReleasePolicy, UseKind};
use earlyreg_isa::{ArchReg, Emulator, Program, RegClass};
use std::fmt;
use std::sync::Arc;

/// How the destination of a redefinition will be handled — the scheme's
/// answer to [`ReleaseScheme::plan_dest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestPlan {
    /// Allocate a new register; release the previous version at this
    /// instruction's commit (the conventional `rel_old = 1` path).  `fallback`
    /// marks schemes that *wanted* an early release but could not prove it
    /// safe (counted in `fallback_to_conventional`).
    ReleaseAtCommit {
        /// Count this as a fallback in the release statistics.
        fallback: bool,
    },
    /// Allocate a new register and leave the previous version entirely
    /// alone — the scheme releases it through another path (or it is a stale
    /// post-exception mapping the engine already flagged).
    AllocOnly,
    /// The instruction reads its own destination register: it is the last
    /// use of the previous version, released at its own commit through the
    /// early-release bit `kind`.
    EarlyOnSelf {
        /// Which of this instruction's operand slots reads the previous
        /// version.
        kind: UseKind,
    },
    /// Allocate a new register; set the early-release bit `kind` on the
    /// in-flight last-use instruction `lu` (released at `lu`'s commit).
    EarlyOnLu {
        /// The in-flight last use of the previous version.
        lu: InstrId,
        /// Its operand slot that reads the previous version.
        kind: UseKind,
    },
    /// Release the previous version immediately, then allocate (frees a
    /// register *before* drawing from the free list, so it never stalls).
    ReleaseNow,
    /// Reuse the previous version's register for the new version (paper
    /// Section 3.2); no allocation, no release.
    Reuse,
    /// Schedule a conditional release with the scheme
    /// ([`ReleaseScheme::schedule_conditional`] is called with `lu`):
    /// `lu = None` when the last use has already committed (`RwNS` form),
    /// `Some((lu, kind))` while it is still in flight (`RwC` form).
    Conditional {
        /// The in-flight last use, if it has not committed yet.
        lu: Option<(InstrId, UseKind)>,
    },
}

impl DestPlan {
    /// Does executing this plan draw a register from the free list?
    #[inline]
    pub fn needs_allocation(&self) -> bool {
        !matches!(self, DestPlan::Reuse)
    }

    /// Does executing this plan return a register to the free list *before*
    /// allocating (so an empty free list is not a stall)?
    #[inline]
    pub fn frees_before_allocating(&self) -> bool {
        matches!(self, DestPlan::ReleaseNow)
    }
}

/// Everything the engine knows about a redefinition when it asks the scheme
/// to plan the destination.  Built before any side effect of the rename, so
/// [`ReleaseScheme::plan_dest`] must be pure (it is also used by the
/// `can_rename` pre-check).
#[derive(Debug, Clone, Copy)]
pub struct DestQuery {
    /// The logical destination register being redefined.
    pub dst: ArchReg,
    /// The physical register of the previous version (current speculative
    /// mapping of `dst`).
    pub old_pd: PhysReg,
    /// `Some(kind)` when the instruction reads its own destination register
    /// (slot `Src2` wins when both sources name it, matching the Last-Uses
    /// Table's record order), making it the last use of the previous version.
    pub own_use: Option<UseKind>,
    /// Number of branches currently pending verification.
    pub pending_branches: usize,
    /// The youngest pending branch, if any (ids are program-ordered, so
    /// "some pending branch is younger than X" is `newest_branch >= X`).
    pub newest_branch: Option<InstrId>,
    /// The engine's Section 3.2 register-reuse knob.
    pub reuse_on_committed_lu: bool,
    /// True when the previous version is *settled architectural state*: the
    /// speculative and in-order maps agree on `old_pd`, and it is neither
    /// released-early nor clobbered-by-reuse.  This is what a counter-based
    /// scheme can verify without a Last-Uses CAM.
    pub old_is_settled_arch: bool,
}

/// A pluggable register release scheme (see the module docs for the hook
/// protocol and `docs/POLICIES.md` for the full contract).
pub trait ReleaseScheme: fmt::Debug + Send {
    /// The registry handle of this scheme.
    fn policy(&self) -> ReleasePolicy;

    /// Clone into a fresh box ([`RenameUnit`](crate::rename::RenameUnit) is
    /// `Clone`).
    fn box_clone(&self) -> Box<dyn ReleaseScheme>;

    /// Rename-time use tracking: instruction `id` uses logical register
    /// `reg` (currently mapped to `phys`) in operand slot `kind`.  Called
    /// for every source operand *after* [`ReleaseScheme::plan_dest`] ran but
    /// before the plan executes, and for the destination (with the *new*
    /// physical register) after the map was redirected.  Because the plan is
    /// computed first, an instruction's own source recordings are **not**
    /// visible to its `plan_dest` — the engine signals the
    /// reads-own-destination case through [`DestQuery::own_use`] instead.
    fn record_use(&mut self, _reg: ArchReg, _phys: PhysReg, _id: InstrId, _kind: UseKind) {}

    /// Decide how the previous version of a redefined register is handled.
    /// Must be pure: the engine calls it both from `can_rename` (no side
    /// effects follow) and from `rename` (the returned plan is executed).
    fn plan_dest(&self, query: &DestQuery) -> DestPlan;

    /// Execute the scheme side of [`DestPlan::Conditional`]: record a
    /// conditional release of `(class, old_pd)` tied to the pending-branch
    /// stack, in `RwNS` form (`lu = None`) or `RwC` form.
    fn schedule_conditional(
        &mut self,
        _class: RegClass,
        _old_pd: PhysReg,
        _lu: Option<(InstrId, UseKind)>,
    ) {
        unreachable!("scheme returned DestPlan::Conditional without schedule_conditional support")
    }

    /// A conditional branch was renamed: capture whatever speculative scheme
    /// state a misprediction of `branch_id` must restore.
    fn on_branch_renamed(&mut self, _branch_id: InstrId) {}

    /// The oldest in-flight instruction is committing.  Push any physical
    /// registers the scheme wants released *now* onto `releases`; the engine
    /// frees them with reason `EarlyAtLuCommit` and handles stale-mapping
    /// bookkeeping.
    fn on_commit(&mut self, _entry: &RosEntry, _releases: &mut Vec<(RegClass, PhysReg)>) {}

    /// Branch `branch_id` was verified correct: drop its scheme checkpoint.
    /// Append registers to release right now to `release_now` and
    /// `(last-use id, rel-bit mask)` pairs to merge into the in-flight
    /// early-release bits to `to_rwc0` (the extended mechanism's Steps 4/6).
    fn on_branch_correct(
        &mut self,
        _branch_id: InstrId,
        _release_now: &mut Vec<(RegClass, PhysReg)>,
        _to_rwc0: &mut Vec<(InstrId, u8)>,
    ) {
    }

    /// Branch misprediction, part 1: these renamed-but-uncommitted entries
    /// (youngest first) were just squashed.
    fn on_squash(&mut self, _squashed: &[RosEntry]) {}

    /// Branch misprediction, part 2: restore the speculative scheme state
    /// captured when `branch_id` was renamed (checkpoints of younger branches
    /// are dead).
    fn on_branch_mispredict(&mut self, _branch_id: InstrId) {}

    /// Precise exception: every in-flight instruction was squashed; reset
    /// all speculative scheme state.  (`on_squash` is *not* called.)
    fn on_exception(&mut self) {}

    /// Conditional releases currently pending in the scheme (the extended
    /// mechanism's Release Queue marks; 0 for schemes without one).
    fn release_queue_marks(&self) -> usize {
        0
    }

    /// Scheme-side structural invariants, checked by tests and property
    /// tests after every architectural event.
    fn check_invariants(
        &self,
        _in_flight_dsts: usize,
        _pending_branches: usize,
    ) -> Result<(), String> {
        Ok(())
    }
}

impl Clone for Box<dyn ReleaseScheme> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Construction-time data a scheme may need beyond the
/// [`RenameConfig`](crate::types::RenameConfig).  Today that is the oracle's
/// [`KillPlan`]; the seed is extensible without touching scheme call sites.
#[derive(Debug, Clone, Default)]
pub struct SchemeSeed {
    /// The committed-stream last-use plan (required by schemes whose
    /// descriptor sets `needs_kill_plan`; the simulator derives it from the
    /// architectural emulator).
    pub kill_plan: Option<Arc<KillPlan>>,
    /// Test-only injection point: when set, the rename unit uses this scheme
    /// directly instead of building one from the registry.  The conformance
    /// harness injects deliberately-broken mutant schemes through it to prove
    /// the differential checks catch unsafe release behaviour; production
    /// paths (experiments, serving) never set it, so registry ids and cache
    /// keys are unaffected.
    pub scheme_override: Option<Box<dyn ReleaseScheme>>,
}

/// One future-knowledge release event: at committed-instruction position
/// `pos`, the live version of logical register (`fp`, `reg`) dies.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Kill {
    /// Commit position (index into the committed instruction stream).
    pos: u32,
    /// Logical register index within its class.
    reg: u8,
    /// Register class (false = integer, true = FP).
    fp: bool,
    /// True when the dying version is the one *defined at* `pos` (a value
    /// that is never read, paper Figure 4.b); false when `pos` is its last
    /// read (the version to release is the pre-commit architectural one).
    own_def: bool,
}

/// The oracle's future knowledge: for every committed-instruction position,
/// which logical-register versions see their true last use there.
///
/// Built by running the architectural [`Emulator`] over the program — the
/// out-of-order simulator commits exactly the emulator's instruction stream
/// (wrong paths are squashed, exceptions re-execute), so commit position `k`
/// in the simulator is emulator step `k`.  A version defined at position `d`
/// (or the initial architectural mapping, `d = -1`) dies at its last read
/// before the next redefinition, at `d` itself if it is never read, or at
/// position 0 for never-read initial mappings.  Versions never redefined
/// within the trace are conservatively kept alive.
#[derive(Debug)]
pub struct KillPlan {
    kills: Vec<Kill>,
}

impl KillPlan {
    /// Hard cap on the emulated trace length (programs must halt within it).
    pub const MAX_TRACE: u64 = 1 << 26;

    /// Build the plan for `program` by running the architectural emulator to
    /// halt.  Fails if the program does not halt within
    /// [`KillPlan::MAX_TRACE`] instructions — an oracle needs the complete
    /// future.
    pub fn for_program(program: &Program) -> Result<KillPlan, String> {
        #[derive(Clone, Copy)]
        struct RegState {
            /// Position of the live version's definition (-1 = initial).
            def: i64,
            /// Last read of the live version, if any.
            last_read: Option<u32>,
        }
        let reset = RegState {
            def: -1,
            last_read: None,
        };
        let mut state: [Vec<RegState>; 2] = [
            vec![reset; RegClass::Int.num_logical()],
            vec![reset; RegClass::Fp.num_logical()],
        ];
        let mut kills: Vec<Kill> = Vec::new();
        let mut emu = Emulator::new(program);
        let mut pos: u32 = 0;
        loop {
            if emu.halted() {
                break;
            }
            if u64::from(pos) >= Self::MAX_TRACE {
                return Err(format!(
                    "program '{}' did not halt within {} instructions; the oracle \
                     release scheme needs the complete committed trace",
                    program.name,
                    Self::MAX_TRACE
                ));
            }
            let instr = *program
                .fetch(emu.pc())
                .ok_or_else(|| "emulator ran off the end of the program".to_string())?;
            // Reads first: an instruction reading its own destination reads
            // the previous version.
            for src in [instr.src1, instr.src2].into_iter().flatten() {
                state[src.class().index()][src.index()].last_read = Some(pos);
            }
            if let Some(dst) = instr.dst {
                let slot = &mut state[dst.class().index()][dst.index()];
                let (kill_pos, own_def) = match (slot.def, slot.last_read) {
                    // Read since its definition: dies at that last read.
                    (_, Some(read)) => (read, false),
                    // Defined in the trace, never read: dies at its own
                    // definition's commit.
                    (def, None) if def >= 0 => (def as u32, true),
                    // Never-read initial mapping: dead from the start;
                    // anchor the release to the first commit.
                    (_, None) => (0, false),
                };
                kills.push(Kill {
                    pos: kill_pos,
                    reg: dst.index() as u8,
                    fp: dst.class() == RegClass::Fp,
                    own_def,
                });
                *slot = RegState {
                    def: i64::from(pos),
                    last_read: None,
                };
            }
            if emu.step().is_none() {
                break;
            }
            pos += 1;
        }
        // Kills are discovered at redefinition time; replay them in commit
        // order.  The sort is stable, so same-position events keep their
        // deterministic discovery order.
        kills.sort_by_key(|k| k.pos);
        Ok(KillPlan { kills })
    }

    /// Build the plan from a [`DecodedTrace`](earlyreg_isa::DecodedTrace)
    /// captured to halt.  The trace records the same commit-ordered kill
    /// events [`KillPlan::for_program`] derives, so sweeps that replay a
    /// shared trace pay **one** emulator pass per program for both the
    /// replay front-end and oracle-style schemes.  Fails on a budget-capped
    /// trace — an oracle needs the complete future.
    pub fn from_trace(trace: &earlyreg_isa::DecodedTrace) -> Result<KillPlan, String> {
        if !trace.halted() {
            return Err(
                "decoded trace does not cover the complete execution; the oracle \
                 release scheme needs the complete committed trace"
                    .into(),
            );
        }
        let kills = trace
            .kill_events()
            .iter()
            .map(|e| Kill {
                pos: e.pos,
                reg: e.reg.index() as u8,
                fp: e.reg.class() == RegClass::Fp,
                own_def: e.own_def,
            })
            .collect();
        Ok(KillPlan { kills })
    }

    /// Total release events in the plan.
    pub fn len(&self) -> usize {
        self.kills.len()
    }

    /// True when the plan schedules no releases.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    /// The events at commit position `pos`, starting the scan at `cursor`
    /// (events are position-sorted; the caller advances the cursor
    /// monotonically).  Returns the new cursor and the matching range.
    pub(crate) fn at(&self, cursor: usize, pos: u64) -> (usize, &[Kill]) {
        let start = cursor;
        let mut end = cursor;
        while end < self.kills.len() && u64::from(self.kills[end].pos) <= pos {
            debug_assert_eq!(
                u64::from(self.kills[end].pos),
                pos,
                "kill positions must be consumed in commit order"
            );
            end += 1;
        }
        (end, &self.kills[start..end])
    }
}

impl Kill {
    /// The logical register this event kills a version of.
    pub(crate) fn reg(&self) -> ArchReg {
        ArchReg::new(
            if self.fp { RegClass::Fp } else { RegClass::Int },
            self.reg as usize,
        )
    }

    /// See [`Kill::own_def`].
    pub(crate) fn own_def(&self) -> bool {
        self.own_def
    }
}
