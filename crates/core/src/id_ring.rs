//! A program-ordered ring buffer of in-flight instructions with O(1)
//! [`InstrId`] → slot resolution.
//!
//! Both views of the paper's Reorder Structure — the rename engine's
//! [`RosBook`](crate::ros::RosBook) and the simulator's pipeline-side
//! reorder buffer — store entries in program order, commit from the head,
//! squash a suffix on mispredictions and look entries up by [`InstrId`]
//! between those events.  The seed implementation kept a `VecDeque` and
//! resolved ids with a binary search on every access; this module replaces
//! that with the slot-indexed ring organisation SimpleScalar-style RUU
//! simulators use:
//!
//! * Entries live in a power-of-two array of `slots`; `head`/`len` describe
//!   the occupied window.  A slot's physical index is stable for the entire
//!   lifetime of its entry (pushes append at the tail, commits advance the
//!   head, squashes retreat the tail), so callers may cache `(id, slot)`
//!   pairs in side structures (ready lists, completion event queues) and
//!   revalidate them cheaply with [`IdRing::at`].
//! * Ids are allocated monotonically but are *not* contiguous across
//!   squashes (squashed ids are never reissued).  A dense `lookup` window
//!   keyed by `id - base_id` maps every id in `[head id, tail id]` to its
//!   slot, with squash gaps holding an invalid sentinel.  The window is
//!   trimmed as the head advances, so its length tracks the id span of the
//!   in-flight window, not the run length.
//!
//! All hot operations — push, id lookup, slot access, head pop — are O(1);
//! squashes are O(entries removed).

use crate::types::InstrId;
use std::collections::VecDeque;

/// Sentinel for ids inside the lookup window that no longer (or never) had
/// an entry: squash gaps.
const INVALID_SLOT: u32 = u32::MAX;

/// Entries stored in an [`IdRing`] expose the id they were pushed under.
pub trait HasInstrId {
    /// The dynamic instruction id of this entry.
    fn instr_id(&self) -> InstrId;
}

/// Fixed- or growable-capacity ring buffer with O(1) id→slot resolution.
/// See the module documentation for the organisation.
#[derive(Debug, Clone)]
pub struct IdRing<T> {
    /// Power-of-two slot array; `None` marks unoccupied slots.
    slots: Vec<Option<T>>,
    /// Physical index of the oldest entry (meaningful when `len > 0`).
    head: usize,
    /// Number of occupied slots.
    len: usize,
    /// Logical capacity (`None` = grow on demand).
    capacity: Option<usize>,
    /// Id corresponding to `lookup[0]` (meaningful when `lookup` is
    /// non-empty).
    base_id: u64,
    /// `lookup[id - base_id]` = physical slot of `id`, or [`INVALID_SLOT`].
    lookup: VecDeque<u32>,
}

impl<T: HasInstrId> IdRing<T> {
    /// An empty ring that panics when pushed beyond `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = capacity.next_power_of_two().max(2);
        IdRing {
            slots: (0..slots).map(|_| None).collect(),
            head: 0,
            len: 0,
            capacity: Some(capacity),
            base_id: 0,
            lookup: VecDeque::new(),
        }
    }

    /// An empty ring that doubles its slot array when full.
    pub fn growable(initial_slots: usize) -> Self {
        let slots = initial_slots.next_power_of_two().max(2);
        IdRing {
            slots: (0..slots).map(|_| None).collect(),
            head: 0,
            len: 0,
            capacity: None,
            base_id: 0,
            lookup: VecDeque::new(),
        }
    }

    /// Number of in-flight entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when a fixed-capacity ring cannot accept another push.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.len >= c)
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    #[inline]
    fn phys(&self, logical: usize) -> usize {
        (self.head + logical) & self.mask()
    }

    /// Append `entry` as the youngest; returns its (stable) slot index.
    ///
    /// # Panics
    /// Panics on program-order violations and, for fixed-capacity rings, on
    /// overflow.
    pub fn push(&mut self, entry: T) -> u32 {
        let id = entry.instr_id();
        if let Some(back) = self.back() {
            assert!(
                back.instr_id() < id,
                "entries must be pushed in program order ({} then {})",
                back.instr_id(),
                id
            );
        }
        assert!(!self.is_full(), "id ring overflow");
        if self.len == self.slots.len() {
            self.grow();
        }
        let slot = self.phys(self.len);
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(entry);
        self.len += 1;

        if self.lookup.is_empty() {
            self.base_id = id.0;
        }
        // Pad squash gaps so the window stays dense in id space.
        while self.base_id + (self.lookup.len() as u64) < id.0 {
            self.lookup.push_back(INVALID_SLOT);
        }
        self.lookup.push_back(slot as u32);
        slot as u32
    }

    /// Double the slot array, re-packing entries from physical index 0 and
    /// rebuilding the id window (growable rings only; invalidates previously
    /// returned slot indices).
    fn grow(&mut self) {
        let old_len = self.len;
        let mut entries: Vec<T> = Vec::with_capacity(old_len);
        for i in 0..old_len {
            let p = self.phys(i);
            entries.push(self.slots[p].take().expect("occupied window"));
        }
        self.slots = (0..self.slots.len() * 2).map(|_| None).collect();
        self.head = 0;
        self.lookup.clear();
        for (i, entry) in entries.into_iter().enumerate() {
            let id = entry.instr_id();
            if i == 0 {
                self.base_id = id.0;
            }
            while self.base_id + (self.lookup.len() as u64) < id.0 {
                self.lookup.push_back(INVALID_SLOT);
            }
            self.lookup.push_back(i as u32);
            self.slots[i] = Some(entry);
        }
    }

    /// O(1) id → slot resolution.
    #[inline]
    pub fn slot_of(&self, id: InstrId) -> Option<u32> {
        if self.lookup.is_empty() || id.0 < self.base_id {
            return None;
        }
        let offset = (id.0 - self.base_id) as usize;
        match self.lookup.get(offset) {
            Some(&slot) if slot != INVALID_SLOT => Some(slot),
            _ => None,
        }
    }

    /// Entry occupying `slot`, if any.  Callers revalidating cached
    /// `(id, slot)` pairs must compare the returned entry's id.
    #[inline]
    pub fn at(&self, slot: u32) -> Option<&T> {
        self.slots[slot as usize & self.mask()].as_ref()
    }

    /// Mutable access to the entry occupying `slot`.
    #[inline]
    pub fn at_mut(&mut self, slot: u32) -> Option<&mut T> {
        let mask = self.mask();
        self.slots[slot as usize & mask].as_mut()
    }

    /// Shared access by id.
    #[inline]
    pub fn get(&self, id: InstrId) -> Option<&T> {
        self.slot_of(id).and_then(|s| self.at(s))
    }

    /// Mutable access by id.
    #[inline]
    pub fn get_mut(&mut self, id: InstrId) -> Option<&mut T> {
        self.slot_of(id).and_then(move |s| self.at_mut(s))
    }

    /// The oldest entry.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    /// Slot index of the oldest entry.
    #[inline]
    pub fn front_slot(&self) -> Option<u32> {
        (self.len > 0).then_some(self.head as u32)
    }

    /// Number of physical slots (the slot-index space for side arrays that
    /// mirror this ring).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The youngest entry.
    #[inline]
    pub fn back(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.phys(self.len - 1)].as_ref()
        }
    }

    /// Remove and return the oldest entry.
    ///
    /// # Panics
    /// Panics when empty.
    pub fn pop_front(&mut self) -> T {
        assert!(self.len > 0, "pop from an empty id ring");
        let entry = self.slots[self.head].take().expect("head is occupied");
        debug_assert_eq!(
            entry.instr_id().0,
            self.base_id,
            "the head id is the lookup window base"
        );
        self.head = (self.head + 1) & self.mask();
        self.len -= 1;
        self.lookup.pop_front();
        self.base_id += 1;
        // Trim squash gaps so the window front stays aligned with the head.
        while let Some(&INVALID_SLOT) = self.lookup.front() {
            self.lookup.pop_front();
            self.base_id += 1;
        }
        if self.len == 0 {
            self.lookup.clear();
        }
        entry
    }

    /// Remove every entry younger than `id` (younger-or-equal with
    /// `inclusive`), passing each to `consume` youngest-first.  Returns how
    /// many entries were removed.
    pub fn squash_after(
        &mut self,
        id: InstrId,
        inclusive: bool,
        mut consume: impl FnMut(T),
    ) -> usize {
        let mut removed = 0;
        while self.len > 0 {
            let tail = self.phys(self.len - 1);
            let tail_id = self.slots[tail]
                .as_ref()
                .expect("tail is occupied")
                .instr_id();
            let kill = if inclusive {
                tail_id >= id
            } else {
                tail_id > id
            };
            if !kill {
                break;
            }
            consume(self.slots[tail].take().expect("tail is occupied"));
            self.len -= 1;
            removed += 1;
        }
        // Shrink the id window to end at the new youngest id.
        if self.len == 0 {
            self.lookup.clear();
        } else if removed > 0 {
            let bound = if inclusive { id.0 } else { id.0 + 1 };
            let keep = (bound.saturating_sub(self.base_id)) as usize;
            self.lookup.truncate(keep.min(self.lookup.len()));
            while let Some(&INVALID_SLOT) = self.lookup.back() {
                self.lookup.pop_back();
            }
        }
        removed
    }

    /// Remove every entry, passing each to `consume` youngest-first.
    /// Returns how many entries were removed.
    pub fn drain_all(&mut self, mut consume: impl FnMut(T)) -> usize {
        let removed = self.len;
        while self.len > 0 {
            let tail = self.phys(self.len - 1);
            consume(self.slots[tail].take().expect("tail is occupied"));
            self.len -= 1;
        }
        self.head = 0;
        self.lookup.clear();
        removed
    }

    /// Iterate oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len).map(move |i| self.slots[self.phys(i)].as_ref().expect("occupied window"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct E(u64);
    impl HasInstrId for E {
        fn instr_id(&self) -> InstrId {
            InstrId(self.0)
        }
    }

    #[test]
    fn push_lookup_pop_roundtrip() {
        let mut r: IdRing<E> = IdRing::with_capacity(4);
        let s1 = r.push(E(10));
        let s2 = r.push(E(11));
        assert_ne!(s1, s2);
        assert_eq!(r.get(InstrId(10)), Some(&E(10)));
        assert_eq!(r.get(InstrId(11)), Some(&E(11)));
        assert_eq!(r.get(InstrId(12)), None);
        assert_eq!(r.front(), Some(&E(10)));
        assert_eq!(r.pop_front(), E(10));
        assert_eq!(r.get(InstrId(10)), None);
        assert_eq!(r.get(InstrId(11)), Some(&E(11)));
    }

    #[test]
    fn id_gaps_resolve_to_none() {
        let mut r: IdRing<E> = IdRing::with_capacity(8);
        r.push(E(1));
        r.push(E(100));
        assert_eq!(r.get(InstrId(50)), None);
        assert_eq!(r.get(InstrId(100)), Some(&E(100)));
        assert_eq!(r.pop_front(), E(1));
        // The window front realigns past the gap.
        assert_eq!(r.front(), Some(&E(100)));
        assert_eq!(r.get(InstrId(100)), Some(&E(100)));
    }

    #[test]
    fn squash_trims_the_lookup_window() {
        let mut r: IdRing<E> = IdRing::with_capacity(8);
        for id in 1..=6 {
            r.push(E(id));
        }
        let mut squashed = Vec::new();
        assert_eq!(r.squash_after(InstrId(3), false, |e| squashed.push(e)), 3);
        assert_eq!(squashed, vec![E(6), E(5), E(4)]);
        assert_eq!(r.get(InstrId(4)), None);
        assert_eq!(r.get(InstrId(3)), Some(&E(3)));
        // Ids continue after the gap.
        r.push(E(9));
        assert_eq!(r.get(InstrId(9)), Some(&E(9)));
        assert_eq!(r.get(InstrId(5)), None);
    }

    #[test]
    fn wraparound_preserves_o1_lookup() {
        let mut r: IdRing<E> = IdRing::with_capacity(4);
        let mut next = 0u64;
        for round in 0..10 {
            while r.len() < 4 {
                r.push(E(next));
                next += 1;
            }
            // Squash the youngest two, commit one from the head.
            r.squash_after(InstrId(next - 3), false, |_| {});
            next += round; // leave a different gap each round
            r.pop_front();
            for e in r.iter() {
                assert_eq!(r.get(e.instr_id()), Some(e));
            }
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn fixed_capacity_overflow_panics() {
        let mut r: IdRing<E> = IdRing::with_capacity(1);
        r.push(E(1));
        r.push(E(2));
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_push_panics() {
        let mut r: IdRing<E> = IdRing::growable(4);
        r.push(E(5));
        r.push(E(4));
    }

    #[test]
    fn growable_ring_grows_and_relocates() {
        let mut r: IdRing<E> = IdRing::growable(2);
        for id in 0..40 {
            r.push(E(id));
        }
        assert_eq!(r.len(), 40);
        for id in 0..40 {
            assert_eq!(r.get(InstrId(id)), Some(&E(id)));
        }
        let ids: Vec<u64> = r.iter().map(|e| e.0).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn drain_all_empties_youngest_first() {
        let mut r: IdRing<E> = IdRing::growable(4);
        for id in 1..=3 {
            r.push(E(id));
        }
        let mut drained = Vec::new();
        assert_eq!(r.drain_all(|e| drained.push(e)), 3);
        assert_eq!(drained, vec![E(3), E(2), E(1)]);
        assert!(r.is_empty());
        assert_eq!(r.get(InstrId(1)), None);
    }
}
