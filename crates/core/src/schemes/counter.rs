//! Conservative counter-based release — early release without a Last-Uses
//! CAM and without any per-branch scheme checkpoint, in the spirit of the
//! checkpoint-free unmap-counter proposals that followed the paper.
//!
//! Per physical register the scheme keeps one counter of *renamed but not
//! yet committed* readers (incremented at rename, decremented at the
//! reader's commit or squash).  At a redefinition's decode, the previous
//! version can be released immediately (or reused, Section 3.2) when the
//! scheme can prove with counters alone what the basic mechanism proves
//! with its CAM: the previous version is settled architectural state
//! (`DestQuery::old_is_settled_arch`), it has no in-flight reader, and no
//! branch is pending.  An instruction reading its own destination is its
//! own last use and needs no CAM either.  Everything else falls back to the
//! conventional release, so the scheme lands between conventional and basic
//! — the price of dropping the CAM.
//!
//! The counters need no checkpointing: every renamed reader is eventually
//! committed or squashed exactly once, and both paths decrement.

use crate::ros::RosEntry;
use crate::scheme::{DestPlan, DestQuery, ReleaseScheme};
use crate::types::{InstrId, PhysReg, ReleasePolicy, RenameConfig, UseKind};
use earlyreg_isa::{ArchReg, RegClass};

/// The counter-based (unmap-counter) scheme.
#[derive(Debug, Clone)]
pub struct CounterScheme {
    /// Per class, per physical register: renamed-but-uncommitted readers.
    readers: [Vec<u32>; 2],
}

impl CounterScheme {
    /// A scheme with all counters at zero, sized for the configured files.
    pub fn new(config: &RenameConfig) -> Self {
        CounterScheme {
            readers: [vec![0; config.phys_int], vec![0; config.phys_fp]],
        }
    }

    fn drop_reader(&mut self, class: RegClass, phys: PhysReg) {
        let counter = &mut self.readers[class.index()][phys.index()];
        debug_assert!(*counter > 0, "reader counter underflow on {class} {phys}");
        *counter = counter.saturating_sub(1);
    }
}

impl ReleaseScheme for CounterScheme {
    fn policy(&self) -> ReleasePolicy {
        ReleasePolicy::Counter
    }

    fn box_clone(&self) -> Box<dyn ReleaseScheme> {
        Box::new(self.clone())
    }

    fn record_use(&mut self, reg: ArchReg, phys: PhysReg, _id: InstrId, kind: UseKind) {
        if kind != UseKind::Dst {
            self.readers[reg.class().index()][phys.index()] += 1;
        }
    }

    fn plan_dest(&self, query: &DestQuery) -> DestPlan {
        if let Some(kind) = query.own_use {
            // The redefinition is itself the (youngest possible) last use of
            // the previous version: release at its own commit — in-order
            // commit covers every older reader, and a squash kills the
            // release bit together with the instruction.  No CAM needed.
            return DestPlan::EarlyOnSelf { kind };
        }
        let no_readers = self.readers[query.dst.class().index()][query.old_pd.index()] == 0;
        if query.pending_branches == 0 && query.old_is_settled_arch && no_readers {
            if query.reuse_on_committed_lu {
                DestPlan::Reuse
            } else {
                DestPlan::ReleaseNow
            }
        } else {
            DestPlan::ReleaseAtCommit { fallback: true }
        }
    }

    fn on_commit(&mut self, entry: &RosEntry, _releases: &mut Vec<(RegClass, PhysReg)>) {
        for &(arch, phys) in entry.srcs.iter().flatten() {
            self.drop_reader(arch.class(), phys);
        }
    }

    fn on_squash(&mut self, squashed: &[RosEntry]) {
        for entry in squashed {
            for &(arch, phys) in entry.srcs.iter().flatten() {
                self.drop_reader(arch.class(), phys);
            }
        }
    }

    fn on_exception(&mut self) {
        for class in &mut self.readers {
            class.fill(0);
        }
    }
}
