//! The built-in release schemes.
//!
//! Each submodule is one self-contained [`ReleaseScheme`](crate::scheme::ReleaseScheme)
//! implementation; the [registry](crate::registry) wires them to their
//! string ids.  `conventional`, `basic` and `extended` reproduce the paper's
//! three mechanisms bit-identically to the pre-refactor hard-wired engine
//! (pinned by `tests/stats_equivalence.rs`); `oracle` and `counter` are the
//! proof that the layer is open — neither required an engine change.

pub mod basic;
pub mod conventional;
pub mod counter;
pub mod extended;
pub mod oracle;

mod lus;

pub use basic::BasicScheme;
pub use conventional::ConventionalScheme;
pub use counter::CounterScheme;
pub use extended::ExtendedScheme;
pub use oracle::OracleScheme;
