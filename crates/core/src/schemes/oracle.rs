//! Oracle release — the ideal upper bound the paper's mechanisms chase.
//!
//! The scheme knows, from the architectural emulator's trace
//! ([`KillPlan`]), the *true* last use of every register version on the
//! committed path, and releases each physical register exactly when that
//! last use commits — before the redefinition is decoded, possibly before
//! it is even fetched.  No Last-Uses CAM, no Release Queue, no conventional
//! path: [`DestPlan::AllocOnly`] for every redefinition, and all releases
//! flow from [`ReleaseScheme::on_commit`].
//!
//! Releasing ahead of the redefinition means the speculative map (and any
//! branch checkpoint of it) can still name a freed register; the engine
//! flags those mappings stale when it performs the scheme's releases, which
//! is the same Section 4.3 machinery that protects post-exception stale
//! mappings.  Wrong-path consumers may read a reallocated register's value —
//! harmless, their results are squashed — and commit-time safety is
//! guaranteed because commits are in order: when the last use at position
//! `k` commits, every older reader has committed and read its value.
//!
//! Speculation needs no scheme state at all: the plan is keyed by commit
//! position, wrong-path renames never commit, and exceptions re-execute the
//! same committed stream.

use crate::ros::RosEntry;
use crate::scheme::{DestPlan, DestQuery, KillPlan, ReleaseScheme, SchemeSeed};
use crate::types::{PhysReg, ReleasePolicy};
use earlyreg_isa::RegClass;
use std::sync::Arc;

/// The oracle (ideal-release) scheme.
#[derive(Debug, Clone)]
pub struct OracleScheme {
    plan: Arc<KillPlan>,
    /// Next unconsumed event in the position-sorted plan.
    cursor: usize,
    /// Commit position (how many instructions have committed).
    committed: u64,
    /// Physical register of each logical register's committed version —
    /// mirrors the engine's in-order map, which the scheme cannot see.
    arch_phys: [Vec<PhysReg>; 2],
}

impl OracleScheme {
    /// Build from the seed's [`KillPlan`].
    pub fn new(seed: &SchemeSeed) -> Result<Self, String> {
        let plan = seed.kill_plan.clone().ok_or_else(|| {
            "the oracle scheme needs a committed-trace kill plan (SchemeSeed::kill_plan); \
             run it through the simulator, which derives one from the emulator"
                .to_string()
        })?;
        Ok(OracleScheme {
            plan,
            cursor: 0,
            committed: 0,
            arch_phys: [
                (0..RegClass::Int.num_logical())
                    .map(|i| PhysReg(i as u16))
                    .collect(),
                (0..RegClass::Fp.num_logical())
                    .map(|i| PhysReg(i as u16))
                    .collect(),
            ],
        })
    }
}

impl ReleaseScheme for OracleScheme {
    fn policy(&self) -> ReleasePolicy {
        ReleasePolicy::Oracle
    }

    fn box_clone(&self) -> Box<dyn ReleaseScheme> {
        Box::new(self.clone())
    }

    fn plan_dest(&self, _query: &DestQuery) -> DestPlan {
        DestPlan::AllocOnly
    }

    fn on_commit(&mut self, entry: &RosEntry, releases: &mut Vec<(RegClass, PhysReg)>) {
        let pos = self.committed;
        self.committed += 1;
        let (cursor, kills) = self.plan.at(self.cursor, pos);
        self.cursor = cursor;

        // Versions whose last *read* is this commit die first (before the
        // in-order map moves on: `arch_phys` still names them) ...
        for kill in kills.iter().filter(|k| !k.own_def()) {
            let reg = kill.reg();
            releases.push((
                reg.class(),
                self.arch_phys[reg.class().index()][reg.index()],
            ));
        }
        // ... then the committed version advances ...
        if let Some(d) = entry.dst {
            self.arch_phys[d.arch.class().index()][d.arch.index()] = d.phys;
        }
        // ... and a just-defined value that is never read dies at its own
        // commit (Figure 4.b taken to the limit).
        for kill in kills.iter().filter(|k| k.own_def()) {
            let reg = kill.reg();
            releases.push((
                reg.class(),
                self.arch_phys[reg.class().index()][reg.index()],
            ));
        }
    }
}
