//! The *basic* early-release mechanism (paper Section 3).
//!
//! A Last-Uses Table pairs every redefinition (NV) with the last use (LU) of
//! the previous version:
//!
//! * **Case 1** — LU in flight, no unverified branch between LU and NV: the
//!   release is retimed to LU's commit via an early-release bit.
//! * LU already committed, no pending branches: release immediately at NV's
//!   decode — or *reuse* the register (Section 3.2) when enabled.
//! * **Case 2** — an unverified branch separates LU from NV (or any branch
//!   is pending while LU is committed): fall back to the conventional
//!   release.
//!
//! The LUs Table is checkpointed per branch and `C` bits are updated in
//! every copy at commit; both live in [`LusState`].

use super::lus::LusState;
use crate::ros::RosEntry;
use crate::scheme::{DestPlan, DestQuery, ReleaseScheme};
use crate::types::{InstrId, PhysReg, ReleasePolicy, UseKind};
use earlyreg_isa::{ArchReg, RegClass};

/// The basic early-release scheme.
#[derive(Debug, Clone)]
pub struct BasicScheme {
    lus: LusState,
}

impl BasicScheme {
    /// A scheme in the reset state.
    pub fn new() -> Self {
        BasicScheme {
            lus: LusState::new(),
        }
    }
}

impl Default for BasicScheme {
    fn default() -> Self {
        Self::new()
    }
}

/// The basic/extended shared planning core: everything except what happens
/// when speculation forbids the early release (the `blocked` cases).
pub(crate) fn plan_with_lus(
    lus: &LusState,
    query: &DestQuery,
    blocked_committed_lu: DestPlan,
    blocked_inflight_lu: impl FnOnce(InstrId, UseKind) -> DestPlan,
) -> DestPlan {
    if let Some(kind) = query.own_use {
        // The instruction reads its own destination: it is itself the last
        // use of the previous version (safe regardless of speculation — a
        // squash kills the release bit together with the redefinition).
        return DestPlan::EarlyOnSelf { kind };
    }
    let lu = lus.get(query.dst);
    match (lu.committed, lu.last_user) {
        // Last use already committed.
        (true, _) => {
            if query.pending_branches == 0 {
                if query.reuse_on_committed_lu {
                    DestPlan::Reuse
                } else {
                    DestPlan::ReleaseNow
                }
            } else {
                blocked_committed_lu
            }
        }
        // Last use still in flight.  Unsafe when an *unverified* branch lies
        // between the last use and this redefinition — or when the last use
        // is itself an unverified branch: if it mispredicts, this
        // redefinition is squashed and the map rolled back, but the
        // surviving last-use entry would still carry the release bit and
        // free a register that is live again.
        (false, Some(lu_id)) => {
            let branch_between = query.newest_branch.is_some_and(|b| b >= lu_id);
            if !branch_between {
                // Case 1: every pending branch (if any) is older than the
                // last use, so a misprediction squashes the last use along
                // with this redefinition and the scheduling dies with it.
                DestPlan::EarlyOnLu {
                    lu: lu_id,
                    kind: lu.kind,
                }
            } else {
                blocked_inflight_lu(lu_id, lu.kind)
            }
        }
        (false, None) => unreachable!("an uncommitted LUs entry always names its last user"),
    }
}

impl ReleaseScheme for BasicScheme {
    fn policy(&self) -> ReleasePolicy {
        ReleasePolicy::Basic
    }

    fn box_clone(&self) -> Box<dyn ReleaseScheme> {
        Box::new(self.clone())
    }

    fn record_use(&mut self, reg: ArchReg, _phys: PhysReg, id: InstrId, kind: UseKind) {
        self.lus.record_use(reg, id, kind);
    }

    fn plan_dest(&self, query: &DestQuery) -> DestPlan {
        // Case 2 in both blocked situations: leave the conventional release
        // in place.
        plan_with_lus(
            &self.lus,
            query,
            DestPlan::ReleaseAtCommit { fallback: true },
            |_, _| DestPlan::ReleaseAtCommit { fallback: true },
        )
    }

    fn on_branch_renamed(&mut self, branch_id: InstrId) {
        self.lus.checkpoint(branch_id);
    }

    fn on_commit(&mut self, entry: &RosEntry, _releases: &mut Vec<(RegClass, PhysReg)>) {
        for &(arch, _) in entry.srcs.iter().flatten() {
            self.lus.mark_committed(arch, entry.id);
        }
        if let Some(d) = entry.dst {
            self.lus.mark_committed(d.arch, entry.id);
        }
    }

    fn on_branch_correct(
        &mut self,
        branch_id: InstrId,
        _release_now: &mut Vec<(RegClass, PhysReg)>,
        _to_rwc0: &mut Vec<(InstrId, u8)>,
    ) {
        self.lus.drop_checkpoint(branch_id);
    }

    fn on_branch_mispredict(&mut self, branch_id: InstrId) {
        self.lus.restore(branch_id);
    }

    fn on_exception(&mut self) {
        self.lus.reset();
    }
}
