//! Conventional release (paper Section 2): a redefinition allocates a new
//! physical register and the previous version is released when the
//! redefinition commits.  No last-use tracking, no speculative scheme state
//! — every hook is the trait default.

use crate::scheme::{DestPlan, DestQuery, ReleaseScheme};
use crate::types::ReleasePolicy;

/// The conventional scheme.
#[derive(Debug, Clone, Default)]
pub struct ConventionalScheme;

impl ReleaseScheme for ConventionalScheme {
    fn policy(&self) -> ReleasePolicy {
        ReleasePolicy::Conventional
    }

    fn box_clone(&self) -> Box<dyn ReleaseScheme> {
        Box::new(self.clone())
    }

    fn plan_dest(&self, _query: &DestQuery) -> DestPlan {
        DestPlan::ReleaseAtCommit { fallback: false }
    }
}
