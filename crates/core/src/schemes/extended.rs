//! The *extended* early-release mechanism (paper Section 4): the
//! conventional release path is removed entirely.  Redefinitions decoded
//! under pending branches schedule *conditional* releases in the
//! [`ReleaseQueue`] — cancelled by mispredictions, performed at last-use
//! commit / oldest-branch confirmation otherwise.  Everything the basic
//! scheme does (Last-Uses Table, retimed and immediate releases, reuse)
//! carries over through the shared [`LusState`] planning core.

use super::basic::plan_with_lus;
use super::lus::LusState;
use crate::release_queue::ReleaseQueue;
use crate::ros::RosEntry;
use crate::scheme::{DestPlan, DestQuery, ReleaseScheme};
use crate::types::{InstrId, PhysReg, ReleasePolicy, RenameConfig, UseKind};
use earlyreg_isa::{ArchReg, RegClass};

/// The extended early-release scheme.
#[derive(Debug, Clone)]
pub struct ExtendedScheme {
    lus: LusState,
    relque: ReleaseQueue,
}

impl ExtendedScheme {
    /// A scheme in the reset state, with Release Queue bit-vectors sized for
    /// the configured register files.
    pub fn new(config: &RenameConfig) -> Self {
        ExtendedScheme {
            lus: LusState::new(),
            relque: ReleaseQueue::new(config.phys_int, config.phys_fp),
        }
    }
}

impl ReleaseScheme for ExtendedScheme {
    fn policy(&self) -> ReleasePolicy {
        ReleasePolicy::Extended
    }

    fn box_clone(&self) -> Box<dyn ReleaseScheme> {
        Box::new(self.clone())
    }

    fn record_use(&mut self, reg: ArchReg, _phys: PhysReg, id: InstrId, kind: UseKind) {
        self.lus.record_use(reg, id, kind);
    }

    fn plan_dest(&self, query: &DestQuery) -> DestPlan {
        // Where the basic mechanism falls back to the conventional path, the
        // extended one schedules a conditional release instead (Step 2).
        plan_with_lus(
            &self.lus,
            query,
            DestPlan::Conditional { lu: None },
            |lu, kind| DestPlan::Conditional {
                lu: Some((lu, kind)),
            },
        )
    }

    fn schedule_conditional(
        &mut self,
        class: RegClass,
        old_pd: PhysReg,
        lu: Option<(InstrId, UseKind)>,
    ) {
        match lu {
            None => self.relque.mark_committed_lu(class, old_pd),
            Some((lu, kind)) => self.relque.mark_inflight_lu(lu, kind),
        }
    }

    fn on_branch_renamed(&mut self, branch_id: InstrId) {
        self.lus.checkpoint(branch_id);
        self.relque.push_level(branch_id);
    }

    fn on_commit(&mut self, entry: &RosEntry, _releases: &mut Vec<(RegClass, PhysReg)>) {
        for &(arch, _) in entry.srcs.iter().flatten() {
            self.lus.mark_committed(arch, entry.id);
        }
        if let Some(d) = entry.dst {
            self.lus.mark_committed(d.arch, entry.id);
        }
        // Step 5: conditional releases tied to this instruction's commit
        // switch from the RwC form to the RwNS form.
        self.relque.on_commit(entry.id, |kind| {
            entry
                .operand_phys(kind)
                .map(|(arch, phys)| (arch.class(), phys))
        });
    }

    fn on_branch_correct(
        &mut self,
        branch_id: InstrId,
        release_now: &mut Vec<(RegClass, PhysReg)>,
        to_rwc0: &mut Vec<(InstrId, u8)>,
    ) {
        self.lus.drop_checkpoint(branch_id);
        self.relque.confirm_into(branch_id, release_now, to_rwc0);
    }

    fn on_branch_mispredict(&mut self, branch_id: InstrId) {
        self.lus.restore(branch_id);
        self.relque.mispredict(branch_id);
    }

    fn on_exception(&mut self) {
        self.lus.reset();
        self.relque.clear();
    }

    fn release_queue_marks(&self) -> usize {
        self.relque.total_marks()
    }

    fn check_invariants(
        &self,
        in_flight_dsts: usize,
        pending_branches: usize,
    ) -> Result<(), String> {
        if self.relque.total_marks() > in_flight_dsts {
            return Err(format!(
                "release queue holds {} marks but only {in_flight_dsts} in-flight instructions \
                 have destinations (paper Section 4.2 bound violated)",
                self.relque.total_marks()
            ));
        }
        if self.relque.depth() != pending_branches {
            return Err(format!(
                "release queue depth ({}) out of sync with pending branches ({pending_branches})",
                self.relque.depth()
            ));
        }
        Ok(())
    }
}
