//! Shared Last-Uses Table state for the basic and extended schemes: the
//! working per-class tables plus the per-branch checkpoint stack (paper
//! Section 3.1: "an LUs Table copy is made at each branch prediction";
//! Section 3.2: commit-time `C` updates are applied to every copy).
//!
//! Checkpoint buffers are pooled, so steady-state branch decode copies into
//! retired tables instead of allocating.

use crate::lus_table::{LusEntry, LusTable};
use crate::types::{InstrId, UseKind};
use earlyreg_isa::{ArchReg, RegClass};
use std::collections::VecDeque;

/// Working Last-Uses Tables plus their branch checkpoints.
#[derive(Debug, Clone)]
pub(crate) struct LusState {
    tables: [LusTable; 2],
    checkpoints: VecDeque<(InstrId, [LusTable; 2])>,
    pool: Vec<[LusTable; 2]>,
}

impl LusState {
    pub(crate) fn new() -> Self {
        LusState {
            tables: [LusTable::new(RegClass::Int), LusTable::new(RegClass::Fp)],
            checkpoints: VecDeque::new(),
            pool: Vec::new(),
        }
    }

    pub(crate) fn get(&self, reg: ArchReg) -> LusEntry {
        self.tables[reg.class().index()].get(reg)
    }

    pub(crate) fn record_use(&mut self, reg: ArchReg, id: InstrId, kind: UseKind) {
        self.tables[reg.class().index()].record_use(reg, id, kind);
    }

    /// Commit-time `C`-bit update, applied to the working tables *and* every
    /// checkpoint copy (Section 3.2).
    pub(crate) fn mark_committed(&mut self, reg: ArchReg, id: InstrId) {
        self.tables[reg.class().index()].mark_committed(reg, id);
        for (_, copy) in self.checkpoints.iter_mut() {
            copy[reg.class().index()].mark_committed(reg, id);
        }
    }

    /// Capture a checkpoint for a just-renamed branch (pooled).
    pub(crate) fn checkpoint(&mut self, branch_id: InstrId) {
        let copy = match self.pool.pop() {
            Some(mut copy) => {
                copy[0].restore_from(&self.tables[0]);
                copy[1].restore_from(&self.tables[1]);
                copy
            }
            None => [self.tables[0].clone(), self.tables[1].clone()],
        };
        self.checkpoints.push_back((branch_id, copy));
    }

    /// Branch verified correct: its checkpoint will never be restored.
    pub(crate) fn drop_checkpoint(&mut self, branch_id: InstrId) {
        let pos = self
            .checkpoints
            .iter()
            .position(|(id, _)| *id == branch_id)
            .unwrap_or_else(|| panic!("branch {branch_id} has no LUs checkpoint to confirm"));
        if let Some((_, copy)) = self.checkpoints.remove(pos) {
            self.pool.push(copy);
        }
    }

    /// Branch mispredicted: restore the working tables from its checkpoint
    /// and discard it together with every younger one.
    pub(crate) fn restore(&mut self, branch_id: InstrId) {
        let pos = self
            .checkpoints
            .iter()
            .position(|(id, _)| *id == branch_id)
            .unwrap_or_else(|| panic!("mispredicted branch {branch_id} has no LUs checkpoint"));
        while self.checkpoints.len() > pos + 1 {
            let (_, copy) = self.checkpoints.pop_back().expect("length checked");
            self.pool.push(copy);
        }
        let (_, copy) = self.checkpoints.pop_back().expect("checkpoint exists");
        self.tables[0].restore_from(&copy[0]);
        self.tables[1].restore_from(&copy[1]);
        self.pool.push(copy);
    }

    /// Exception recovery / machine reset: every entry back to "last use
    /// long committed", no checkpoints.
    pub(crate) fn reset(&mut self) {
        self.tables[0].reset_all();
        self.tables[1].reset_all();
        while let Some((_, copy)) = self.checkpoints.pop_back() {
            self.pool.push(copy);
        }
    }
}
