//! The release-scheme registry: the single source of truth for which
//! policies exist, what they are called, and how to construct them.
//!
//! Every layer above the core — the experiment engine, `Scenario` files,
//! the `earlyreg-exp` CLI, the `earlyreg-serve` JSON API, the Criterion
//! benches — enumerates policies from here instead of hard-coding a list,
//! so registering a new scheme in this one table makes it reachable
//! everywhere.  Paper figures plot the canonical three via
//! [`PAPER_POLICIES`].
//!
//! Registry ids flow verbatim into experiment cache keys (a policy
//! serializes as its id string), so **adding** a scheme never invalidates
//! cached points — new ids extend the keyspace.  Renaming or reordering
//! existing entries does (that warrants a `CACHE_VERSION` bump, as the
//! variant-name → id migration itself did), and additionally breaks
//! `ReleasePolicy`'s derived ordering; append only.

use crate::scheme::{ReleaseScheme, SchemeSeed};
use crate::schemes::{
    BasicScheme, ConventionalScheme, CounterScheme, ExtendedScheme, OracleScheme,
};
use crate::types::{ReleasePolicy, RenameConfig};

/// Constructor signature of a registered scheme.
pub type SchemeBuilder = fn(&RenameConfig, &SchemeSeed) -> Result<Box<dyn ReleaseScheme>, String>;

/// Everything the world needs to know about one registered scheme.
pub struct PolicyDescriptor {
    /// The policy handle (its slot must equal the descriptor's position).
    pub policy: ReleasePolicy,
    /// Stable string id: reports, cache keys, scenario files, the JSON API.
    pub id: &'static str,
    /// Additional accepted spellings for [`parse`].
    pub aliases: &'static [&'static str],
    /// One-line description (CLI `list`, `GET /experiments`).
    pub title: &'static str,
    /// Member of the paper's canonical three-policy comparison.
    pub paper: bool,
    /// The scheme needs a committed-trace [`KillPlan`](crate::scheme::KillPlan)
    /// in its [`SchemeSeed`]; the simulator derives one from the emulator
    /// before building the rename unit.
    pub needs_kill_plan: bool,
    /// Construct the scheme.
    pub build: SchemeBuilder,
}

static DESCRIPTORS: [PolicyDescriptor; 5] = [
    PolicyDescriptor {
        policy: ReleasePolicy::Conventional,
        id: "conv",
        aliases: &["conventional"],
        title: "conventional release at redefinition commit (paper Section 2)",
        paper: true,
        needs_kill_plan: false,
        build: |_, _| Ok(Box::new(ConventionalScheme)),
    },
    PolicyDescriptor {
        policy: ReleasePolicy::Basic,
        id: "basic",
        aliases: &[],
        title: "basic early release via the Last-Uses Table (paper Section 3)",
        paper: true,
        needs_kill_plan: false,
        build: |_, _| Ok(Box::new(BasicScheme::new())),
    },
    PolicyDescriptor {
        policy: ReleasePolicy::Extended,
        id: "extended",
        aliases: &["ext"],
        title: "extended early release with the Release Queue (paper Section 4)",
        paper: true,
        needs_kill_plan: false,
        build: |config, _| Ok(Box::new(ExtendedScheme::new(config))),
    },
    PolicyDescriptor {
        policy: ReleasePolicy::Oracle,
        id: "oracle",
        aliases: &["ideal"],
        title: "oracle upper bound: release at the emulator-known true last use",
        paper: false,
        needs_kill_plan: true,
        build: |_, seed| OracleScheme::new(seed).map(|s| Box::new(s) as Box<dyn ReleaseScheme>),
    },
    PolicyDescriptor {
        policy: ReleasePolicy::Counter,
        id: "counter",
        aliases: &["unmap", "unmap-counter"],
        title: "conservative counter-based release (no Last-Uses CAM, checkpoint-free)",
        paper: false,
        needs_kill_plan: false,
        build: |config, _| Ok(Box::new(CounterScheme::new(config))),
    },
];

/// The paper's canonical comparison set (Figures 10 and 11), in plot order.
pub const PAPER_POLICIES: [ReleasePolicy; 3] = [
    ReleasePolicy::Conventional,
    ReleasePolicy::Basic,
    ReleasePolicy::Extended,
];

/// All registered descriptors, in [`ReleasePolicy`] order.
pub fn descriptors() -> &'static [PolicyDescriptor] {
    &DESCRIPTORS
}

/// All registered policies, in order.
pub fn registered() -> impl Iterator<Item = ReleasePolicy> {
    DESCRIPTORS.iter().map(|d| d.policy)
}

/// The registered ids, in order (error messages, CLI/API listings).
pub fn ids() -> Vec<&'static str> {
    DESCRIPTORS.iter().map(|d| d.id).collect()
}

/// Look a policy up by exact id.
pub fn by_id(id: &str) -> Option<ReleasePolicy> {
    DESCRIPTORS.iter().find(|d| d.id == id).map(|d| d.policy)
}

/// Parse a policy name (id or alias, case-insensitive).  Unknown names fail
/// with a message that enumerates every registered id.
pub fn parse(name: &str) -> Result<ReleasePolicy, String> {
    let lower = name.to_ascii_lowercase();
    DESCRIPTORS
        .iter()
        .find(|d| d.id == lower || d.aliases.contains(&lower.as_str()))
        .map(|d| d.policy)
        .ok_or_else(|| format!("unknown policy '{name}' (registered: {})", ids().join(", ")))
}

/// Build the scheme for `policy`.
pub fn build(
    policy: ReleasePolicy,
    config: &RenameConfig,
    seed: &SchemeSeed,
) -> Result<Box<dyn ReleaseScheme>, String> {
    let descriptor = policy.descriptor();
    (descriptor.build)(config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_slots_match_policy_indices() {
        for (index, descriptor) in descriptors().iter().enumerate() {
            assert_eq!(descriptor.policy.index(), index, "{}", descriptor.id);
        }
    }

    #[test]
    fn ids_are_unique_and_parse_round_trips() {
        let ids = ids();
        for (i, id) in ids.iter().enumerate() {
            assert!(!ids[i + 1..].contains(id), "duplicate id {id}");
            assert_eq!(parse(id).unwrap().label(), *id);
        }
        assert_eq!(parse("CONVENTIONAL").unwrap(), ReleasePolicy::Conventional);
        assert_eq!(parse("ext").unwrap(), ReleasePolicy::Extended);
        assert_eq!(parse("unmap-counter").unwrap(), ReleasePolicy::Counter);
        assert_eq!(parse("ideal").unwrap(), ReleasePolicy::Oracle);
    }

    #[test]
    fn unknown_policy_error_enumerates_registered_ids() {
        let error = parse("bogus").unwrap_err();
        for id in ids() {
            assert!(error.contains(id), "error must list '{id}': {error}");
        }
    }

    #[test]
    fn paper_policies_are_flagged_and_ordered() {
        assert_eq!(
            PAPER_POLICIES.map(|p| p.label()),
            ["conv", "basic", "extended"]
        );
        for descriptor in descriptors() {
            assert_eq!(
                descriptor.paper,
                PAPER_POLICIES.contains(&descriptor.policy),
                "{}",
                descriptor.id
            );
        }
    }

    #[test]
    fn every_schema_without_seed_needs_builds() {
        let config = RenameConfig::icpp02(ReleasePolicy::Extended, 48, 48);
        let seed = SchemeSeed::default();
        for descriptor in descriptors() {
            let built = build(descriptor.policy, &config, &seed);
            assert_eq!(
                built.is_ok(),
                !descriptor.needs_kill_plan,
                "{}: seed-less build",
                descriptor.id
            );
            if let Ok(scheme) = built {
                assert_eq!(scheme.policy(), descriptor.policy);
            }
        }
    }
}
