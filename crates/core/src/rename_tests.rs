//! Unit tests of the [`RenameUnit`](crate::rename::RenameUnit), mirroring the
//! paper's worked examples (Figures 4, 6 and 8) and the recovery corner
//! cases.

use crate::rename::RenameUnit;
use crate::types::{InstrId, PhysReg, ReleasePolicy, ReleaseReason, RenameConfig, RenameStall};
use earlyreg_isa::{ArchReg, BranchCond, Instruction, Opcode, RegClass};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn cfg(policy: ReleasePolicy, phys: usize) -> RenameConfig {
    RenameConfig::icpp02(policy, phys, phys)
}

fn unit(policy: ReleasePolicy) -> RenameUnit {
    RenameUnit::new(cfg(policy, 48))
}

/// `dst = src1 op src2` integer instruction.
fn iadd(dst: usize, a: usize, b: usize) -> Instruction {
    Instruction {
        op: Opcode::IAdd,
        dst: Some(ArchReg::int(dst)),
        src1: Some(ArchReg::int(a)),
        src2: Some(ArchReg::int(b)),
        imm: 0,
    }
}

/// `dst = imm` integer instruction (a pure definition, no sources).
fn ili(dst: usize) -> Instruction {
    Instruction {
        op: Opcode::ILoadImm,
        dst: Some(ArchReg::int(dst)),
        src1: None,
        src2: None,
        imm: 7,
    }
}

/// Conditional branch on `r<a>`.
fn branch(a: usize) -> Instruction {
    Instruction {
        op: Opcode::Branch(BranchCond::Ne),
        dst: None,
        src1: Some(ArchReg::int(a)),
        src2: None,
        imm: 0,
    }
}

/// Store of r<a> (a register use without a destination).
fn store(addr: usize, data: usize) -> Instruction {
    Instruction {
        op: Opcode::StoreInt,
        dst: None,
        src1: Some(ArchReg::int(addr)),
        src2: Some(ArchReg::int(data)),
        imm: 0,
    }
}

// ---------------------------------------------------------------------------
// Conventional policy
// ---------------------------------------------------------------------------

#[test]
fn conventional_releases_old_pd_at_nv_commit() {
    let mut ru = unit(ReleasePolicy::Conventional);
    let p_r1_initial = ru.mapping(ArchReg::int(1));
    assert_eq!(p_r1_initial, PhysReg(1));

    // i:  r1 = ...            (new version of r1)
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    // LU: r3 = r2 + r1        (last use of p7)
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    assert_eq!(lu.src2, Some((ArchReg::int(1), p7)));
    // NV: r1 = ...            (next version of r1)
    let nv = ru.rename(&ili(1), 2).unwrap();
    assert_ne!(nv.dst.unwrap().phys, p7);
    assert_eq!(nv.dst.unwrap().prev, p7);

    // Commits: i releases the initial version, LU releases nothing,
    // NV releases p7 — conventional timing.
    let out_i = ru.commit(i.id, 10);
    assert_eq!(out_i.released.len(), 1);
    assert_eq!(out_i.released[0].phys, p_r1_initial);
    assert_eq!(out_i.released[0].reason, ReleaseReason::Conventional);

    let out_lu = ru.commit(lu.id, 11);
    assert!(out_lu.released.iter().all(|e| e.phys != p7));

    let out_nv = ru.commit(nv.id, 12);
    assert!(out_nv
        .released
        .iter()
        .any(|e| e.phys == p7 && e.reason == ReleaseReason::Conventional));
    ru.check_invariants().unwrap();
}

#[test]
fn conventional_stalls_when_free_list_is_exhausted() {
    // 34 physical registers = 32 architectural + 2 rename buffers.
    let mut ru = RenameUnit::new(cfg(ReleasePolicy::Conventional, 34));
    assert!(ru.rename(&ili(1), 0).is_ok());
    assert!(ru.rename(&ili(2), 0).is_ok());
    let err = ru.rename(&ili(3), 0).unwrap_err();
    assert_eq!(err, RenameStall::NoFreePhysReg(RegClass::Int));
    assert!(!ru.can_rename(&ili(3)));
    // A register-less instruction can still be renamed.
    assert!(ru.can_rename(&store(1, 2)));
    // Committing the first definition releases its previous version and
    // unblocks rename.
    let head = InstrId(0);
    ru.commit(head, 5);
    assert!(ru.can_rename(&ili(3)));
    ru.check_invariants().unwrap();
}

#[test]
fn conventional_never_does_early_releases() {
    let mut ru = unit(ReleasePolicy::Conventional);
    for c in 0..20u64 {
        let r = ru.rename(&iadd(1, 1, 2), c).unwrap();
        ru.commit(r.id, c + 1);
    }
    let s = ru.stats().class(RegClass::Int);
    assert_eq!(s.total_early(), 0);
    assert!(s.conventional_releases > 0);
}

// ---------------------------------------------------------------------------
// Basic mechanism — Figure 4.a / Figure 6 scenarios
// ---------------------------------------------------------------------------

#[test]
fn basic_retimes_release_to_lu_commit_fig4a() {
    // Figure 4.a: i defines r1 (p7), LU reads it for the last time, NV
    // redefines r1.  With the basic mechanism p7 is released when LU commits,
    // not when NV commits.
    let mut ru = unit(ReleasePolicy::Basic);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    let nv = ru.rename(&ili(1), 2).unwrap();
    assert!(!nv.dst.unwrap().reused);

    ru.commit(i.id, 10);
    let out_lu = ru.commit(lu.id, 11);
    assert!(
        out_lu
            .released
            .iter()
            .any(|e| e.phys == p7 && e.reason == ReleaseReason::EarlyAtLuCommit),
        "p7 must be released at the last-use commit, got {:?}",
        out_lu.released
    );
    // NV's commit must not release p7 again (rel_old was cleared).
    let out_nv = ru.commit(nv.id, 12);
    assert!(out_nv.released.iter().all(|e| e.phys != p7));
    ru.check_invariants().unwrap();
}

#[test]
fn basic_releases_unread_value_at_its_own_commit_fig4b() {
    // Figure 4.b: LU writes r3 and nobody reads it before NV redefines r3.
    // The "last use" is the defining instruction itself (Kind = dst).
    let mut ru = unit(ReleasePolicy::Basic);
    let lu = ru.rename(&iadd(3, 5, 9), 0).unwrap(); // LU: r3 = r5 + r9
    let p7 = lu.dst.unwrap().phys;
    let nv = ru.rename(&ili(3), 1).unwrap(); // NV: r3 = ...
    assert_ne!(nv.dst.unwrap().phys, p7);

    let out_lu = ru.commit(lu.id, 10);
    assert!(out_lu
        .released
        .iter()
        .any(|e| e.phys == p7 && e.reason == ReleaseReason::EarlyAtLuCommit));
    let out_nv = ru.commit(nv.id, 11);
    assert!(out_nv.released.iter().all(|e| e.phys != p7));
}

#[test]
fn basic_reuses_register_when_lu_already_committed() {
    let mut ru = unit(ReleasePolicy::Basic);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 5);
    ru.commit(lu.id, 6);

    // NV decoded after the LU committed, with no pending branches: the
    // mapping is left untouched and the same register is reused.
    let free_before = ru.free_count(RegClass::Int);
    let nv = ru.rename(&ili(1), 10).unwrap();
    let d = nv.dst.unwrap();
    assert!(d.reused);
    assert_eq!(d.phys, p7);
    assert_eq!(ru.mapping(ArchReg::int(1)), p7);
    // Three reuses in total: the first definitions of r1 and r3 reuse the
    // initial architectural registers (their last use is trivially long
    // committed at program start), plus this NV.
    assert_eq!(ru.stats().class(RegClass::Int).reuses, 3);
    // The reuse consumed no free register.
    assert_eq!(ru.free_count(RegClass::Int), free_before);
    ru.check_invariants().unwrap();
}

#[test]
fn basic_releases_immediately_when_reuse_is_disabled() {
    let mut config = cfg(ReleasePolicy::Basic, 48);
    config.reuse_on_committed_lu = false;
    let mut ru = RenameUnit::new(config);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 5);
    ru.commit(lu.id, 6);

    let free_before = ru.free_count(RegClass::Int);
    let nv = ru.rename(&ili(1), 10).unwrap();
    assert!(!nv.dst.unwrap().reused);
    // One register freed (p7), one allocated: net zero.
    assert_eq!(ru.free_count(RegClass::Int), free_before);
    // Three immediate releases in total: the first definitions of r1 and r3
    // immediately released the initial architectural registers, plus this NV
    // releasing p7.
    assert_eq!(ru.stats().class(RegClass::Int).immediate_at_decode, 3);
    assert_eq!(ru.stats().class(RegClass::Int).reuses, 0);
    let _ = p7;
    ru.check_invariants().unwrap();
}

#[test]
fn basic_falls_back_to_conventional_under_pending_branch() {
    // Case 2: a pending branch separates LU from NV — the basic mechanism
    // must leave the conventional release in place.
    let mut ru = unit(ReleasePolicy::Basic);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    let br = ru.rename(&branch(3), 2).unwrap();
    let nv = ru.rename(&ili(1), 3).unwrap();

    assert_eq!(ru.stats().class(RegClass::Int).fallback_to_conventional, 1);

    ru.commit(i.id, 10);
    let out_lu = ru.commit(lu.id, 11);
    assert!(
        out_lu.released.iter().all(|e| e.phys != p7),
        "no early release in Case 2"
    );
    ru.resolve_branch_correct(br.id, 12);
    ru.commit(br.id, 12);
    let out_nv = ru.commit(nv.id, 13);
    assert!(out_nv
        .released
        .iter()
        .any(|e| e.phys == p7 && e.reason == ReleaseReason::Conventional));
    ru.check_invariants().unwrap();
}

#[test]
fn basic_applies_when_pending_branch_is_older_than_lu() {
    // Case 1 also covers LU and NV in the same basic block *after* a pending
    // branch: a misprediction would squash both, so the early release is
    // safe.
    let mut ru = unit(ReleasePolicy::Basic);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let br = ru.rename(&branch(1), 1).unwrap();
    let lu = ru.rename(&iadd(3, 2, 1), 2).unwrap(); // after the branch
    let _nv = ru.rename(&ili(1), 3).unwrap(); // same block as LU

    ru.commit(i.id, 10);
    ru.resolve_branch_correct(br.id, 11);
    ru.commit(br.id, 11);
    let out_lu = ru.commit(lu.id, 12);
    assert!(out_lu
        .released
        .iter()
        .any(|e| e.phys == p7 && e.reason == ReleaseReason::EarlyAtLuCommit));
}

#[test]
fn instruction_reading_its_own_destination_is_its_own_last_use() {
    // NV: r1 = r1 + r2 — the previous version's last use is NV itself, so the
    // release happens at NV's commit through the early-release path.
    let mut ru = unit(ReleasePolicy::Basic);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let nv = ru.rename(&iadd(1, 1, 2), 1).unwrap();
    assert_eq!(nv.src1, Some((ArchReg::int(1), p7)));

    ru.commit(i.id, 5);
    let out_nv = ru.commit(nv.id, 6);
    assert!(out_nv
        .released
        .iter()
        .any(|e| e.phys == p7 && e.reason == ReleaseReason::EarlyAtLuCommit));
    ru.check_invariants().unwrap();
}

#[test]
fn squashed_nv_does_not_release_the_previous_version() {
    // A branch older than both LU and NV mispredicts: LU and NV are squashed
    // and the previous version must remain mapped and allocated.
    let mut ru = unit(ReleasePolicy::Basic);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let br = ru.rename(&branch(1), 1).unwrap();
    let lu = ru.rename(&iadd(3, 2, 1), 2).unwrap();
    let nv = ru.rename(&ili(1), 3).unwrap();
    let _ = (lu, nv);

    ru.commit(i.id, 5);
    let rec = ru.recover_branch_mispredict(br.id, 6);
    assert_eq!(rec.squashed, 2);
    assert_eq!(ru.mapping(ArchReg::int(1)), p7);
    assert!(ru.in_flight() == 1); // only the branch remains
    ru.commit(br.id, 7);
    ru.check_invariants().unwrap();
}

// ---------------------------------------------------------------------------
// Extended mechanism — Release Queue behaviour (Figure 8)
// ---------------------------------------------------------------------------

#[test]
fn extended_schedules_conditional_release_under_pending_branch() {
    // LU in flight, one pending branch between LU and NV: the release is
    // conditional; it happens only after both the branch confirms and the LU
    // commits.
    let mut ru = unit(ReleasePolicy::Extended);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    let br = ru.rename(&branch(3), 2).unwrap();
    let nv = ru.rename(&ili(1), 3).unwrap();
    let _ = nv;
    assert_eq!(ru.release_queue_marks(), 1);

    ru.commit(i.id, 10);
    // LU commits while the branch is still pending: the mark moves to RwNS
    // (Step 5) and nothing is released yet.
    let out_lu = ru.commit(lu.id, 11);
    assert!(out_lu.released.iter().all(|e| e.phys != p7));
    assert_eq!(ru.release_queue_marks(), 1);

    // The branch confirms: branch-confirm release fires (Step 6).
    let released = ru.resolve_branch_correct(br.id, 12);
    assert!(released
        .iter()
        .any(|e| e.phys == p7 && e.reason == ReleaseReason::BranchConfirm));
    assert_eq!(ru.release_queue_marks(), 0);
    ru.check_invariants().unwrap();
}

#[test]
fn extended_conditional_release_with_committed_lu_uses_rwns() {
    // LU already committed, NV decoded under a pending branch: the release is
    // recorded in decoded (RwNS) form and fires at branch confirmation.
    let mut ru = unit(ReleasePolicy::Extended);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 2);
    ru.commit(lu.id, 3);

    let br = ru.rename(&branch(3), 4).unwrap();
    let _nv = ru.rename(&ili(1), 5).unwrap();
    assert_eq!(ru.release_queue_marks(), 1);

    let released = ru.resolve_branch_correct(br.id, 6);
    assert!(released
        .iter()
        .any(|e| e.phys == p7 && e.reason == ReleaseReason::BranchConfirm));
    ru.check_invariants().unwrap();
}

#[test]
fn extended_cancels_conditional_release_on_misprediction() {
    let mut ru = unit(ReleasePolicy::Extended);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 2);
    ru.commit(lu.id, 3);

    let br = ru.rename(&branch(3), 4).unwrap();
    let nv = ru.rename(&ili(1), 5).unwrap();
    let nv_phys = nv.dst.unwrap().phys;
    assert_eq!(ru.release_queue_marks(), 1);

    let rec = ru.recover_branch_mispredict(br.id, 6);
    assert_eq!(rec.squashed, 1);
    assert!(rec.freed.iter().any(|e| e.phys == nv_phys));
    // The conditional release was cancelled and p7 is still the mapping.
    assert_eq!(ru.release_queue_marks(), 0);
    assert_eq!(ru.mapping(ArchReg::int(1)), p7);
    ru.commit(br.id, 7);
    ru.check_invariants().unwrap();
}

#[test]
fn extended_nested_branches_release_only_after_the_oldest_confirms() {
    // Two pending branches; the NV is conditional on both.  Confirming the
    // younger one first must not release anything (Figure 8.a); only when the
    // oldest confirms does the register come back (Figure 8.c).
    let mut ru = unit(ReleasePolicy::Extended);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 2);
    ru.commit(lu.id, 3);

    let br1 = ru.rename(&branch(3), 4).unwrap();
    let br2 = ru.rename(&branch(2), 5).unwrap();
    let _nv = ru.rename(&ili(1), 6).unwrap();
    assert_eq!(ru.pending_branches(), 2);

    let none = ru.resolve_branch_correct(br2.id, 7);
    assert!(none.is_empty());
    assert_eq!(ru.release_queue_marks(), 1);

    let released = ru.resolve_branch_correct(br1.id, 8);
    assert!(released.iter().any(|e| e.phys == p7));
    ru.check_invariants().unwrap();
}

#[test]
fn extended_has_no_conventional_releases() {
    // Enough physical registers to keep 30 redefinitions in flight at once.
    let mut ru = RenameUnit::new(cfg(ReleasePolicy::Extended, 96));
    // A long chain of redefinitions with interleaved uses.
    let mut ids = Vec::new();
    for c in 0..30u64 {
        ids.push(ru.rename(&iadd(1, 1, 2), c).unwrap().id);
    }
    for (c, id) in ids.iter().enumerate() {
        ru.commit(*id, 100 + c as u64);
    }
    let s = ru.stats().class(RegClass::Int);
    assert_eq!(s.conventional_releases, 0);
    assert!(s.early_at_lu_commit > 0);
    ru.check_invariants().unwrap();
}

#[test]
fn extended_outperforms_conventional_in_registers_held() {
    // The defining property: with the same instruction stream, the extended
    // mechanism holds fewer allocated registers than conventional renaming
    // once last uses commit.
    let run = |policy: ReleasePolicy| -> usize {
        let mut ru = RenameUnit::new(cfg(policy, 96));
        // Define 8 values, read each once, never redefine until the end.
        let defs: Vec<_> = (1..=8).map(|r| ru.rename(&ili(r), 0).unwrap()).collect();
        let uses: Vec<_> = (1..=8)
            .map(|r| ru.rename(&iadd(9, r, r), 1).unwrap())
            .collect();
        // Redefine all of them (NV instructions).
        let nvs: Vec<_> = (1..=8).map(|r| ru.rename(&ili(r), 2).unwrap()).collect();
        for d in &defs {
            ru.commit(d.id, 10);
        }
        for u in &uses {
            ru.commit(u.id, 20);
        }
        // Do not commit the NVs: under conventional release the previous
        // versions are still held; under early release they are already free.
        let free = ru.free_count(RegClass::Int);
        for nv in &nvs {
            ru.commit(nv.id, 30);
        }
        ru.check_invariants().unwrap();
        free
    };
    let free_conv = run(ReleasePolicy::Conventional);
    let free_ext = run(ReleasePolicy::Extended);
    assert!(
        free_ext >= free_conv + 8,
        "extended should have released the 8 previous versions early \
         (conv free = {free_conv}, ext free = {free_ext})"
    );
}

// ---------------------------------------------------------------------------
// Exception recovery and stale mappings (Section 4.3)
// ---------------------------------------------------------------------------

#[test]
fn exception_recovery_restores_architectural_mapping() {
    let mut ru = unit(ReleasePolicy::Extended);
    let a = ru.rename(&ili(1), 0).unwrap();
    ru.commit(a.id, 1);
    let arch_p = ru.arch_mapping(ArchReg::int(1));

    // Speculative redefinitions that never commit.
    let _b = ru.rename(&ili(1), 2).unwrap();
    let _c = ru.rename(&ili(1), 3).unwrap();
    assert_ne!(ru.mapping(ArchReg::int(1)), arch_p);

    let rec = ru.recover_exception(10);
    assert_eq!(rec.squashed, 2);
    assert_eq!(ru.mapping(ArchReg::int(1)), arch_p);
    assert_eq!(ru.in_flight(), 0);
    assert_eq!(ru.pending_branches(), 0);
    ru.check_invariants().unwrap();
}

#[test]
fn stale_mapping_after_exception_is_not_released_twice() {
    // The Section 4.3 scenario: the architectural version of r1 is released
    // early (its redefinition was in flight), then an exception squashes the
    // redefinition.  The restored mapping is stale; the next redefinition of
    // r1 must not release (or reuse) it.
    let mut ru = unit(ReleasePolicy::Extended);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    let nv = ru.rename(&ili(1), 2).unwrap();
    let _ = nv;

    ru.commit(i.id, 3);
    // LU commits → p7 released early (it is the architectural version of r1).
    let out = ru.commit(lu.id, 4);
    assert!(out.released.iter().any(|e| e.phys == p7));

    // Exception before NV commits: the map is restored from the IOMT, which
    // still names p7 for r1 even though p7 is free.
    ru.recover_exception(5);
    assert_eq!(ru.mapping(ArchReg::int(1)), p7);
    assert_eq!(ru.arch_mapping(ArchReg::int(1)), p7);
    // Invariants still hold because the stale mapping is flagged.
    ru.check_invariants().unwrap();

    // p7 may meanwhile be reallocated to a different logical register...
    let other = ru.rename(&ili(5), 6).unwrap();
    // ...and the next redefinition of r1 must not free or reuse p7.
    let nv2 = ru.rename(&ili(1), 7).unwrap();
    assert_ne!(nv2.dst.unwrap().phys, other.dst.unwrap().phys);
    assert!(!nv2.dst.unwrap().reused);
    ru.commit(other.id, 8);
    ru.commit(nv2.id, 9);
    ru.check_invariants().unwrap();
    // No double release happened (the FreeList would have panicked), and the
    // accounting shows exactly one early release of p7.
    assert_eq!(ru.stats().class(RegClass::Int).early_at_lu_commit, 1);
}

#[test]
fn stale_mapping_flag_survives_branch_recovery() {
    // A checkpoint taken between the exception recovery and the consuming
    // redefinition must preserve the stale-mapping flag, otherwise a
    // misprediction rollback would reintroduce the double-release hazard.
    let mut ru = unit(ReleasePolicy::Extended);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    let _nv = ru.rename(&ili(1), 2).unwrap();
    ru.commit(i.id, 3);
    ru.commit(lu.id, 4);
    ru.recover_exception(5);
    assert_eq!(ru.mapping(ArchReg::int(1)), p7);

    // Branch taken while the stale mapping is live, then a redefinition of r1
    // consumes the flag, then the branch mispredicts.
    let br = ru.rename(&branch(2), 6).unwrap();
    let _nv2 = ru.rename(&ili(1), 7).unwrap();
    ru.recover_branch_mispredict(br.id, 8);
    ru.commit(br.id, 9);
    // The stale mapping is back; the next redefinition must again skip it.
    let nv3 = ru.rename(&ili(1), 10).unwrap();
    assert!(!nv3.dst.unwrap().reused);
    ru.commit(nv3.id, 11);
    ru.check_invariants().unwrap();
    assert_eq!(ru.stats().class(RegClass::Int).early_at_lu_commit, 1);
}

#[test]
fn reused_register_survives_exception_recovery() {
    // Reuse keeps the register allocated; an exception after the reuse must
    // leave a perfectly ordinary (owned) mapping behind.
    let mut ru = unit(ReleasePolicy::Basic);
    let i = ru.rename(&ili(1), 0).unwrap();
    let p7 = i.dst.unwrap().phys;
    let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
    ru.commit(i.id, 2);
    ru.commit(lu.id, 3);
    let nv = ru.rename(&ili(1), 4).unwrap();
    assert!(nv.dst.unwrap().reused);

    ru.recover_exception(5);
    assert_eq!(ru.mapping(ArchReg::int(1)), p7);
    // The register is still allocated and can be released by a later
    // redefinition in the normal way.
    let lu2 = ru.rename(&iadd(4, 2, 1), 6).unwrap();
    let nv2 = ru.rename(&ili(1), 7).unwrap();
    let _ = nv2;
    let out = ru.commit(lu2.id, 8);
    assert!(out.released.iter().any(|e| e.phys == p7));
    ru.check_invariants().unwrap();
}

// ---------------------------------------------------------------------------
// Cross-cutting checks
// ---------------------------------------------------------------------------

#[test]
fn pending_branch_limit_is_enforced() {
    let mut ru = unit(ReleasePolicy::Extended);
    for k in 0..20 {
        assert!(ru.rename(&branch(1), k).is_ok());
    }
    assert_eq!(ru.pending_branches(), 20);
    assert_eq!(
        ru.rename(&branch(1), 21).unwrap_err(),
        RenameStall::TooManyPendingBranches
    );
    assert!(!ru.can_rename(&branch(1)));
}

#[test]
fn fp_and_int_files_are_independent() {
    let mut ru = RenameUnit::new(cfg(ReleasePolicy::Extended, 34));
    // Exhaust the integer file with instructions that read their own
    // destination (these always need a fresh register: the previous version
    // is only released at their own commit).
    assert!(ru.rename(&iadd(1, 1, 2), 0).is_ok());
    assert!(ru.rename(&iadd(2, 2, 3), 0).is_ok());
    assert_eq!(
        ru.rename(&iadd(3, 3, 4), 0).unwrap_err(),
        RenameStall::NoFreePhysReg(RegClass::Int)
    );
    // FP renames still succeed (the FP free list is untouched).
    let fp_def = Instruction {
        op: Opcode::FAdd,
        dst: Some(ArchReg::fp(1)),
        src1: Some(ArchReg::fp(1)),
        src2: Some(ArchReg::fp(2)),
        imm: 0,
    };
    assert!(ru.rename(&fp_def, 0).is_ok());
    assert_eq!(ru.free_count(RegClass::Fp), 1);
    assert_eq!(ru.free_count(RegClass::Int), 0);
    ru.check_invariants().unwrap();
}

#[test]
fn occupancy_idle_time_is_lower_with_early_release() {
    // Build the same def → use → redefine pattern under both policies with a
    // long gap between the last use commit and the redefinition commit; the
    // idle integral must be much smaller with the extended mechanism.
    let run = |policy: ReleasePolicy| {
        let mut ru = unit(policy);
        let i = ru.rename(&ili(1), 0).unwrap();
        ru.mark_value_written(RegClass::Int, i.dst.unwrap().phys, 1);
        let lu = ru.rename(&iadd(3, 2, 1), 1).unwrap();
        ru.mark_value_written(RegClass::Int, lu.dst.unwrap().phys, 2);
        let nv = ru.rename(&ili(1), 2).unwrap();
        ru.mark_value_written(RegClass::Int, nv.dst.unwrap().phys, 3);
        ru.commit(i.id, 5);
        ru.commit(lu.id, 6);
        // Long drain before NV commits.
        ru.commit(nv.id, 1000);
        ru.occupancy_totals(RegClass::Int, 1000).idle_cycles
    };
    let idle_conv = run(ReleasePolicy::Conventional);
    let idle_ext = run(ReleasePolicy::Extended);
    assert!(
        idle_ext + 900 < idle_conv,
        "idle cycles: conv = {idle_conv}, extended = {idle_ext}"
    );
}

#[test]
fn release_queue_marks_never_exceed_in_flight_destinations() {
    let mut ru = RenameUnit::new(cfg(ReleasePolicy::Extended, 96));
    let mut renamed = Vec::new();
    for k in 0..40u64 {
        if k % 5 == 0 {
            renamed.push(ru.rename(&branch(1), k).unwrap());
        } else {
            renamed.push(ru.rename(&iadd(((k % 6) + 1) as usize, 2, 3), k).unwrap());
        }
        ru.check_invariants().unwrap();
    }
}
