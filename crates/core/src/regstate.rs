//! Physical register lifetime tracking (Figure 2 / Figure 3).
//!
//! The paper breaks the `Allocated` state of a physical register into three
//! sub-states:
//!
//! * **Empty** — from allocation (rename) until the value is actually written
//!   (writeback);
//! * **Ready** — from the write until the commit of the instruction that uses
//!   the register for the last time;
//! * **Idle** — from that last-use commit until the register is released.
//!
//! Figure 3 reports, for conventional renaming, the average number of
//! registers in each sub-state: the *idle* component is pure waste and is what
//! the early-release mechanisms reclaim.  This module computes those averages
//! exactly by integrating the duration of every allocation episode rather
//! than sampling: at release time we know the allocation, write and last-use
//! commit cycles and can attribute every cycle of the episode to one of the
//! three sub-states.

use crate::types::{PhysReg, ReleaseReason};
use serde::{Deserialize, Serialize};

/// Lifecycle data for one currently-allocated physical register.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Episode {
    alloc_cycle: u64,
    write_cycle: Option<u64>,
    last_use_commit_cycle: Option<u64>,
}

/// Integrated occupancy totals for one register class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OccupancyTotals {
    /// Sum over all cycles of the number of Empty registers.
    pub empty_cycles: u64,
    /// Sum over all cycles of the number of Ready registers.
    pub ready_cycles: u64,
    /// Sum over all cycles of the number of Idle registers.
    pub idle_cycles: u64,
    /// Cycles over which the totals were integrated.
    pub elapsed_cycles: u64,
}

impl OccupancyTotals {
    /// Average number of registers in the Empty state.
    pub fn avg_empty(&self) -> f64 {
        self.avg(self.empty_cycles)
    }

    /// Average number of registers in the Ready state.
    pub fn avg_ready(&self) -> f64 {
        self.avg(self.ready_cycles)
    }

    /// Average number of registers in the Idle state.
    pub fn avg_idle(&self) -> f64 {
        self.avg(self.idle_cycles)
    }

    /// Average number of allocated registers (empty + ready + idle).
    pub fn avg_allocated(&self) -> f64 {
        self.avg_empty() + self.avg_ready() + self.avg_idle()
    }

    /// The paper's "overhead" metric: how much the idle registers inflate the
    /// number of useful (empty + ready) registers, as a fraction.
    /// Figure 3 reports 45.8 % for integer codes and 16.8 % for FP codes.
    pub fn idle_overhead(&self) -> f64 {
        let useful = self.avg_empty() + self.avg_ready();
        if useful <= 0.0 {
            0.0
        } else {
            self.avg_idle() / useful
        }
    }

    fn avg(&self, sum: u64) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            sum as f64 / self.elapsed_cycles as f64
        }
    }
}

/// Per-class tracker of physical register lifetimes.
#[derive(Debug, Clone)]
pub struct OccupancyTracker {
    episodes: Vec<Option<Episode>>,
    totals: OccupancyTotals,
    /// Number of completed allocation episodes.
    completed_episodes: u64,
    /// Sum of complete episode lengths (alloc → release), for average
    /// register lifetime reporting.
    total_episode_cycles: u64,
}

impl OccupancyTracker {
    /// Create a tracker for a file of `total` physical registers where the
    /// first `initially_allocated` registers hold the initial architectural
    /// state (they start out allocated, written and "used" at cycle 0).
    pub fn new(total: usize, initially_allocated: usize) -> Self {
        let mut episodes = vec![None; total];
        for slot in episodes.iter_mut().take(initially_allocated) {
            *slot = Some(Episode {
                alloc_cycle: 0,
                write_cycle: Some(0),
                last_use_commit_cycle: Some(0),
            });
        }
        OccupancyTracker {
            episodes,
            totals: OccupancyTotals::default(),
            completed_episodes: 0,
            total_episode_cycles: 0,
        }
    }

    /// Number of physical registers currently allocated.
    pub fn allocated_now(&self) -> usize {
        self.episodes.iter().filter(|e| e.is_some()).count()
    }

    /// Record an allocation (rename time).
    pub fn on_allocate(&mut self, p: PhysReg, cycle: u64) {
        debug_assert!(
            self.episodes[p.index()].is_none(),
            "allocation of {p} which is already allocated"
        );
        self.episodes[p.index()] = Some(Episode {
            alloc_cycle: cycle,
            write_cycle: None,
            last_use_commit_cycle: None,
        });
    }

    /// Record that the register's value was produced (writeback time).
    /// Later writes (only possible through the reuse optimisation) keep the
    /// first write cycle, which is the conservative choice for Empty time.
    pub fn on_write(&mut self, p: PhysReg, cycle: u64) {
        if let Some(ep) = self.episodes[p.index()].as_mut() {
            if ep.write_cycle.is_none() {
                ep.write_cycle = Some(cycle);
            }
        }
    }

    /// Record that a committed instruction used the register (as source or as
    /// its own destination) at `cycle`.
    pub fn on_committed_use(&mut self, p: PhysReg, cycle: u64) {
        if let Some(ep) = self.episodes[p.index()].as_mut() {
            ep.last_use_commit_cycle = Some(match ep.last_use_commit_cycle {
                Some(prev) => prev.max(cycle),
                None => cycle,
            });
        }
    }

    /// Record a release and fold the episode into the totals.
    pub fn on_release(&mut self, p: PhysReg, cycle: u64, _reason: ReleaseReason) {
        let Some(ep) = self.episodes[p.index()].take() else {
            debug_assert!(false, "release of {p} which is not allocated");
            return;
        };
        let (empty, ready, idle) = Self::split(&ep, cycle);
        self.totals.empty_cycles += empty;
        self.totals.ready_cycles += ready;
        self.totals.idle_cycles += idle;
        self.completed_episodes += 1;
        self.total_episode_cycles += cycle.saturating_sub(ep.alloc_cycle);
    }

    /// Split an episode ending at `end` into (empty, ready, idle) durations.
    fn split(ep: &Episode, end: u64) -> (u64, u64, u64) {
        let end = end.max(ep.alloc_cycle);
        let write = ep.write_cycle.unwrap_or(end).clamp(ep.alloc_cycle, end);
        // With no committed use observed (yet), the register cannot be called
        // Idle: idle time only exists in hindsight, after the last use's
        // commit.  Classify the tail as Ready.
        let last_use = ep.last_use_commit_cycle.unwrap_or(end).clamp(write, end);
        let empty = write - ep.alloc_cycle;
        let ready = last_use - write;
        let idle = end - last_use;
        (empty, ready, idle)
    }

    /// Produce the integrated totals as of `now`, including the contribution
    /// of episodes that are still open.  Non-destructive.
    pub fn totals_at(&self, now: u64) -> OccupancyTotals {
        let mut t = self.totals;
        for ep in self.episodes.iter().flatten() {
            let (empty, ready, idle) = Self::split(ep, now);
            t.empty_cycles += empty;
            t.ready_cycles += ready;
            t.idle_cycles += idle;
        }
        t.elapsed_cycles = now;
        t
    }

    /// Number of completed allocation episodes (register versions whose
    /// lifetime fully elapsed).
    pub fn completed_episodes(&self) -> u64 {
        self.completed_episodes
    }

    /// Average lifetime (allocation to release) of completed episodes, in
    /// cycles.
    pub fn avg_lifetime(&self) -> f64 {
        if self.completed_episodes == 0 {
            0.0
        } else {
            self.total_episode_cycles as f64 / self.completed_episodes as f64
        }
    }

    /// Whether the register is currently tracked as allocated.
    pub fn is_allocated(&self, p: PhysReg) -> bool {
        self.episodes[p.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_registers_start_allocated() {
        let t = OccupancyTracker::new(48, 32);
        assert_eq!(t.allocated_now(), 32);
        assert!(t.is_allocated(PhysReg(0)));
        assert!(!t.is_allocated(PhysReg(40)));
    }

    #[test]
    fn one_episode_splits_into_three_states() {
        let mut t = OccupancyTracker::new(8, 0);
        let p = PhysReg(3);
        t.on_allocate(p, 10); // empty 10..20
        t.on_write(p, 20); // ready 20..35
        t.on_committed_use(p, 30);
        t.on_committed_use(p, 35); // last use commit
        t.on_release(p, 50, ReleaseReason::Conventional); // idle 35..50
        let totals = t.totals_at(50);
        assert_eq!(totals.empty_cycles, 10);
        assert_eq!(totals.ready_cycles, 15);
        assert_eq!(totals.idle_cycles, 15);
        assert_eq!(t.completed_episodes(), 1);
        assert_eq!(t.avg_lifetime(), 40.0);
    }

    #[test]
    fn unused_open_tail_counts_as_ready_not_idle() {
        // A value that was written but whose last use is not yet known cannot
        // be classified Idle (that classification only exists in hindsight).
        let mut t = OccupancyTracker::new(8, 0);
        let p = PhysReg(2);
        t.on_allocate(p, 0);
        t.on_write(p, 4);
        t.on_release(p, 24, ReleaseReason::SquashMispredict);
        let totals = t.totals_at(24);
        assert_eq!(totals.empty_cycles, 4);
        assert_eq!(totals.ready_cycles, 20);
        assert_eq!(totals.idle_cycles, 0);
    }

    #[test]
    fn never_written_register_is_empty_for_its_whole_life() {
        let mut t = OccupancyTracker::new(8, 0);
        let p = PhysReg(0);
        t.on_allocate(p, 5);
        t.on_release(p, 25, ReleaseReason::SquashMispredict);
        let totals = t.totals_at(25);
        assert_eq!(totals.empty_cycles, 20);
        assert_eq!(totals.ready_cycles, 0);
        assert_eq!(totals.idle_cycles, 0);
    }

    #[test]
    fn never_used_register_goes_straight_to_idle_after_write() {
        // Figure 4.b: a value that is written but never read — the "last use"
        // is the write itself (its defining instruction's commit).
        let mut t = OccupancyTracker::new(8, 0);
        let p = PhysReg(1);
        t.on_allocate(p, 0);
        t.on_write(p, 4);
        t.on_committed_use(p, 6); // the defining instruction commits
        t.on_release(p, 30, ReleaseReason::Conventional);
        let totals = t.totals_at(30);
        assert_eq!(totals.empty_cycles, 4);
        assert_eq!(totals.ready_cycles, 2);
        assert_eq!(totals.idle_cycles, 24);
    }

    #[test]
    fn open_episodes_contribute_to_totals_at() {
        let mut t = OccupancyTracker::new(8, 0);
        t.on_allocate(PhysReg(0), 0);
        t.on_write(PhysReg(0), 10);
        let totals = t.totals_at(40);
        assert_eq!(totals.empty_cycles, 10);
        // no committed use yet: ready runs from the write to "now".
        assert_eq!(totals.ready_cycles, 30);
        assert_eq!(totals.idle_cycles, 0);
        assert_eq!(totals.elapsed_cycles, 40);
    }

    #[test]
    fn totals_at_is_non_destructive() {
        let mut t = OccupancyTracker::new(8, 0);
        t.on_allocate(PhysReg(0), 0);
        let a = t.totals_at(10);
        let b = t.totals_at(10);
        assert_eq!(a, b);
    }

    #[test]
    fn averages_and_overhead() {
        let totals = OccupancyTotals {
            empty_cycles: 100,
            ready_cycles: 300,
            idle_cycles: 200,
            elapsed_cycles: 100,
        };
        assert_eq!(totals.avg_empty(), 1.0);
        assert_eq!(totals.avg_ready(), 3.0);
        assert_eq!(totals.avg_idle(), 2.0);
        assert_eq!(totals.avg_allocated(), 6.0);
        assert!((totals.idle_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn early_release_reduces_idle_time() {
        // Two identical episodes, one released at the last-use commit (early)
        // and one at the next-version commit (conventional).
        let mut early = OccupancyTracker::new(4, 0);
        early.on_allocate(PhysReg(0), 0);
        early.on_write(PhysReg(0), 5);
        early.on_committed_use(PhysReg(0), 10);
        early.on_release(PhysReg(0), 10, ReleaseReason::EarlyAtLuCommit);

        let mut conv = OccupancyTracker::new(4, 0);
        conv.on_allocate(PhysReg(0), 0);
        conv.on_write(PhysReg(0), 5);
        conv.on_committed_use(PhysReg(0), 10);
        conv.on_release(PhysReg(0), 40, ReleaseReason::Conventional);

        assert_eq!(early.totals_at(50).idle_cycles, 0);
        assert_eq!(conv.totals_at(50).idle_cycles, 30);
    }

    #[test]
    fn uses_of_unallocated_registers_are_ignored() {
        // Wrong-path writeback after a squash may touch a register that has
        // already been freed; the tracker must tolerate it.
        let mut t = OccupancyTracker::new(4, 0);
        t.on_write(PhysReg(2), 10);
        t.on_committed_use(PhysReg(2), 10);
        assert_eq!(t.totals_at(20).ready_cycles, 0);
    }
}
