//! The rename/release engine.
//!
//! [`RenameUnit`] implements the complete allocate/release mechanism of the
//! paper for both register classes and all three policies:
//!
//! * **Conventional** (Section 2): a redefinition allocates a new physical
//!   register and the previous version (`old_pd`) is released when the
//!   redefinition commits.
//! * **Basic** (Section 3): when the redefinition (NV) is decoded and no
//!   unverified branch separates it from the last use (LU) of the previous
//!   version, the release is retimed to the LU's commit via the
//!   `rel1/rel2/reld` bits — or performed immediately (optionally *reusing*
//!   the register) if the LU has already committed.  Otherwise the
//!   conventional path is used.
//! * **Extended** (Section 4): the conventional path is removed entirely.
//!   Redefinitions decoded under pending branches schedule *conditional*
//!   releases in the [Release Queue](crate::release_queue::ReleaseQueue)
//!   which are cancelled by mispredictions and performed at LU commit /
//!   oldest-branch confirmation otherwise.
//!
//! The unit also deals with the two recovery mechanisms the paper requires:
//! branch misprediction recovery through per-branch checkpoints of the Map
//! Table, Last-Uses Table and stale-mapping flags, and precise-exception
//! recovery through the In-Order Map Table (Section 4.3).
//!
//! ## Stale architectural mappings
//!
//! The paper's Section 4.3 observes that after an early release the value
//! "attached" to a logical register may be garbage, which is safe because the
//! first use of that register on the committed path is guaranteed to be a
//! write.  One consequence (implicit in the paper) is that after a precise
//! exception restores the map from the In-Order Map Table, a logical register
//! may map to a physical register that has already been handed back to the
//! free list.  The mapping is *stale*: it will never be read, but the next
//! redefinition of that logical register must not release (or reuse) the
//! stale register — it is no longer owned by this logical register.  The unit
//! tracks this with a per-logical-register `skip_release` flag that is set
//! during exception recovery (from the non-speculative `arch_released` flag),
//! checkpointed across branches, and consumed by the next redefinition.

use crate::free_list::FreeList;
use crate::lus_table::LusTable;
use crate::map_table::MapTablePair;
use crate::regstate::{OccupancyTotals, OccupancyTracker};
use crate::release_queue::ReleaseQueue;
use crate::ros::{DstRename, RosBook, RosEntry};
use crate::stats::ReleaseStats;
use crate::types::{
    InstrId, PhysReg, ReleasePolicy, ReleaseReason, RenameConfig, RenameStall, UseKind,
};
use earlyreg_isa::{ArchReg, Instruction, RegClass};
use std::collections::VecDeque;

/// A physical register returned to the free list (or reused), with the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseEvent {
    /// Register class.
    pub class: RegClass,
    /// The physical register.
    pub phys: PhysReg,
    /// Why it was released.
    pub reason: ReleaseReason,
}

/// Result of renaming one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenamedInstr {
    /// The dynamic instruction identifier assigned by the rename unit.
    pub id: InstrId,
    /// First source operand: logical register and the physical register that
    /// holds its value.
    pub src1: Option<(ArchReg, PhysReg)>,
    /// Second source operand.
    pub src2: Option<(ArchReg, PhysReg)>,
    /// Destination rename, if the instruction writes a register.
    pub dst: Option<DstRename>,
}

/// Result of committing one instruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommitOutcome {
    /// Registers released by this commit (early bits, RwC0 and/or the
    /// conventional `old_pd` release).
    pub released: Vec<ReleaseEvent>,
}

/// Result of a recovery action (branch misprediction or exception).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryOutcome {
    /// Number of in-flight instructions squashed.
    pub squashed: usize,
    /// Registers freed because their allocating instruction was squashed.
    pub freed: Vec<ReleaseEvent>,
}

/// How the destination of a redefinition will be handled.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DestAction {
    /// Allocate a new register; release the previous version at this
    /// instruction's commit (`rel_old = 1`).
    Conventional,
    /// Allocate a new register; the previous version is stale (already
    /// released before an exception recovery) and must not be touched.
    SkipStale,
    /// Allocate a new register; set the early-release bit `kind` on the
    /// in-flight last-use instruction `lu` (RwC0 path).
    EarlyOnLu { lu: InstrId, kind: UseKind },
    /// Release the previous version immediately and allocate a new register.
    Immediate,
    /// Reuse the previous version's register for the new version.
    Reuse,
    /// Extended only: schedule a conditional release in the youngest Release
    /// Queue level — `RwNS` form when the last use has committed, `RwC` form
    /// (tied to `lu`/`kind`) otherwise.
    Conditional {
        lu_committed: bool,
        lu: InstrId,
        kind: UseKind,
    },
}

/// Per-branch checkpoint of the speculative rename state.
#[derive(Debug, Clone)]
struct Checkpoint {
    branch_id: InstrId,
    maps: [crate::map_table::MapTable; 2],
    lus: Option<[LusTable; 2]>,
    skip_release: [Vec<bool>; 2],
}

/// Per-class rename state.
#[derive(Debug, Clone)]
struct Bank {
    free: FreeList,
    maps: MapTablePair,
    lus: LusTable,
    occupancy: OccupancyTracker,
    /// Non-speculative: the architectural (IOMT) version of this logical
    /// register has been freed early and its redefinition has not committed.
    arch_released: Vec<bool>,
    /// Non-speculative: the architectural version of this logical register is
    /// still allocated but its *value* may have been clobbered by a reuse
    /// (Section 3.2) whose redefinition has not committed yet.
    arch_clobbered: Vec<bool>,
    /// Speculative (checkpointed): the current front-map entry for this
    /// logical register is stale and must not be released or reused by its
    /// next redefinition.
    skip_release: Vec<bool>,
}

impl Bank {
    fn new(class: RegClass, phys: usize) -> Self {
        let logical = class.num_logical();
        Bank {
            free: FreeList::new(phys, logical),
            maps: MapTablePair::new(class),
            lus: LusTable::new(class),
            occupancy: OccupancyTracker::new(phys, logical),
            arch_released: vec![false; logical],
            arch_clobbered: vec![false; logical],
            skip_release: vec![false; logical],
        }
    }
}

/// The rename/release engine (see module documentation).
#[derive(Debug, Clone)]
pub struct RenameUnit {
    config: RenameConfig,
    trace_enabled: bool,
    next_id: u64,
    banks: [Bank; 2],
    book: RosBook,
    checkpoints: VecDeque<Checkpoint>,
    relque: ReleaseQueue,
    stats: ReleaseStats,
    // Reused result/scratch buffers: the commit/resolve/recovery paths run
    // every simulated cycle, so their outcomes are persistent members
    // returned by reference instead of freshly allocated vectors.
    commit_outcome: CommitOutcome,
    recovery: RecoveryOutcome,
    resolve_released: Vec<ReleaseEvent>,
    squash_scratch: Vec<RosEntry>,
    confirm_release_now: Vec<(RegClass, PhysReg)>,
    confirm_to_rwc0: Vec<(InstrId, u8)>,
    /// Retired checkpoints kept for reuse: a conditional branch is decoded
    /// every handful of instructions, so checkpointing copies into pooled
    /// buffers instead of allocating fresh tables.
    checkpoint_pool: Vec<Checkpoint>,
}

impl RenameUnit {
    /// Create a rename unit in the reset state: logical register `i` of each
    /// class maps to physical register `i`, everything else is free.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`RenameConfig::validate`]).
    pub fn new(config: RenameConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid rename configuration: {e}"));
        RenameUnit {
            trace_enabled: std::env::var_os("EARLYREG_TRACE").is_some(),
            next_id: 0,
            banks: [
                Bank::new(RegClass::Int, config.phys_int),
                Bank::new(RegClass::Fp, config.phys_fp),
            ],
            book: RosBook::new(),
            checkpoints: VecDeque::new(),
            relque: ReleaseQueue::new(config.phys_int, config.phys_fp),
            stats: ReleaseStats::default(),
            commit_outcome: CommitOutcome::default(),
            recovery: RecoveryOutcome::default(),
            resolve_released: Vec::new(),
            squash_scratch: Vec::new(),
            confirm_release_now: Vec::new(),
            confirm_to_rwc0: Vec::new(),
            checkpoint_pool: Vec::new(),
            config,
        }
    }

    /// The configuration this unit was built with.
    pub fn config(&self) -> &RenameConfig {
        &self.config
    }

    /// Release/allocation accounting.
    pub fn stats(&self) -> &ReleaseStats {
        &self.stats
    }

    /// Emit a rename/release event when the `EARLYREG_TRACE` environment
    /// variable is set (a debugging aid; the flag is sampled once at
    /// construction).  The message is built lazily so tracing costs nothing
    /// when disabled.
    fn trace(&self, msg: impl FnOnce() -> String) {
        if self.trace_enabled {
            eprintln!("TRACE {}", msg());
        }
    }

    /// Occupancy (Empty/Ready/Idle) totals for one class as of `now`.
    pub fn occupancy_totals(&self, class: RegClass, now: u64) -> OccupancyTotals {
        self.banks[class.index()].occupancy.totals_at(now)
    }

    /// Number of free physical registers in a class.
    pub fn free_count(&self, class: RegClass) -> usize {
        self.banks[class.index()].free.free_count()
    }

    /// Number of unverified branches currently in flight.
    pub fn pending_branches(&self) -> usize {
        self.checkpoints.len()
    }

    /// Number of in-flight (renamed, not yet committed or squashed)
    /// instructions.
    pub fn in_flight(&self) -> usize {
        self.book.len()
    }

    /// Speculative mapping of a logical register.
    pub fn mapping(&self, reg: ArchReg) -> PhysReg {
        self.banks[reg.class().index()].maps.front.get(reg)
    }

    /// Architectural (in-order) mapping of a logical register.
    pub fn arch_mapping(&self, reg: ArchReg) -> PhysReg {
        self.banks[reg.class().index()].maps.retire.get(reg)
    }

    /// True when the *architectural value* of `reg` is unreliable: its
    /// version was released early, or reused and overwritten, before the
    /// redefinition committed.  The paper's Section 4.3 argues this is safe
    /// precisely because the value is dead (the first use on the committed
    /// path is a write); callers comparing against an architectural golden
    /// model must skip such registers, and no committed instruction may read
    /// them (an invariant the simulator checks at every commit).
    pub fn arch_value_unreliable(&self, reg: ArchReg) -> bool {
        let bank = self.bank(reg.class());
        bank.arch_released[reg.index()] || bank.arch_clobbered[reg.index()]
    }

    /// Total conditional releases currently scheduled in the Release Queue.
    pub fn release_queue_marks(&self) -> usize {
        self.relque.total_marks()
    }

    fn bank(&self, class: RegClass) -> &Bank {
        &self.banks[class.index()]
    }

    fn bank_mut(&mut self, class: RegClass) -> &mut Bank {
        &mut self.banks[class.index()]
    }

    // ------------------------------------------------------------------
    // Rename
    // ------------------------------------------------------------------

    /// Can an instruction of this shape be renamed right now?  (Convenience
    /// wrapper used by the fetch/decode stage; [`RenameUnit::rename`] performs
    /// the same checks atomically.)
    pub fn can_rename(&self, instr: &Instruction) -> bool {
        if instr.op.is_cond_branch() && self.checkpoints.len() >= self.config.max_pending_branches {
            return false;
        }
        if let Some(dst) = instr.dst {
            let (needs_alloc, frees_first) = self.dest_allocation_needs(instr, dst);
            if needs_alloc && !frees_first && self.bank(dst.class()).free.is_empty() {
                return false;
            }
        }
        true
    }

    /// Decide, without side effects, whether renaming `instr` will need a
    /// fresh physical register and whether it will free one first.
    fn dest_allocation_needs(&self, instr: &Instruction, dst: ArchReg) -> (bool, bool) {
        if self.config.policy == ReleasePolicy::Conventional {
            return (true, false);
        }
        let bank = self.bank(dst.class());
        if bank.skip_release[dst.index()] {
            return (true, false);
        }
        let reads_own_dst = instr.src1 == Some(dst) || instr.src2 == Some(dst);
        if reads_own_dst {
            // The last use of the previous version will be this instruction
            // itself: an in-flight LU, handled by the rel bits / RwC path.
            return (true, false);
        }
        let lu = bank.lus.get(dst);
        let pending = self.checkpoints.len();
        if lu.committed && pending == 0 {
            if self.config.reuse_on_committed_lu {
                (false, false)
            } else {
                (true, true)
            }
        } else {
            (true, false)
        }
    }

    /// Decide how the destination of `instr` will be handled.  Must be called
    /// *after* the source uses of `instr` have been recorded in the Last-Uses
    /// Table (so that an instruction reading its own destination register is
    /// correctly identified as the last use of the previous version).
    fn plan_dest(&self, dst: ArchReg, id: InstrId) -> DestAction {
        if self.config.policy == ReleasePolicy::Conventional {
            return DestAction::Conventional;
        }
        let bank = self.bank(dst.class());
        if bank.skip_release[dst.index()] {
            return DestAction::SkipStale;
        }
        let lu = bank.lus.get(dst);
        let pending = self.checkpoints.len();
        match (lu.committed, lu.last_user) {
            // Last use already committed.
            (true, _) => {
                if pending == 0 {
                    if self.config.reuse_on_committed_lu {
                        DestAction::Reuse
                    } else {
                        DestAction::Immediate
                    }
                } else if self.config.policy == ReleasePolicy::Extended {
                    DestAction::Conditional {
                        lu_committed: true,
                        lu: lu.last_user.unwrap_or(id),
                        kind: lu.kind,
                    }
                } else {
                    // Basic, Case 2: fall back to the conventional release.
                    DestAction::Conventional
                }
            }
            // Last use still in flight.
            (false, Some(lu_id)) => {
                // Unsafe when an *unverified* branch lies between the last
                // use and this redefinition — or when the last use is itself
                // an unverified branch: if it mispredicts, this redefinition
                // is squashed and the map rolled back, but the surviving
                // last-use entry would still carry the release bit and free a
                // register that is live again.
                let branch_between = self.checkpoints.iter().any(|c| c.branch_id >= lu_id);
                if !branch_between {
                    // Case 1: every pending branch (if any) is older than the
                    // last use, so a misprediction squashes the last use along
                    // with this redefinition and the scheduling dies with it.
                    DestAction::EarlyOnLu {
                        lu: lu_id,
                        kind: lu.kind,
                    }
                } else if self.config.policy == ReleasePolicy::Extended {
                    DestAction::Conditional {
                        lu_committed: false,
                        lu: lu_id,
                        kind: lu.kind,
                    }
                } else {
                    DestAction::Conventional
                }
            }
            (false, None) => unreachable!("an uncommitted LUs entry always names its last user"),
        }
    }

    /// Rename one instruction (decode/rename stage).
    ///
    /// On success the instruction becomes the youngest in-flight instruction
    /// and the returned [`RenamedInstr`] carries its operand physical
    /// registers.  On failure nothing is modified and the caller should stall
    /// and retry next cycle.
    pub fn rename(&mut self, instr: &Instruction, cycle: u64) -> Result<RenamedInstr, RenameStall> {
        let is_branch = instr.op.is_cond_branch();
        if is_branch && self.checkpoints.len() >= self.config.max_pending_branches {
            return Err(RenameStall::TooManyPendingBranches);
        }
        if let Some(dst) = instr.dst {
            let (needs_alloc, frees_first) = self.dest_allocation_needs(instr, dst);
            if needs_alloc && !frees_first && self.bank(dst.class()).free.is_empty() {
                return Err(RenameStall::NoFreePhysReg(dst.class()));
            }
        }

        // ---- side effects start here -----------------------------------
        let id = InstrId(self.next_id);
        self.next_id += 1;

        // Read the source mappings.
        let src1 = instr.src1.map(|r| (r, self.mapping(r)));
        let src2 = instr.src2.map(|r| (r, self.mapping(r)));

        // Renaming 1 (sources): record the source uses in the LUs table.
        if self.config.policy.uses_lus_table() {
            if let Some(r) = instr.src1 {
                self.bank_mut(r.class())
                    .lus
                    .record_use(r, id, UseKind::Src1);
            }
            if let Some(r) = instr.src2 {
                self.bank_mut(r.class())
                    .lus
                    .record_use(r, id, UseKind::Src2);
            }
        }

        // Renaming 2 (destination): release scheduling / reuse / allocation.
        let mut own_rel = [false; 3];
        let mut rel_old = false;
        let mut dst_rename = None;
        if let Some(dst) = instr.dst {
            let class = dst.class();
            let action = self.plan_dest(dst, id);
            let old_pd = self.bank(class).maps.front.get(dst);
            let renamed = match action {
                DestAction::Conventional => {
                    if self.config.policy == ReleasePolicy::Basic
                        || self.config.policy == ReleasePolicy::Extended
                    {
                        self.stats.class_mut(class).fallback_to_conventional += 1;
                    }
                    rel_old = true;
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestAction::SkipStale => {
                    self.bank_mut(class).skip_release[dst.index()] = false;
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestAction::EarlyOnLu { lu, kind } => {
                    if lu == id {
                        // This instruction reads its own destination: it is
                        // the last use of the previous version.
                        own_rel[kind.index()] = true;
                    } else {
                        let entry = self
                            .book
                            .get_mut(lu)
                            .expect("in-flight last use must have a reorder-structure entry");
                        debug_assert!(
                            !entry.rel[kind.index()],
                            "early-release bit set twice on {lu} slot {kind:?}"
                        );
                        entry.rel[kind.index()] = true;
                    }
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestAction::Immediate => {
                    self.free_register(class, old_pd, cycle, ReleaseReason::ImmediateAtDecode);
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestAction::Reuse => {
                    let bank = self.bank_mut(class);
                    // End the previous version's lifetime and start the new
                    // one in the same register.
                    bank.occupancy
                        .on_release(old_pd, cycle, ReleaseReason::Reused);
                    bank.occupancy.on_allocate(old_pd, cycle);
                    // The architectural value of `dst` will be overwritten by
                    // this (still uncommitted) instruction — the Section 4.3
                    // "safe but imprecise" situation.
                    if bank.maps.retire.get(dst) == old_pd {
                        bank.arch_clobbered[dst.index()] = true;
                    }
                    self.stats
                        .class_mut(class)
                        .record_release(ReleaseReason::Reused);
                    DstRename {
                        arch: dst,
                        phys: old_pd,
                        prev: old_pd,
                        reused: true,
                    }
                }
                DestAction::Conditional {
                    lu_committed,
                    lu,
                    kind,
                } => {
                    debug_assert_eq!(self.config.policy, ReleasePolicy::Extended);
                    if lu_committed {
                        self.relque.mark_committed_lu(class, old_pd);
                    } else {
                        self.relque.mark_inflight_lu(lu, kind);
                    }
                    self.stats.class_mut(class).conditional_schedulings += 1;
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
            };
            self.trace(|| {
                format!(
                    "cycle {cycle} RENAME {id} dst {dst} action {action:?} old {old_pd} new {} reused {}",
                    renamed.phys, renamed.reused
                )
            });
            // Redirect the map to the new version and record the destination
            // use in the LUs table (the new version's provisional last use is
            // its own producer — the Figure 4.b case).
            self.bank_mut(class).maps.front.set(dst, renamed.phys);
            if self.config.policy.uses_lus_table() {
                self.bank_mut(class).lus.record_use(dst, id, UseKind::Dst);
            }
            dst_rename = Some(renamed);
        }

        // Branches: take a checkpoint of the speculative rename state and
        // (extended) stack a new Release Queue level.  A retired checkpoint
        // is reused when available: the state is copied into its buffers.
        if is_branch {
            let cp = match self.checkpoint_pool.pop() {
                Some(mut cp) => {
                    cp.branch_id = id;
                    for class in RegClass::ALL {
                        let i = class.index();
                        cp.maps[i].restore_from(&self.banks[i].maps.front);
                        cp.skip_release[i].copy_from_slice(&self.banks[i].skip_release);
                    }
                    match (&mut cp.lus, self.config.policy.uses_lus_table()) {
                        (Some(lus), true) => {
                            for class in RegClass::ALL {
                                lus[class.index()].restore_from(&self.banks[class.index()].lus);
                            }
                        }
                        (slot @ None, true) => {
                            *slot = Some([self.banks[0].lus.clone(), self.banks[1].lus.clone()]);
                        }
                        (slot, false) => *slot = None,
                    }
                    cp
                }
                None => Checkpoint {
                    branch_id: id,
                    maps: [
                        self.banks[0].maps.front.clone(),
                        self.banks[1].maps.front.clone(),
                    ],
                    lus: if self.config.policy.uses_lus_table() {
                        Some([self.banks[0].lus.clone(), self.banks[1].lus.clone()])
                    } else {
                        None
                    },
                    skip_release: [
                        self.banks[0].skip_release.clone(),
                        self.banks[1].skip_release.clone(),
                    ],
                },
            };
            self.checkpoints.push_back(cp);
            if self.config.policy.uses_release_queue() {
                self.relque.push_level(id);
            }
        }

        self.book.push(RosEntry {
            id,
            srcs: [src1, src2],
            dst: dst_rename,
            is_branch,
            rel: own_rel,
            rel_old,
        });

        Ok(RenamedInstr {
            id,
            src1,
            src2,
            dst: dst_rename,
        })
    }

    fn allocate(&mut self, class: RegClass, cycle: u64) -> PhysReg {
        let bank = self.bank_mut(class);
        let phys = bank
            .free
            .allocate()
            .expect("allocation availability was checked before side effects");
        bank.occupancy.on_allocate(phys, cycle);
        self.stats.class_mut(class).allocations += 1;
        self.trace(|| format!("cycle {cycle} ALLOC {class} {phys}"));
        phys
    }

    fn free_register(&mut self, class: RegClass, phys: PhysReg, cycle: u64, reason: ReleaseReason) {
        let bank = self.bank_mut(class);
        // An early free of the register currently recorded as some logical
        // register's architectural version leaves a stale In-Order Map Table
        // entry behind; remember it for precise-exception recovery.
        if matches!(
            reason,
            ReleaseReason::ImmediateAtDecode
                | ReleaseReason::EarlyAtLuCommit
                | ReleaseReason::BranchConfirm
        ) {
            if let Some(r) = bank.maps.retire.find_logical(phys) {
                bank.arch_released[r.index()] = true;
            }
        }
        bank.free.release(phys);
        bank.occupancy.on_release(phys, cycle, reason);
        self.stats.class_mut(class).record_release(reason);
        self.trace(|| format!("cycle {cycle} FREE {class} {phys} reason {reason:?}"));
    }

    // ------------------------------------------------------------------
    // Writeback
    // ------------------------------------------------------------------

    /// Record that the value of `(class, phys)` was produced (used only for
    /// the Empty/Ready/Idle occupancy accounting of Figure 3).
    pub fn mark_value_written(&mut self, class: RegClass, phys: PhysReg, cycle: u64) {
        self.bank_mut(class).occupancy.on_write(phys, cycle);
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Commit the oldest in-flight instruction.  `id` must identify it (the
    /// call panics otherwise — commits are in program order by construction).
    ///
    /// The returned outcome borrows a buffer reused by the next `commit`
    /// call; clone it to keep the events around.
    pub fn commit(&mut self, id: InstrId, cycle: u64) -> &CommitOutcome {
        let entry = self.book.pop_head(id);
        self.trace(|| {
            format!(
                "cycle {cycle} COMMIT {id} rel {:?} rel_old {} dst {:?}",
                entry.rel, entry.rel_old, entry.dst
            )
        });
        let mut released = std::mem::take(&mut self.commit_outcome.released);
        released.clear();

        // Occupancy: every operand of a committing instruction counts as a
        // committed use of its physical register.
        for &(arch, phys) in entry.srcs.iter().flatten() {
            self.bank_mut(arch.class())
                .occupancy
                .on_committed_use(phys, cycle);
        }
        if let Some(d) = entry.dst {
            self.bank_mut(d.arch.class())
                .occupancy
                .on_committed_use(d.phys, cycle);
        }

        // Architectural map update (and clearing of the "architectural
        // version released early" flag — a new architectural version exists).
        if let Some(d) = entry.dst {
            let bank = self.bank_mut(d.arch.class());
            bank.maps.retire.set(d.arch, d.phys);
            bank.arch_released[d.arch.index()] = false;
            bank.arch_clobbered[d.arch.index()] = false;
        }

        // Last-Uses Table C-bit update, applied to the working table and to
        // every checkpoint copy (Section 3.2).
        if self.config.policy.uses_lus_table() {
            let mark =
                |reg: ArchReg, banks: &mut [Bank; 2], checkpoints: &mut VecDeque<Checkpoint>| {
                    banks[reg.class().index()].lus.mark_committed(reg, id);
                    for cp in checkpoints.iter_mut() {
                        if let Some(lus) = cp.lus.as_mut() {
                            lus[reg.class().index()].mark_committed(reg, id);
                        }
                    }
                };
            for &(arch, _) in entry.srcs.iter().flatten() {
                mark(arch, &mut self.banks, &mut self.checkpoints);
            }
            if let Some(d) = entry.dst {
                mark(d.arch, &mut self.banks, &mut self.checkpoints);
            }
        }

        // Early-release bits (rel1/rel2/reld — RwC0 in the extended scheme).
        for kind in UseKind::ALL {
            if entry.rel[kind.index()] {
                let (arch, phys) = entry
                    .operand_phys(kind)
                    .expect("early-release bit set for a missing operand");
                self.free_register(arch.class(), phys, cycle, ReleaseReason::EarlyAtLuCommit);
                released.push(ReleaseEvent {
                    class: arch.class(),
                    phys,
                    reason: ReleaseReason::EarlyAtLuCommit,
                });
            }
        }

        // Extended, Step 5: conditional releases tied to this instruction's
        // commit switch from the RwC form to the RwNS form.
        if self.config.policy.uses_release_queue() {
            let entry_ref = &entry;
            self.relque.on_commit(id, |kind| {
                entry_ref
                    .operand_phys(kind)
                    .map(|(arch, phys)| (arch.class(), phys))
            });
        }

        // Conventional release of the previous version.
        if entry.rel_old {
            if let Some(d) = entry.dst {
                if !d.reused && d.prev != d.phys {
                    self.free_register(d.arch.class(), d.prev, cycle, ReleaseReason::Conventional);
                    released.push(ReleaseEvent {
                        class: d.arch.class(),
                        phys: d.prev,
                        reason: ReleaseReason::Conventional,
                    });
                }
            }
        }

        self.commit_outcome.released = released;
        &self.commit_outcome
    }

    // ------------------------------------------------------------------
    // Branch resolution
    // ------------------------------------------------------------------

    /// The prediction of branch `id` was verified correct.  Returns the
    /// branch-confirm releases (extended mechanism, Step 6); the slice
    /// borrows a buffer reused by the next resolution.
    pub fn resolve_branch_correct(&mut self, id: InstrId, cycle: u64) -> &[ReleaseEvent] {
        let pos = self
            .checkpoints
            .iter()
            .position(|c| c.branch_id == id)
            .unwrap_or_else(|| panic!("branch {id} has no checkpoint to confirm"));
        if let Some(cp) = self.checkpoints.remove(pos) {
            self.checkpoint_pool.push(cp);
        }

        let mut released = std::mem::take(&mut self.resolve_released);
        released.clear();
        if self.config.policy.uses_release_queue() {
            let mut release_now = std::mem::take(&mut self.confirm_release_now);
            let mut to_rwc0 = std::mem::take(&mut self.confirm_to_rwc0);
            release_now.clear();
            to_rwc0.clear();
            self.relque.confirm_into(id, &mut release_now, &mut to_rwc0);
            for &(class, phys) in &release_now {
                self.free_register(class, phys, cycle, ReleaseReason::BranchConfirm);
                released.push(ReleaseEvent {
                    class,
                    phys,
                    reason: ReleaseReason::BranchConfirm,
                });
            }
            for &(lu, mask) in &to_rwc0 {
                let entry = self
                    .book
                    .get_mut(lu)
                    .expect("an RwC mark always references an in-flight last use");
                for kind in UseKind::ALL {
                    if mask & kind.mask() != 0 {
                        entry.rel[kind.index()] = true;
                    }
                }
            }
            self.confirm_release_now = release_now;
            self.confirm_to_rwc0 = to_rwc0;
        }
        self.resolve_released = released;
        &self.resolve_released
    }

    /// The prediction of branch `id` was wrong: squash every younger
    /// instruction and restore the speculative rename state from the branch's
    /// checkpoint.  The returned outcome borrows a buffer reused by the next
    /// recovery.
    pub fn recover_branch_mispredict(&mut self, id: InstrId, cycle: u64) -> &RecoveryOutcome {
        self.trace(|| format!("cycle {cycle} MISPREDICT {id}"));
        let mut squashed = std::mem::take(&mut self.squash_scratch);
        self.book.squash_after_into(id, false, &mut squashed);
        let mut freed = std::mem::take(&mut self.recovery.freed);
        freed.clear();
        for entry in &squashed {
            if let Some(d) = entry.dst {
                if !d.reused {
                    self.free_register(
                        d.arch.class(),
                        d.phys,
                        cycle,
                        ReleaseReason::SquashMispredict,
                    );
                    freed.push(ReleaseEvent {
                        class: d.arch.class(),
                        phys: d.phys,
                        reason: ReleaseReason::SquashMispredict,
                    });
                }
            }
        }

        let pos = self
            .checkpoints
            .iter()
            .position(|c| c.branch_id == id)
            .unwrap_or_else(|| panic!("mispredicted branch {id} has no checkpoint"));
        // Checkpoints of squashed (younger) branches disappear; the
        // mispredicted branch's own checkpoint is consumed by the recovery.
        while self.checkpoints.len() > pos + 1 {
            let cp = self.checkpoints.pop_back().expect("length checked");
            self.checkpoint_pool.push(cp);
        }
        let cp = self.checkpoints.pop_back().expect("checkpoint exists");
        for class in RegClass::ALL {
            let bank = &mut self.banks[class.index()];
            bank.maps.front.restore_from(&cp.maps[class.index()]);
            if let Some(lus) = cp.lus.as_ref() {
                bank.lus.restore_from(&lus[class.index()]);
            }
            bank.skip_release
                .copy_from_slice(&cp.skip_release[class.index()]);
        }
        self.checkpoint_pool.push(cp);

        if self.config.policy.uses_release_queue() {
            self.relque.mispredict(id);
        }

        self.recovery.squashed = squashed.len();
        self.squash_scratch = squashed;
        self.recovery.freed = freed;
        &self.recovery
    }

    // ------------------------------------------------------------------
    // Exception recovery
    // ------------------------------------------------------------------

    /// Precise-exception recovery: every in-flight instruction (including the
    /// faulting one, which has not committed) is squashed and the speculative
    /// map is restored from the In-Order Map Table.  The returned outcome
    /// borrows a buffer reused by the next recovery.
    pub fn recover_exception(&mut self, cycle: u64) -> &RecoveryOutcome {
        let mut squashed = std::mem::take(&mut self.squash_scratch);
        self.book.drain_all_into(&mut squashed);
        let mut freed = std::mem::take(&mut self.recovery.freed);
        freed.clear();
        for entry in &squashed {
            if let Some(d) = entry.dst {
                if !d.reused {
                    self.free_register(
                        d.arch.class(),
                        d.phys,
                        cycle,
                        ReleaseReason::SquashException,
                    );
                    freed.push(ReleaseEvent {
                        class: d.arch.class(),
                        phys: d.phys,
                        reason: ReleaseReason::SquashException,
                    });
                }
            }
        }
        while let Some(cp) = self.checkpoints.pop_back() {
            self.checkpoint_pool.push(cp);
        }
        self.relque.clear();
        for class in RegClass::ALL {
            let bank = &mut self.banks[class.index()];
            bank.maps.recover_from_retire();
            bank.lus.reset_all();
            // Logical registers whose architectural version was freed early
            // now have a stale mapping (paper Section 4.3): their next
            // redefinition must not release or reuse it.
            for r in 0..class.num_logical() {
                bank.skip_release[r] = bank.arch_released[r];
            }
        }
        self.recovery.squashed = squashed.len();
        self.squash_scratch = squashed;
        self.recovery.freed = freed;
        &self.recovery
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests / debugging)
    // ------------------------------------------------------------------

    /// Check internal consistency; returns a description of the first
    /// violated invariant, if any.  Used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for class in RegClass::ALL {
            let bank = self.bank(class);
            let cap = self.config.phys_regs(class);
            if bank.free.free_count() + bank.occupancy.allocated_now() != cap {
                return Err(format!(
                    "{class}: free ({}) + allocated ({}) != capacity ({cap})",
                    bank.free.free_count(),
                    bank.occupancy.allocated_now()
                ));
            }
            for (reg, phys) in bank.maps.front.iter() {
                if bank.free.contains(phys) && !bank.skip_release[reg.index()] {
                    return Err(format!(
                        "{class}: speculative map of {reg} points to free register {phys} \
                         without a stale-mapping flag"
                    ));
                }
            }
        }
        let dst_in_flight = self.book.iter().filter(|e| e.dst.is_some()).count();
        if self.relque.total_marks() > dst_in_flight {
            return Err(format!(
                "release queue holds {} marks but only {dst_in_flight} in-flight instructions \
                 have destinations (paper Section 4.2 bound violated)",
                self.relque.total_marks()
            ));
        }
        if self.relque.depth() != 0 && !self.config.policy.uses_release_queue() {
            return Err("release queue used by a policy that should not use it".into());
        }
        if self.config.policy.uses_release_queue() && self.relque.depth() != self.checkpoints.len()
        {
            return Err(format!(
                "release queue depth ({}) out of sync with pending branches ({})",
                self.relque.depth(),
                self.checkpoints.len()
            ));
        }
        Ok(())
    }
}
