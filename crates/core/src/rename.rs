//! The rename/release engine.
//!
//! [`RenameUnit`] implements the policy-*independent* allocate/release
//! machinery for both register classes — free lists, speculative and
//! in-order map tables, the rename-side reorder-structure book, per-branch
//! map checkpoints, occupancy and release accounting — and delegates every
//! release *decision* to a pluggable
//! [`ReleaseScheme`](crate::scheme::ReleaseScheme) built from the policy
//! [registry](crate::registry):
//!
//! * **Conventional** (Section 2): a redefinition allocates a new physical
//!   register and the previous version (`old_pd`) is released when the
//!   redefinition commits.
//! * **Basic** (Section 3): when the redefinition (NV) is decoded and no
//!   unverified branch separates it from the last use (LU) of the previous
//!   version, the release is retimed to the LU's commit via the
//!   `rel1/rel2/reld` bits — or performed immediately (optionally *reusing*
//!   the register) if the LU has already committed.  Otherwise the
//!   conventional path is used.
//! * **Extended** (Section 4): the conventional path is removed entirely.
//!   Redefinitions decoded under pending branches schedule *conditional*
//!   releases in the [Release Queue](crate::release_queue::ReleaseQueue)
//!   which are cancelled by mispredictions and performed at LU commit /
//!   oldest-branch confirmation otherwise.
//! * **Oracle** / **Counter** and any future scheme: see
//!   [`crate::schemes`] and `docs/POLICIES.md` — they plug in here without
//!   engine changes.
//!
//! The unit also deals with the two recovery mechanisms the paper requires:
//! branch misprediction recovery through per-branch checkpoints of the Map
//! Table, scheme state and stale-mapping flags, and precise-exception
//! recovery through the In-Order Map Table (Section 4.3).
//!
//! ## Stale architectural mappings
//!
//! The paper's Section 4.3 observes that after an early release the value
//! "attached" to a logical register may be garbage, which is safe because the
//! first use of that register on the committed path is guaranteed to be a
//! write.  One consequence (implicit in the paper) is that a logical register
//! may map to a physical register that has already been handed back to the
//! free list: after a precise exception restores the map from the In-Order
//! Map Table, and — under oracle-style schemes that release *before* the
//! redefinition is even decoded — in the speculative map itself.  The mapping
//! is *stale*: it will never be read, but the next redefinition of that
//! logical register must not release (or reuse) the stale register — it is
//! no longer owned by this logical register.  The unit tracks this with a
//! per-logical-register `skip_release` flag that is set during exception
//! recovery (from the non-speculative `arch_released` flag) and when a
//! scheme-requested commit release outruns the redefinition, checkpointed
//! across branches, and consumed by the next redefinition.

use crate::free_list::FreeList;
use crate::map_table::MapTablePair;
use crate::registry;
use crate::regstate::{OccupancyTotals, OccupancyTracker};
use crate::ros::{DstRename, RosBook, RosEntry};
use crate::scheme::{DestPlan, DestQuery, ReleaseScheme, SchemeSeed};
use crate::stats::ReleaseStats;
use crate::types::{InstrId, PhysReg, ReleaseReason, RenameConfig, RenameStall, UseKind};
use earlyreg_isa::{ArchReg, Instruction, RegClass};
use std::collections::VecDeque;

/// A physical register returned to the free list (or reused), with the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseEvent {
    /// Register class.
    pub class: RegClass,
    /// The physical register.
    pub phys: PhysReg,
    /// Why it was released.
    pub reason: ReleaseReason,
}

/// Result of renaming one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenamedInstr {
    /// The dynamic instruction identifier assigned by the rename unit.
    pub id: InstrId,
    /// First source operand: logical register and the physical register that
    /// holds its value.
    pub src1: Option<(ArchReg, PhysReg)>,
    /// Second source operand.
    pub src2: Option<(ArchReg, PhysReg)>,
    /// Destination rename, if the instruction writes a register.
    pub dst: Option<DstRename>,
}

/// Result of committing one instruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommitOutcome {
    /// Registers released by this commit (early bits, RwC0, scheme-requested
    /// releases and/or the conventional `old_pd` release).
    pub released: Vec<ReleaseEvent>,
}

/// Result of a recovery action (branch misprediction or exception).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryOutcome {
    /// Number of in-flight instructions squashed.
    pub squashed: usize,
    /// Registers freed because their allocating instruction was squashed.
    pub freed: Vec<ReleaseEvent>,
}

/// Per-branch checkpoint of the speculative rename state the *engine* owns
/// (the scheme checkpoints its own state through
/// [`ReleaseScheme::on_branch_renamed`]).
///
/// Checkpoints are *journaled*, not copied: a checkpoint is just a position
/// in the undo journal.  Rolling back to a branch replays the journal suffix
/// after its mark in reverse, then re-derives the stale-mapping flags for
/// entries that name freed registers (see
/// [`RenameUnit::recover_branch_mispredict`]).  This turns the per-branch
/// cost from O(map size) copies into O(mutations actually made under the
/// branch), which the profiler showed dominating the rename phase.
#[derive(Debug, Clone, Copy)]
struct Checkpoint {
    branch_id: InstrId,
    /// Absolute journal position (`journal_base`-relative indices are
    /// recovered by subtracting the base) at which this checkpoint was
    /// taken.  Rolling back undoes every journal entry at or after `mark`.
    mark: u64,
}

/// One undoable speculative mutation, recorded while at least one branch
/// checkpoint is live.  `Map`/`SkipConsumed` restore rename-time mutations;
/// `PatchRelease` records a commit-time scheme release performed under a
/// live checkpoint (it restores nothing at rollback — the freed register is
/// re-flagged by the rollback coherence scan — but lets
/// [`RenameUnit::check_checkpoint_coherence`] reconstruct which checkpoint
/// states legitimately name a freed register).
#[derive(Debug, Clone, Copy)]
enum JournalEntry {
    /// The speculative map of `reg` was redirected away from `old`.
    Map { reg: ArchReg, old: PhysReg },
    /// The stale-mapping flag of `reg` was consumed (true → false) by its
    /// redefinition.
    SkipConsumed { reg: ArchReg },
    /// `phys` was released by a commit-time scheme release while this
    /// journal position was live.
    PatchRelease { class: RegClass, phys: PhysReg },
}

/// Per-class rename state.
#[derive(Debug, Clone)]
struct Bank {
    free: FreeList,
    maps: MapTablePair,
    occupancy: OccupancyTracker,
    /// Non-speculative: the architectural (IOMT) version of this logical
    /// register has been freed early and its redefinition has not committed.
    arch_released: Vec<bool>,
    /// Non-speculative: the architectural version of this logical register is
    /// still allocated but its *value* may have been clobbered by a reuse
    /// (Section 3.2) whose redefinition has not committed yet.
    arch_clobbered: Vec<bool>,
    /// Speculative (checkpointed): the current front-map entry for this
    /// logical register is stale and must not be released or reused by its
    /// next redefinition.
    skip_release: Vec<bool>,
}

impl Bank {
    fn new(class: RegClass, phys: usize) -> Self {
        let logical = class.num_logical();
        Bank {
            free: FreeList::new(phys, logical),
            maps: MapTablePair::new(class),
            occupancy: OccupancyTracker::new(phys, logical),
            arch_released: vec![false; logical],
            arch_clobbered: vec![false; logical],
            skip_release: vec![false; logical],
        }
    }
}

/// The rename/release engine (see module documentation).
#[derive(Debug, Clone)]
pub struct RenameUnit {
    config: RenameConfig,
    trace_enabled: bool,
    next_id: u64,
    banks: [Bank; 2],
    book: RosBook,
    checkpoints: VecDeque<Checkpoint>,
    scheme: Box<dyn ReleaseScheme>,
    stats: ReleaseStats,
    // Reused result/scratch buffers: the commit/resolve/recovery paths run
    // every simulated cycle, so their outcomes are persistent members
    // returned by reference instead of freshly allocated vectors.
    commit_outcome: CommitOutcome,
    recovery: RecoveryOutcome,
    resolve_released: Vec<ReleaseEvent>,
    squash_scratch: Vec<RosEntry>,
    scheme_releases: Vec<(RegClass, PhysReg)>,
    confirm_release_now: Vec<(RegClass, PhysReg)>,
    confirm_to_rwc0: Vec<(InstrId, u8)>,
    /// Undo journal for speculative mutations made while ≥1 checkpoint is
    /// live.  Confirmed prefixes are drained; `journal_base` is the absolute
    /// position of `journal[0]` so checkpoint marks stay valid across
    /// drains.
    journal: Vec<JournalEntry>,
    journal_base: u64,
}

impl RenameUnit {
    /// Create a rename unit in the reset state: logical register `i` of each
    /// class maps to physical register `i`, everything else is free.  The
    /// release scheme is built from the policy registry with an empty
    /// [`SchemeSeed`]; use [`RenameUnit::with_seed`] for schemes that need
    /// construction data (the registry descriptor's `needs_kill_plan` says
    /// which).
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`RenameConfig::validate`]) or the scheme cannot be built.
    pub fn new(config: RenameConfig) -> Self {
        Self::with_seed(config, SchemeSeed::default())
    }

    /// As [`RenameUnit::new`], with explicit scheme construction data.  A
    /// [`SchemeSeed::scheme_override`] bypasses the registry entirely (a
    /// test-only path used by the conformance harness).
    pub fn with_seed(config: RenameConfig, seed: SchemeSeed) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid rename configuration: {e}"));
        let scheme = match seed.scheme_override {
            Some(ref scheme) => scheme.box_clone(),
            None => registry::build(config.policy, &config, &seed)
                .unwrap_or_else(|e| panic!("cannot build release scheme '{}': {e}", config.policy)),
        };
        RenameUnit {
            trace_enabled: std::env::var_os("EARLYREG_TRACE").is_some(),
            next_id: 0,
            banks: [
                Bank::new(RegClass::Int, config.phys_int),
                Bank::new(RegClass::Fp, config.phys_fp),
            ],
            book: RosBook::new(),
            checkpoints: VecDeque::new(),
            scheme,
            stats: ReleaseStats::default(),
            commit_outcome: CommitOutcome::default(),
            recovery: RecoveryOutcome::default(),
            resolve_released: Vec::new(),
            squash_scratch: Vec::new(),
            scheme_releases: Vec::new(),
            confirm_release_now: Vec::new(),
            confirm_to_rwc0: Vec::new(),
            journal: Vec::new(),
            journal_base: 0,
            config,
        }
    }

    /// Absolute position of the journal end (the mark a checkpoint taken now
    /// would get).
    #[inline]
    fn journal_end(&self) -> u64 {
        self.journal_base + self.journal.len() as u64
    }

    /// Record an undoable speculative mutation.  Only meaningful — and only
    /// paid for — while at least one checkpoint is live; with no live
    /// checkpoint there is nothing to roll back to, so the journal stays
    /// empty.
    #[inline]
    fn journal_push(&mut self, entry: JournalEntry) {
        if !self.checkpoints.is_empty() {
            self.journal.push(entry);
        }
    }

    /// Drop journal entries no live checkpoint can roll back to: everything
    /// before the oldest checkpoint's mark (the whole journal when no
    /// checkpoint is live).
    fn compact_journal(&mut self) {
        match self.checkpoints.front() {
            None => {
                self.journal_base += self.journal.len() as u64;
                self.journal.clear();
            }
            Some(oldest) => {
                let drop = (oldest.mark - self.journal_base) as usize;
                if drop > 0 {
                    self.journal.drain(..drop);
                    self.journal_base = oldest.mark;
                }
            }
        }
    }

    /// Trim retained scratch capacity (undo journal, checkpoint deque,
    /// squash/outcome buffers) back to small bounds.  Branch-storm workloads
    /// grow these high-water marks; sweep drivers call this at point
    /// boundaries so pooled units do not carry peak capacity across points.
    pub fn trim_scratch(&mut self) {
        const KEEP: usize = 64;
        self.journal.shrink_to(KEEP);
        self.checkpoints.shrink_to(KEEP);
        self.squash_scratch.shrink_to(KEEP);
        self.commit_outcome.released.shrink_to(KEEP);
        self.recovery.freed.shrink_to(KEEP);
        self.resolve_released.shrink_to(KEEP);
        self.scheme_releases.shrink_to(KEEP);
        self.confirm_release_now.shrink_to(KEEP);
        self.confirm_to_rwc0.shrink_to(KEEP);
    }

    /// Total retained scratch capacity, in entries (regression probe for
    /// [`RenameUnit::trim_scratch`]).
    pub fn scratch_capacity(&self) -> usize {
        self.journal.capacity()
            + self.checkpoints.capacity()
            + self.squash_scratch.capacity()
            + self.commit_outcome.released.capacity()
            + self.recovery.freed.capacity()
            + self.resolve_released.capacity()
            + self.scheme_releases.capacity()
            + self.confirm_release_now.capacity()
            + self.confirm_to_rwc0.capacity()
    }

    /// The configuration this unit was built with.
    pub fn config(&self) -> &RenameConfig {
        &self.config
    }

    /// The release scheme driving this unit.
    pub fn scheme(&self) -> &dyn ReleaseScheme {
        self.scheme.as_ref()
    }

    /// Release/allocation accounting.
    pub fn stats(&self) -> &ReleaseStats {
        &self.stats
    }

    /// Emit a rename/release event when the `EARLYREG_TRACE` environment
    /// variable is set (a debugging aid; the flag is sampled once at
    /// construction).  The message is built lazily so tracing costs nothing
    /// when disabled.
    fn trace(&self, msg: impl FnOnce() -> String) {
        if self.trace_enabled {
            eprintln!("TRACE {}", msg());
        }
    }

    /// Occupancy (Empty/Ready/Idle) totals for one class as of `now`.
    pub fn occupancy_totals(&self, class: RegClass, now: u64) -> OccupancyTotals {
        self.banks[class.index()].occupancy.totals_at(now)
    }

    /// Number of free physical registers in a class.
    pub fn free_count(&self, class: RegClass) -> usize {
        self.banks[class.index()].free.free_count()
    }

    /// Number of unverified branches currently in flight.
    pub fn pending_branches(&self) -> usize {
        self.checkpoints.len()
    }

    /// Number of in-flight (renamed, not yet committed or squashed)
    /// instructions.
    pub fn in_flight(&self) -> usize {
        self.book.len()
    }

    /// Speculative mapping of a logical register.
    pub fn mapping(&self, reg: ArchReg) -> PhysReg {
        self.banks[reg.class().index()].maps.front.get(reg)
    }

    /// Architectural (in-order) mapping of a logical register.
    pub fn arch_mapping(&self, reg: ArchReg) -> PhysReg {
        self.banks[reg.class().index()].maps.retire.get(reg)
    }

    /// True when the *architectural value* of `reg` is unreliable: its
    /// version was released early, or reused and overwritten, before the
    /// redefinition committed.  The paper's Section 4.3 argues this is safe
    /// precisely because the value is dead (the first use on the committed
    /// path is a write); callers comparing against an architectural golden
    /// model must skip such registers, and no committed instruction may read
    /// them (an invariant the simulator checks at every commit).
    pub fn arch_value_unreliable(&self, reg: ArchReg) -> bool {
        let bank = self.bank(reg.class());
        bank.arch_released[reg.index()] || bank.arch_clobbered[reg.index()]
    }

    /// Total conditional releases currently scheduled in the scheme (the
    /// extended mechanism's Release Queue marks; 0 for schemes without one).
    pub fn release_queue_marks(&self) -> usize {
        self.scheme.release_queue_marks()
    }

    fn bank(&self, class: RegClass) -> &Bank {
        &self.banks[class.index()]
    }

    fn bank_mut(&mut self, class: RegClass) -> &mut Bank {
        &mut self.banks[class.index()]
    }

    // ------------------------------------------------------------------
    // Rename
    // ------------------------------------------------------------------

    /// Plan the destination handling for `instr`, with no side effects.
    /// Stale (post-exception / post-oracle-release) mappings are resolved by
    /// the engine before the scheme is consulted.
    fn plan_dest(&self, instr: &Instruction, dst: ArchReg) -> DestPlan {
        let bank = self.bank(dst.class());
        if bank.skip_release[dst.index()] {
            // The previous version is stale (already released) and must not
            // be touched; the flag is consumed when the plan executes.
            return DestPlan::AllocOnly;
        }
        let old_pd = bank.maps.front.get(dst);
        // `Src2` wins when both sources read the destination, matching the
        // Last-Uses Table record order (src1 then src2 — the later record
        // overwrites).
        let own_use = if instr.src2 == Some(dst) {
            Some(UseKind::Src2)
        } else if instr.src1 == Some(dst) {
            Some(UseKind::Src1)
        } else {
            None
        };
        let query = DestQuery {
            dst,
            old_pd,
            own_use,
            pending_branches: self.checkpoints.len(),
            // Checkpoints are pushed in program order, so the back one is
            // the youngest pending branch.
            newest_branch: self.checkpoints.back().map(|c| c.branch_id),
            reuse_on_committed_lu: self.config.reuse_on_committed_lu,
            old_is_settled_arch: bank.maps.retire.get(dst) == old_pd
                && !bank.arch_released[dst.index()]
                && !bank.arch_clobbered[dst.index()],
        };
        self.scheme.plan_dest(&query)
    }

    /// Can an instruction of this shape be renamed right now?  (Convenience
    /// wrapper used by the fetch/decode stage; [`RenameUnit::rename`] performs
    /// the same checks atomically.)
    pub fn can_rename(&self, instr: &Instruction) -> bool {
        if instr.op.is_cond_branch() && self.checkpoints.len() >= self.config.max_pending_branches {
            return false;
        }
        if let Some(dst) = instr.dst {
            let plan = self.plan_dest(instr, dst);
            if plan.needs_allocation()
                && !plan.frees_before_allocating()
                && self.bank(dst.class()).free.is_empty()
            {
                return false;
            }
        }
        true
    }

    /// Rename one instruction (decode/rename stage).
    ///
    /// On success the instruction becomes the youngest in-flight instruction
    /// and the returned [`RenamedInstr`] carries its operand physical
    /// registers.  On failure nothing is modified and the caller should stall
    /// and retry next cycle.
    pub fn rename(&mut self, instr: &Instruction, cycle: u64) -> Result<RenamedInstr, RenameStall> {
        let is_branch = instr.op.is_cond_branch();
        if is_branch && self.checkpoints.len() >= self.config.max_pending_branches {
            return Err(RenameStall::TooManyPendingBranches);
        }
        let planned = instr.dst.map(|dst| (dst, self.plan_dest(instr, dst)));
        if let Some((dst, plan)) = planned {
            if plan.needs_allocation()
                && !plan.frees_before_allocating()
                && self.bank(dst.class()).free.is_empty()
            {
                return Err(RenameStall::NoFreePhysReg(dst.class()));
            }
        }

        // ---- side effects start here -----------------------------------
        let id = InstrId(self.next_id);
        self.next_id += 1;

        // Read the source mappings.
        let src1 = instr.src1.map(|r| (r, self.mapping(r)));
        let src2 = instr.src2.map(|r| (r, self.mapping(r)));

        // Renaming 1 (sources): let the scheme track the source uses (the
        // Last-Uses Table's "Renaming 1" step, the counter scheme's reader
        // counts, ...).
        if let Some((r, p)) = src1 {
            self.scheme.record_use(r, p, id, UseKind::Src1);
        }
        if let Some((r, p)) = src2 {
            self.scheme.record_use(r, p, id, UseKind::Src2);
        }

        // Renaming 2 (destination): execute the planned release / reuse /
        // allocation.
        let mut own_rel = [false; 3];
        let mut rel_old = false;
        let mut dst_rename = None;
        if let Some((dst, plan)) = planned {
            let class = dst.class();
            if self.bank(class).skip_release[dst.index()] {
                // Consume the stale-mapping flag (the plan is AllocOnly).
                debug_assert_eq!(plan, DestPlan::AllocOnly);
                self.bank_mut(class).skip_release[dst.index()] = false;
                self.journal_push(JournalEntry::SkipConsumed { reg: dst });
            }
            let old_pd = self.bank(class).maps.front.get(dst);
            let renamed = match plan {
                DestPlan::ReleaseAtCommit { fallback } => {
                    if fallback {
                        self.stats.class_mut(class).fallback_to_conventional += 1;
                    }
                    rel_old = true;
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestPlan::AllocOnly => {
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestPlan::EarlyOnSelf { kind } => {
                    // This instruction reads its own destination: it is the
                    // last use of the previous version.
                    own_rel[kind.index()] = true;
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestPlan::EarlyOnLu { lu, kind } => {
                    let entry = self
                        .book
                        .get_mut(lu)
                        .expect("in-flight last use must have a reorder-structure entry");
                    debug_assert!(
                        !entry.rel[kind.index()],
                        "early-release bit set twice on {lu} slot {kind:?}"
                    );
                    entry.rel[kind.index()] = true;
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestPlan::ReleaseNow => {
                    self.free_register(class, old_pd, cycle, ReleaseReason::ImmediateAtDecode);
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
                DestPlan::Reuse => {
                    let bank = self.bank_mut(class);
                    // End the previous version's lifetime and start the new
                    // one in the same register.
                    bank.occupancy
                        .on_release(old_pd, cycle, ReleaseReason::Reused);
                    bank.occupancy.on_allocate(old_pd, cycle);
                    // The architectural value of `dst` will be overwritten by
                    // this (still uncommitted) instruction — the Section 4.3
                    // "safe but imprecise" situation.
                    if bank.maps.retire.get(dst) == old_pd {
                        bank.arch_clobbered[dst.index()] = true;
                    }
                    self.stats
                        .class_mut(class)
                        .record_release(ReleaseReason::Reused);
                    DstRename {
                        arch: dst,
                        phys: old_pd,
                        prev: old_pd,
                        reused: true,
                    }
                }
                DestPlan::Conditional { lu } => {
                    self.scheme.schedule_conditional(class, old_pd, lu);
                    self.stats.class_mut(class).conditional_schedulings += 1;
                    let phys = self.allocate(class, cycle);
                    DstRename {
                        arch: dst,
                        phys,
                        prev: old_pd,
                        reused: false,
                    }
                }
            };
            self.trace(|| {
                format!(
                    "cycle {cycle} RENAME {id} dst {dst} plan {plan:?} old {old_pd} new {} reused {}",
                    renamed.phys, renamed.reused
                )
            });
            // Redirect the map to the new version and record the destination
            // use (the new version's provisional last use is its own
            // producer — the Figure 4.b case).
            let old = self.bank_mut(class).maps.front.set(dst, renamed.phys);
            if old != renamed.phys {
                self.journal_push(JournalEntry::Map { reg: dst, old });
            }
            self.scheme.record_use(dst, renamed.phys, id, UseKind::Dst);
            dst_rename = Some(renamed);
        }

        // Branches: take a checkpoint of the engine's speculative rename
        // state — under journaling just the current journal position — and
        // let the scheme capture its own (LUs Table copy, Release Queue
        // level, ...).
        if is_branch {
            self.checkpoints.push_back(Checkpoint {
                branch_id: id,
                mark: self.journal_end(),
            });
            self.scheme.on_branch_renamed(id);
        }

        self.book.push(RosEntry {
            id,
            srcs: [src1, src2],
            dst: dst_rename,
            is_branch,
            rel: own_rel,
            rel_old,
        });

        Ok(RenamedInstr {
            id,
            src1,
            src2,
            dst: dst_rename,
        })
    }

    fn allocate(&mut self, class: RegClass, cycle: u64) -> PhysReg {
        let bank = self.bank_mut(class);
        let phys = bank
            .free
            .allocate()
            .expect("allocation availability was checked before side effects");
        bank.occupancy.on_allocate(phys, cycle);
        self.stats.class_mut(class).allocations += 1;
        self.trace(|| format!("cycle {cycle} ALLOC {class} {phys}"));
        phys
    }

    fn free_register(&mut self, class: RegClass, phys: PhysReg, cycle: u64, reason: ReleaseReason) {
        let bank = self.bank_mut(class);
        // An early free of the register currently recorded as some logical
        // register's architectural version leaves a stale In-Order Map Table
        // entry behind; remember it for precise-exception recovery.  All
        // matches, not just the first: a recycled register can be named by a
        // stale architectural mapping and the live one at the same time.
        if matches!(
            reason,
            ReleaseReason::ImmediateAtDecode
                | ReleaseReason::EarlyAtLuCommit
                | ReleaseReason::BranchConfirm
        ) {
            let (maps, arch_released) = (&bank.maps, &mut bank.arch_released);
            maps.retire
                .for_each_logical_of(phys, |r| arch_released[r.index()] = true);
        }
        bank.free.release(phys);
        bank.occupancy.on_release(phys, cycle, reason);
        self.stats.class_mut(class).record_release(reason);
        self.trace(|| format!("cycle {cycle} FREE {class} {phys} reason {reason:?}"));
    }

    // ------------------------------------------------------------------
    // Writeback
    // ------------------------------------------------------------------

    /// Record that the value of `(class, phys)` was produced (used only for
    /// the Empty/Ready/Idle occupancy accounting of Figure 3).
    pub fn mark_value_written(&mut self, class: RegClass, phys: PhysReg, cycle: u64) {
        self.bank_mut(class).occupancy.on_write(phys, cycle);
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Commit the oldest in-flight instruction.  `id` must identify it (the
    /// call panics otherwise — commits are in program order by construction).
    ///
    /// The returned outcome borrows a buffer reused by the next `commit`
    /// call; clone it to keep the events around.
    pub fn commit(&mut self, id: InstrId, cycle: u64) -> &CommitOutcome {
        let entry = self.book.pop_head(id);
        // Hook assertion (debug builds only): the register this instruction
        // allocated must still be allocated when it commits — a scheme that
        // freed an in-flight destination has corrupted the free list.
        #[cfg(debug_assertions)]
        if let Some(d) = entry.dst {
            debug_assert!(
                !self.bank(d.arch.class()).free.contains(d.phys),
                "committing {id}: its destination register {} is on the free list",
                d.phys
            );
        }
        self.trace(|| {
            format!(
                "cycle {cycle} COMMIT {id} rel {:?} rel_old {} dst {:?}",
                entry.rel, entry.rel_old, entry.dst
            )
        });
        let mut released = std::mem::take(&mut self.commit_outcome.released);
        released.clear();

        // Occupancy: every operand of a committing instruction counts as a
        // committed use of its physical register.
        for &(arch, phys) in entry.srcs.iter().flatten() {
            self.bank_mut(arch.class())
                .occupancy
                .on_committed_use(phys, cycle);
        }
        if let Some(d) = entry.dst {
            self.bank_mut(d.arch.class())
                .occupancy
                .on_committed_use(d.phys, cycle);
        }

        // Architectural map update (and clearing of the "architectural
        // version released early" flag — a new architectural version exists).
        if let Some(d) = entry.dst {
            let bank = self.bank_mut(d.arch.class());
            bank.maps.retire.set(d.arch, d.phys);
            bank.arch_released[d.arch.index()] = false;
            bank.arch_clobbered[d.arch.index()] = false;
        }

        // Scheme commit step: Last-Uses `C` bits (applied to every
        // checkpoint copy, Section 3.2), Release Queue RwC→RwNS moves
        // (extended Step 5), reader-counter decrements, and — for
        // oracle-style schemes — the registers whose true last use commits
        // here.
        let mut scheme_releases = std::mem::take(&mut self.scheme_releases);
        scheme_releases.clear();
        self.scheme.on_commit(&entry, &mut scheme_releases);
        for &(class, phys) in &scheme_releases {
            self.free_register(class, phys, cycle, ReleaseReason::EarlyAtLuCommit);
            released.push(ReleaseEvent {
                class,
                phys,
                reason: ReleaseReason::EarlyAtLuCommit,
            });
            // A scheme release can outrun the redefinition entirely (the
            // oracle frees at the true last use, which may commit before the
            // redefinition is decoded).  Any speculative map entry still
            // naming the freed register is now stale: flag it so the
            // eventual redefinition neither releases nor reuses it.  *Every*
            // matching entry must be flagged: once a stale mapping to a
            // recycled register coexists with the live one, flagging only
            // the first match would leave the live mapping unprotected.
            // Checkpointed states need no eager patching: a misprediction
            // rollback re-derives the flags for freed registers (the
            // coherence scan in `recover_branch_mispredict`) — the journal
            // only records that the release happened under a live
            // checkpoint, so the coherence probe can tell a legitimate
            // scheme release from a corrupting one.
            let bank = self.bank_mut(class);
            let (maps, skip_release) = (&bank.maps, &mut bank.skip_release);
            maps.front
                .for_each_logical_of(phys, |r| skip_release[r.index()] = true);
            self.journal_push(JournalEntry::PatchRelease { class, phys });
        }
        self.scheme_releases = scheme_releases;

        // Early-release bits (rel1/rel2/reld — RwC0 in the extended scheme).
        for kind in UseKind::ALL {
            if entry.rel[kind.index()] {
                let (arch, phys) = entry
                    .operand_phys(kind)
                    .expect("early-release bit set for a missing operand");
                self.free_register(arch.class(), phys, cycle, ReleaseReason::EarlyAtLuCommit);
                released.push(ReleaseEvent {
                    class: arch.class(),
                    phys,
                    reason: ReleaseReason::EarlyAtLuCommit,
                });
            }
        }

        // Conventional release of the previous version.
        if entry.rel_old {
            if let Some(d) = entry.dst {
                if !d.reused && d.prev != d.phys {
                    self.free_register(d.arch.class(), d.prev, cycle, ReleaseReason::Conventional);
                    released.push(ReleaseEvent {
                        class: d.arch.class(),
                        phys: d.prev,
                        reason: ReleaseReason::Conventional,
                    });
                }
            }
        }

        self.commit_outcome.released = released;
        &self.commit_outcome
    }

    // ------------------------------------------------------------------
    // Branch resolution
    // ------------------------------------------------------------------

    /// The prediction of branch `id` was verified correct.  Returns the
    /// branch-confirm releases (extended mechanism, Step 6); the slice
    /// borrows a buffer reused by the next resolution.
    pub fn resolve_branch_correct(&mut self, id: InstrId, cycle: u64) -> &[ReleaseEvent] {
        let pos = self
            .checkpoints
            .iter()
            .position(|c| c.branch_id == id)
            .unwrap_or_else(|| panic!("branch {id} has no checkpoint to confirm"));
        // Branches can confirm out of order; only removing the *oldest*
        // checkpoint unpins a journal prefix.
        self.checkpoints.remove(pos);
        if pos == 0 {
            self.compact_journal();
        }

        let mut released = std::mem::take(&mut self.resolve_released);
        released.clear();
        let mut release_now = std::mem::take(&mut self.confirm_release_now);
        let mut to_rwc0 = std::mem::take(&mut self.confirm_to_rwc0);
        release_now.clear();
        to_rwc0.clear();
        self.scheme
            .on_branch_correct(id, &mut release_now, &mut to_rwc0);
        for &(class, phys) in &release_now {
            self.free_register(class, phys, cycle, ReleaseReason::BranchConfirm);
            released.push(ReleaseEvent {
                class,
                phys,
                reason: ReleaseReason::BranchConfirm,
            });
        }
        for &(lu, mask) in &to_rwc0 {
            let entry = self
                .book
                .get_mut(lu)
                .expect("an RwC mark always references an in-flight last use");
            for kind in UseKind::ALL {
                if mask & kind.mask() != 0 {
                    entry.rel[kind.index()] = true;
                }
            }
        }
        self.confirm_release_now = release_now;
        self.confirm_to_rwc0 = to_rwc0;
        self.resolve_released = released;
        &self.resolve_released
    }

    /// The prediction of branch `id` was wrong: squash every younger
    /// instruction and restore the speculative rename state from the branch's
    /// checkpoint.  The returned outcome borrows a buffer reused by the next
    /// recovery.
    pub fn recover_branch_mispredict(&mut self, id: InstrId, cycle: u64) -> &RecoveryOutcome {
        self.trace(|| format!("cycle {cycle} MISPREDICT {id}"));
        let mut squashed = std::mem::take(&mut self.squash_scratch);
        self.book.squash_after_into(id, false, &mut squashed);
        let mut freed = std::mem::take(&mut self.recovery.freed);
        freed.clear();
        for entry in &squashed {
            if let Some(d) = entry.dst {
                if !d.reused {
                    self.free_register(
                        d.arch.class(),
                        d.phys,
                        cycle,
                        ReleaseReason::SquashMispredict,
                    );
                    freed.push(ReleaseEvent {
                        class: d.arch.class(),
                        phys: d.phys,
                        reason: ReleaseReason::SquashMispredict,
                    });
                }
            }
        }
        self.scheme.on_squash(&squashed);

        let pos = self
            .checkpoints
            .iter()
            .position(|c| c.branch_id == id)
            .unwrap_or_else(|| panic!("mispredicted branch {id} has no checkpoint"));
        // Checkpoints of squashed (younger) branches disappear; the
        // mispredicted branch's own checkpoint is consumed by the recovery.
        self.checkpoints.truncate(pos + 1);
        let cp = self.checkpoints.pop_back().expect("checkpoint exists");
        // Undo the journal suffix recorded at or after the branch's mark, in
        // reverse: map redirects roll back to the old version, consumed
        // stale-mapping flags are re-armed.  Commit-time release records
        // restore nothing — the commits themselves are not speculative — and
        // for the same reason they must *survive* the rollback: older
        // checkpoints still need to know the release happened, so they are
        // re-appended at the new journal end (which every surviving
        // checkpoint's mark is at or below).
        let mut surviving_patches: Vec<JournalEntry> = Vec::new();
        while self.journal_end() > cp.mark {
            let entry = self.journal.pop().expect("journal reaches every mark");
            match entry {
                JournalEntry::Map { reg, old } => {
                    self.banks[reg.class().index()].maps.front.set(reg, old);
                }
                JournalEntry::SkipConsumed { reg } => {
                    self.banks[reg.class().index()].skip_release[reg.index()] = true;
                }
                JournalEntry::PatchRelease { .. } => surviving_patches.push(entry),
            }
        }
        if !self.checkpoints.is_empty() {
            self.journal.extend(surviving_patches.into_iter().rev());
        }
        self.compact_journal();
        // Coherence scan: re-derive the stale-mapping flags the eager
        // checkpoint copies used to carry.  Any restored map entry naming a
        // register now on the free list is stale — either it was released
        // under the branch (journal records the release) or its flag had
        // been consumed on the wrong path.  A register released early and
        // *reallocated* cannot appear here unflagged: the reallocating
        // instruction is younger than the branch and was just squash-freed,
        // so the register is back on the free list.
        for class in RegClass::ALL {
            let bank = &mut self.banks[class.index()];
            let (free, maps, skip_release) = (&bank.free, &bank.maps, &mut bank.skip_release);
            for (reg, phys) in maps.front.iter() {
                if free.contains(phys) {
                    skip_release[reg.index()] = true;
                }
            }
        }

        self.scheme.on_branch_mispredict(id);
        #[cfg(debug_assertions)]
        self.debug_assert_front_map_coherent("branch-mispredict recovery");

        self.recovery.squashed = squashed.len();
        self.squash_scratch = squashed;
        self.recovery.freed = freed;
        &self.recovery
    }

    // ------------------------------------------------------------------
    // Exception recovery
    // ------------------------------------------------------------------

    /// Precise-exception recovery: every in-flight instruction (including the
    /// faulting one, which has not committed) is squashed and the speculative
    /// map is restored from the In-Order Map Table.  The returned outcome
    /// borrows a buffer reused by the next recovery.
    pub fn recover_exception(&mut self, cycle: u64) -> &RecoveryOutcome {
        let mut squashed = std::mem::take(&mut self.squash_scratch);
        self.book.drain_all_into(&mut squashed);
        let mut freed = std::mem::take(&mut self.recovery.freed);
        freed.clear();
        for entry in &squashed {
            if let Some(d) = entry.dst {
                if !d.reused {
                    self.free_register(
                        d.arch.class(),
                        d.phys,
                        cycle,
                        ReleaseReason::SquashException,
                    );
                    freed.push(ReleaseEvent {
                        class: d.arch.class(),
                        phys: d.phys,
                        reason: ReleaseReason::SquashException,
                    });
                }
            }
        }
        self.checkpoints.clear();
        self.compact_journal();
        self.scheme.on_exception();
        for class in RegClass::ALL {
            let bank = &mut self.banks[class.index()];
            bank.maps.recover_from_retire();
            // Logical registers whose architectural version was freed early
            // now have a stale mapping (paper Section 4.3): their next
            // redefinition must not release or reuse it.
            for r in 0..class.num_logical() {
                bank.skip_release[r] = bank.arch_released[r];
            }
        }
        #[cfg(debug_assertions)]
        self.debug_assert_front_map_coherent("precise-exception recovery");
        self.recovery.squashed = squashed.len();
        self.squash_scratch = squashed;
        self.recovery.freed = freed;
        &self.recovery
    }

    // ------------------------------------------------------------------
    // Inspection probes (conformance harness / tests / debugging)
    // ------------------------------------------------------------------
    //
    // Pull-based: each probe only costs anything when called, so shipping
    // them in release builds is free for the simulator hot loop.  The
    // *push*-based hook assertions (commit-time operand liveness, post-
    // recovery map coherence) are `debug_assertions`-gated below and vanish
    // entirely from release builds.

    /// True when `phys` is currently on the free list of `class`.
    pub fn free_list_contains(&self, class: RegClass, phys: PhysReg) -> bool {
        self.bank(class).free.contains(phys)
    }

    /// The in-flight (renamed, not yet committed or squashed) entries,
    /// oldest first — every operand/destination physical register the
    /// rename-side book still references.
    pub fn in_flight_entries(&self) -> impl Iterator<Item = &RosEntry> + '_ {
        self.book.iter()
    }

    /// Ids of the branches with a live engine checkpoint, oldest first.
    pub fn checkpointed_branches(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.checkpoints.iter().map(|c| c.branch_id)
    }

    /// True when the current speculative mapping of `reg` is stale (already
    /// released) and must not be released or reused by its next redefinition.
    pub fn skip_release_flagged(&self, reg: ArchReg) -> bool {
        self.bank(reg.class()).skip_release[reg.index()]
    }

    /// Checkpoint-coherence probe: every *checkpointed* map entry that names
    /// a register currently on the free list must carry that checkpoint's
    /// stale-mapping flag or a journal record explaining the release —
    /// otherwise a misprediction rollback to it would resurrect a released
    /// register as a live mapping.  This extends the front-map check in
    /// [`RenameUnit::check_invariants`] to the whole checkpoint stack.
    ///
    /// Checkpoints are journal marks, so the probe reconstructs each
    /// checkpoint's map/flag state by replaying the undo journal backwards
    /// from the current state (pull-based: the reconstruction only costs
    /// anything when the probe is called).  A `PatchRelease` record seen
    /// while walking towards a checkpoint's mark proves every checkpoint at
    /// or before that position legitimately names the freed register — the
    /// rollback coherence scan will re-flag it.
    pub fn check_checkpoint_coherence(&self) -> Result<(), String> {
        // Structural validity of the journal/checkpoint relationship.
        if !self.journal.is_empty() && self.checkpoints.is_empty() {
            return Err(format!(
                "journal holds {} entries with no live checkpoint",
                self.journal.len()
            ));
        }
        let end = self.journal_end();
        let mut prev = self.journal_base;
        for cp in &self.checkpoints {
            if cp.mark < prev || cp.mark > end {
                return Err(format!(
                    "checkpoint of branch {}: mark {} outside journal window [{prev}, {end}]",
                    cp.branch_id, cp.mark
                ));
            }
            prev = cp.mark;
        }
        if self.checkpoints.is_empty() {
            return Ok(());
        }

        // Reconstruct checkpoint states youngest-first by undoing the
        // journal, collecting the commit-time releases performed while each
        // checkpoint was live.
        let mut maps: [Vec<PhysReg>; 2] = [
            self.banks[0].maps.front.mapped_physical().collect(),
            self.banks[1].maps.front.mapped_physical().collect(),
        ];
        let mut skips: [Vec<bool>; 2] = [
            self.banks[0].skip_release.clone(),
            self.banks[1].skip_release.clone(),
        ];
        let mut patched: [Vec<PhysReg>; 2] = [Vec::new(), Vec::new()];
        let mut pos = end;
        for cp in self.checkpoints.iter().rev() {
            while pos > cp.mark {
                pos -= 1;
                match self.journal[(pos - self.journal_base) as usize] {
                    JournalEntry::Map { reg, old } => {
                        maps[reg.class().index()][reg.index()] = old;
                    }
                    JournalEntry::SkipConsumed { reg } => {
                        skips[reg.class().index()][reg.index()] = true;
                    }
                    JournalEntry::PatchRelease { class, phys } => {
                        patched[class.index()].push(phys);
                    }
                }
            }
            for class in RegClass::ALL {
                let free = &self.bank(class).free;
                for (i, &phys) in maps[class.index()].iter().enumerate() {
                    if free.contains(phys)
                        && !skips[class.index()][i]
                        && !patched[class.index()].contains(&phys)
                    {
                        return Err(format!(
                            "checkpoint of branch {}: map of {} points to free register \
                             {phys} without a stale-mapping flag",
                            cp.branch_id,
                            ArchReg::new(class, i)
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Debug-build hook assertion: the speculative map must be coherent with
    /// the free list right after a recovery restored it.  Compiled out of
    /// release builds.
    #[cfg(debug_assertions)]
    fn debug_assert_front_map_coherent(&self, context: &str) {
        for class in RegClass::ALL {
            let bank = self.bank(class);
            for (reg, phys) in bank.maps.front.iter() {
                debug_assert!(
                    !bank.free.contains(phys) || bank.skip_release[reg.index()],
                    "{context}: restored map of {reg} names free register {phys} \
                     without a stale-mapping flag"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests / debugging)
    // ------------------------------------------------------------------

    /// Check internal consistency; returns a description of the first
    /// violated invariant, if any.  Used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for class in RegClass::ALL {
            let bank = self.bank(class);
            let cap = self.config.phys_regs(class);
            if bank.free.free_count() + bank.occupancy.allocated_now() != cap {
                return Err(format!(
                    "{class}: free ({}) + allocated ({}) != capacity ({cap})",
                    bank.free.free_count(),
                    bank.occupancy.allocated_now()
                ));
            }
            for (reg, phys) in bank.maps.front.iter() {
                if bank.free.contains(phys) && !bank.skip_release[reg.index()] {
                    return Err(format!(
                        "{class}: speculative map of {reg} points to free register {phys} \
                         without a stale-mapping flag"
                    ));
                }
            }
        }
        let dst_in_flight = self.book.iter().filter(|e| e.dst.is_some()).count();
        self.scheme
            .check_invariants(dst_in_flight, self.checkpoints.len())
    }
}
