//! Fundamental types shared by the renaming/release machinery.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a physical register inside one class' register file.
///
/// The paper calls these `pd`, `p1`, `p2`, `old_pd` (Figure 1 / Figure 5).
/// The identifier alone does not say which class the register belongs to;
/// APIs that need the class take an explicit
/// [`RegClass`](earlyreg_isa::RegClass) alongside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysReg(pub u16);

impl PhysReg {
    /// Index into per-class arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Unique identifier of a dynamic (renamed) instruction.
///
/// The paper uses the ROS address as the instruction identifier; this
/// reproduction uses a monotonically increasing sequence number instead,
/// which is strictly more informative (it never wraps and it encodes program
/// order: `a.0 < b.0` iff `a` is older than `b`).  Identifiers are never
/// reused, even after squashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstrId(pub u64);

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Which operand slot of an instruction uses a register (the `Kind` field of
/// the Last-Uses Table, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UseKind {
    /// First source operand.
    Src1,
    /// Second source operand.
    Src2,
    /// Destination operand (covers the Figure 4.b case where a value is never
    /// read: the defining instruction is its own last "user").
    Dst,
}

impl UseKind {
    /// Dense index (0, 1, 2) used for the three early-release bits
    /// (`rel1`, `rel2`, `reld`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            UseKind::Src1 => 0,
            UseKind::Src2 => 1,
            UseKind::Dst => 2,
        }
    }

    /// Bit mask with only this kind's bit set (used by the Release Queue's
    /// per-entry 3-bit arrays).
    #[inline]
    pub fn mask(self) -> u8 {
        1 << self.index()
    }

    /// All kinds in `rel1`, `rel2`, `reld` order.
    pub const ALL: [UseKind; 3] = [UseKind::Src1, UseKind::Src2, UseKind::Dst];
}

/// A register release scheme, identified by its slot in the policy
/// [registry](crate::registry).
///
/// This used to be a closed three-variant enum (conventional / basic /
/// extended); it is now an opaque handle into the registry so that new
/// schemes plug in without touching the engine, the experiment harness or
/// the serving layer.  The canonical paper schemes remain available as the
/// associated constants [`ReleasePolicy::Conventional`],
/// [`ReleasePolicy::Basic`] and [`ReleasePolicy::Extended`]; the full set is
/// enumerated by [`crate::registry::registered`].
///
/// `Ord` follows registry order — the paper's three schemes first, in the
/// order the figures plot them — and gives experiment sweeps a deterministic
/// point ordering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReleasePolicy(pub(crate) u8);

#[allow(non_upper_case_globals)] // these consts replace former enum variants
impl ReleasePolicy {
    /// Conventional release: the previous version (`old_pd`) is released when
    /// the redefining (next-version) instruction commits (paper Section 2).
    pub const Conventional: ReleasePolicy = ReleasePolicy(0);
    /// The *basic* early-release mechanism (paper Section 3): a Last-Uses
    /// Table pairs every redefinition with the last use of the previous
    /// version; when no unverified branch lies between the two, the release
    /// is retimed to the last use's commit (or performed immediately if the
    /// last use has already committed).
    pub const Basic: ReleasePolicy = ReleasePolicy(1);
    /// The *extended* mechanism (paper Section 4): redefinitions decoded
    /// under unresolved branches schedule *conditional* releases in a Release
    /// Queue, which are cancelled on misprediction and performed at last-use
    /// commit / oldest-branch confirmation otherwise.  The conventional
    /// `old_pd`/`rel_old` path is removed entirely.
    pub const Extended: ReleasePolicy = ReleasePolicy(2);
    /// Oracle upper bound: every physical register is released at the commit
    /// of its true last use, known ahead of time from the architectural
    /// emulator — the ideal-release curve the paper motivates against.
    pub const Oracle: ReleasePolicy = ReleasePolicy(3);
    /// Conservative counter-based release (no Last-Uses CAM, no per-branch
    /// scheme checkpoints): per-register in-flight-reader counters allow an
    /// immediate release/reuse at redefinition decode when the previous
    /// version is settled; everything else falls back to conventional.
    pub const Counter: ReleasePolicy = ReleasePolicy(4);

    /// Registry slot of this policy.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The registry descriptor of this policy.
    pub fn descriptor(self) -> &'static crate::registry::PolicyDescriptor {
        &crate::registry::descriptors()[self.index()]
    }

    /// Stable id used in reports, cache keys, scenario files and the JSON
    /// API ("conv", "basic", "extended", "oracle", "counter").
    pub fn label(self) -> &'static str {
        self.descriptor().id
    }

    /// Parse a policy name against the registry, case-insensitively,
    /// accepting ids and aliases — the one parser behind every user-facing
    /// surface (`run_workload --policy`, `Scenario` files, the
    /// `earlyreg-serve` JSON API), so the accepted spellings cannot drift.
    /// Unknown names fail with a message enumerating the registered ids.
    pub fn parse(name: &str) -> Result<Self, String> {
        crate::registry::parse(name)
    }
}

impl fmt::Debug for ReleasePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl fmt::Display for ReleasePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// The policy serializes as its registry id string, so cache keys and JSON
// payloads stay stable when new schemes are registered: new ids extend the
// keyspace without perturbing existing keys, no CACHE_VERSION bump needed.
// (The one-time switch from enum variant names to ids was itself a key
// schema change, covered by the CACHE_VERSION 3 bump in the experiments
// crate.)
impl Serialize for ReleasePolicy {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Str(self.label().to_string())
    }
}

impl<'de> Deserialize<'de> for ReleasePolicy {
    fn from_value(value: &serde::value::Value) -> Result<Self, serde::value::Error> {
        let name = value
            .as_str()
            .ok_or_else(|| serde::value::Error::msg("release policy must be a string id"))?;
        ReleasePolicy::parse(name).map_err(serde::value::Error::msg)
    }
}

/// Configuration of the rename/release engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenameConfig {
    /// Release policy.
    pub policy: ReleasePolicy,
    /// Physical registers in the integer file (the paper sweeps 40–160).
    pub phys_int: usize,
    /// Physical registers in the FP file.
    pub phys_fp: usize,
    /// Maximum branches pending verification (Table 2: 20); also the depth of
    /// the checkpoint stack and of the Release Queue.
    pub max_pending_branches: usize,
    /// Reorder-structure size (Table 2: 128); used for sanity checks only.
    pub ros_size: usize,
    /// Apply the "register reuse" optimisation of Section 3.2: when the last
    /// use of the previous version has already committed, keep the mapping
    /// and reuse the same physical register for the new version instead of
    /// releasing it and allocating a fresh one.
    pub reuse_on_committed_lu: bool,
}

impl RenameConfig {
    /// The aggressive 8-way configuration of the paper's Table 2 with the
    /// given per-class physical register file sizes.
    pub fn icpp02(policy: ReleasePolicy, phys_int: usize, phys_fp: usize) -> Self {
        RenameConfig {
            policy,
            phys_int,
            phys_fp,
            max_pending_branches: 20,
            ros_size: 128,
            reuse_on_committed_lu: true,
        }
    }

    /// Physical register count for a class.
    pub fn phys_regs(&self, class: earlyreg_isa::RegClass) -> usize {
        match class {
            earlyreg_isa::RegClass::Int => self.phys_int,
            earlyreg_isa::RegClass::Fp => self.phys_fp,
        }
    }

    /// Validate the configuration (enough physical registers to hold the
    /// architectural state plus at least one rename buffer, sane sizes).
    pub fn validate(&self) -> Result<(), String> {
        for class in earlyreg_isa::RegClass::ALL {
            let p = self.phys_regs(class);
            let l = class.num_logical();
            if p < l + 1 {
                return Err(format!(
                    "{class} register file has {p} physical registers but at least {} are needed \
                     (32 architectural + 1 rename buffer)",
                    l + 1
                ));
            }
            if p > u16::MAX as usize {
                return Err(format!(
                    "{class} register file size {p} exceeds the PhysReg range"
                ));
            }
        }
        if self.max_pending_branches == 0 {
            return Err("max_pending_branches must be at least 1".into());
        }
        if self.ros_size == 0 {
            return Err("ros_size must be at least 1".into());
        }
        Ok(())
    }

    /// Whether the file of `class` is *loose* in the paper's sense
    /// (`P >= L + N`, Section 2): the processor can never stall for lack of
    /// physical registers.
    pub fn is_loose(&self, class: earlyreg_isa::RegClass) -> bool {
        self.phys_regs(class) >= class.num_logical() + self.ros_size
    }
}

/// Why `RenameUnit::rename` could not accept an instruction this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RenameStall {
    /// No free physical register in the required class (the "tight register
    /// file" stall the paper's evaluation revolves around).
    NoFreePhysReg(earlyreg_isa::RegClass),
    /// The checkpoint stack / Release Queue is full (too many unverified
    /// branches in flight).
    TooManyPendingBranches,
}

impl fmt::Display for RenameStall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenameStall::NoFreePhysReg(c) => write!(f, "no free {c} physical register"),
            RenameStall::TooManyPendingBranches => write!(f, "too many pending branches"),
        }
    }
}

/// Why a physical register was returned to the free list (used by the
/// release-accounting statistics and by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReleaseReason {
    /// Conventional release: previous version freed at the commit of the
    /// redefining instruction.
    Conventional,
    /// Early release at the commit of the last-use instruction (rel1/rel2/reld
    /// bits, or RwC0 in the extended mechanism).
    EarlyAtLuCommit,
    /// Immediate release at decode of the redefining instruction (last use
    /// already committed, no pending branches).
    ImmediateAtDecode,
    /// The previous version was *reused* as the new version's physical
    /// register (Section 3.2 optimisation) — not an actual free-list push,
    /// but accounted as the end of the old version's lifetime.
    Reused,
    /// Conditional release performed when the oldest pending branch was
    /// confirmed (RwNS1, extended mechanism Step 6).
    BranchConfirm,
    /// Register allocated by a squashed (wrong-path) instruction, returned on
    /// branch misprediction recovery.
    SquashMispredict,
    /// Register allocated by a squashed instruction, returned on exception
    /// recovery.
    SquashException,
}

impl ReleaseReason {
    /// True for the reasons that correspond to an *early* release of a
    /// committed (architectural) register version.
    pub fn is_early(self) -> bool {
        matches!(
            self,
            ReleaseReason::EarlyAtLuCommit
                | ReleaseReason::ImmediateAtDecode
                | ReleaseReason::Reused
                | ReleaseReason::BranchConfirm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::RegClass;

    #[test]
    fn phys_reg_display_and_index() {
        let p = PhysReg(17);
        assert_eq!(p.index(), 17);
        assert_eq!(p.to_string(), "p17");
    }

    #[test]
    fn instr_id_orders_by_program_order() {
        assert!(InstrId(3) < InstrId(10));
        assert_eq!(InstrId(3).to_string(), "#3");
    }

    #[test]
    fn use_kind_indices_and_masks() {
        assert_eq!(UseKind::Src1.index(), 0);
        assert_eq!(UseKind::Src2.index(), 1);
        assert_eq!(UseKind::Dst.index(), 2);
        assert_eq!(UseKind::Src1.mask(), 0b001);
        assert_eq!(UseKind::Dst.mask(), 0b100);
    }

    #[test]
    fn policy_labels_and_ordering() {
        assert_eq!(ReleasePolicy::Conventional.label(), "conv");
        assert_eq!(ReleasePolicy::Basic.label(), "basic");
        assert_eq!(ReleasePolicy::Extended.label(), "extended");
        assert_eq!(ReleasePolicy::Oracle.label(), "oracle");
        assert_eq!(ReleasePolicy::Counter.label(), "counter");
        // Registry order keeps the paper's plot order for the paper three.
        assert!(ReleasePolicy::Conventional < ReleasePolicy::Basic);
        assert!(ReleasePolicy::Basic < ReleasePolicy::Extended);
        assert!(ReleasePolicy::Extended < ReleasePolicy::Oracle);
    }

    #[test]
    fn policy_serializes_as_its_id() {
        use serde::Serialize as _;
        let v = ReleasePolicy::Oracle.to_value();
        assert_eq!(v.as_str(), Some("oracle"));
        let back: ReleasePolicy = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, ReleasePolicy::Oracle);
        let bad: Result<ReleasePolicy, _> =
            serde::Deserialize::from_value(&serde::value::Value::Str("bogus".to_string()));
        assert!(bad.is_err());
    }

    #[test]
    fn config_validation() {
        let ok = RenameConfig::icpp02(ReleasePolicy::Extended, 48, 48);
        assert!(ok.validate().is_ok());
        let too_small = RenameConfig::icpp02(ReleasePolicy::Extended, 32, 48);
        assert!(too_small.validate().is_err());
        let mut bad = ok;
        bad.max_pending_branches = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn loose_vs_tight() {
        let cfg = RenameConfig::icpp02(ReleasePolicy::Conventional, 96, 160);
        assert!(!cfg.is_loose(RegClass::Int)); // 96 < 32 + 128
        assert!(cfg.is_loose(RegClass::Fp)); // 160 >= 32 + 128
    }

    #[test]
    fn release_reason_classification() {
        assert!(ReleaseReason::EarlyAtLuCommit.is_early());
        assert!(ReleaseReason::Reused.is_early());
        assert!(!ReleaseReason::Conventional.is_early());
        assert!(!ReleaseReason::SquashMispredict.is_early());
    }

    #[test]
    fn icpp02_defaults_match_table2() {
        let cfg = RenameConfig::icpp02(ReleasePolicy::Basic, 64, 64);
        assert_eq!(cfg.max_pending_branches, 20);
        assert_eq!(cfg.ros_size, 128);
        assert!(cfg.reuse_on_committed_lu);
        assert_eq!(cfg.phys_regs(RegClass::Int), 64);
        assert_eq!(cfg.phys_regs(RegClass::Fp), 64);
    }
}
