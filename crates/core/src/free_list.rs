//! Free list of physical registers.
//!
//! One free list exists per register class (Figure 1).  The list hands out
//! destination physical registers at rename and receives released registers
//! at commit / early release / squash recovery.  In debug builds the list
//! tracks membership so that a double release or an allocation of a non-free
//! register — both symptoms of a release-policy bug — panic immediately.

use crate::types::PhysReg;

/// A LIFO free list with membership checking.
#[derive(Debug, Clone)]
pub struct FreeList {
    stack: Vec<PhysReg>,
    /// `in_list[p]` is true iff `p` is currently free.
    in_list: Vec<bool>,
    capacity: usize,
}

impl FreeList {
    /// Create a free list for a file of `total` physical registers where the
    /// first `initially_allocated` registers (the initial architectural
    /// mappings) start out allocated and the rest start out free.
    pub fn new(total: usize, initially_allocated: usize) -> Self {
        assert!(
            initially_allocated <= total,
            "cannot pre-allocate {initially_allocated} registers out of {total}"
        );
        let mut in_list = vec![false; total];
        // Push in reverse so that allocation order is ascending, which makes
        // unit tests and debug dumps easier to read.
        let mut stack = Vec::with_capacity(total);
        for idx in (initially_allocated..total).rev() {
            stack.push(PhysReg(idx as u16));
            in_list[idx] = true;
        }
        FreeList {
            stack,
            in_list,
            capacity: total,
        }
    }

    /// Total number of physical registers in the file.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of registers currently free.
    #[inline]
    pub fn free_count(&self) -> usize {
        self.stack.len()
    }

    /// Number of registers currently allocated.
    #[inline]
    pub fn allocated_count(&self) -> usize {
        self.capacity - self.stack.len()
    }

    /// True if no register is free.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// True if `p` is currently on the free list.
    #[inline]
    pub fn contains(&self, p: PhysReg) -> bool {
        self.in_list[p.index()]
    }

    /// Allocate a register, or `None` if the list is empty (a rename stall).
    pub fn allocate(&mut self) -> Option<PhysReg> {
        let p = self.stack.pop()?;
        debug_assert!(
            self.in_list[p.index()],
            "free list corrupted: popped a non-free register"
        );
        self.in_list[p.index()] = false;
        Some(p)
    }

    /// Return a register to the free list.
    ///
    /// # Panics
    /// Panics if `p` is already free (double release) or out of range.
    pub fn release(&mut self, p: PhysReg) {
        assert!(
            p.index() < self.capacity,
            "released register {p} is out of range (capacity {})",
            self.capacity
        );
        assert!(
            !self.in_list[p.index()],
            "double release of physical register {p}"
        );
        self.in_list[p.index()] = true;
        self.stack.push(p);
    }

    /// Iterate over the currently free registers (order unspecified).
    pub fn iter_free(&self) -> impl Iterator<Item = PhysReg> + '_ {
        self.stack.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_partition() {
        let fl = FreeList::new(48, 32);
        assert_eq!(fl.capacity(), 48);
        assert_eq!(fl.free_count(), 16);
        assert_eq!(fl.allocated_count(), 32);
        assert!(!fl.contains(PhysReg(0)));
        assert!(!fl.contains(PhysReg(31)));
        assert!(fl.contains(PhysReg(32)));
        assert!(fl.contains(PhysReg(47)));
    }

    #[test]
    fn allocation_order_is_ascending() {
        let mut fl = FreeList::new(40, 32);
        let a = fl.allocate().unwrap();
        let b = fl.allocate().unwrap();
        assert_eq!(a, PhysReg(32));
        assert_eq!(b, PhysReg(33));
    }

    #[test]
    fn allocate_until_empty_then_stall() {
        let mut fl = FreeList::new(36, 32);
        for _ in 0..4 {
            assert!(fl.allocate().is_some());
        }
        assert!(fl.is_empty());
        assert_eq!(fl.allocate(), None);
    }

    #[test]
    fn release_makes_register_reallocatable() {
        let mut fl = FreeList::new(33, 32);
        let p = fl.allocate().unwrap();
        assert!(fl.is_empty());
        fl.release(p);
        assert_eq!(fl.free_count(), 1);
        assert_eq!(fl.allocate(), Some(p));
    }

    #[test]
    fn release_of_initially_allocated_register_works() {
        let mut fl = FreeList::new(40, 32);
        fl.release(PhysReg(5));
        assert!(fl.contains(PhysReg(5)));
        assert_eq!(fl.free_count(), 9);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut fl = FreeList::new(40, 32);
        fl.release(PhysReg(5));
        fl.release(PhysReg(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_release_panics() {
        let mut fl = FreeList::new(40, 32);
        fl.release(PhysReg(100));
    }

    #[test]
    #[should_panic]
    fn over_preallocation_panics() {
        let _ = FreeList::new(10, 20);
    }

    #[test]
    fn iter_free_matches_count() {
        let mut fl = FreeList::new(40, 32);
        let _ = fl.allocate();
        assert_eq!(fl.iter_free().count(), fl.free_count());
        assert!(fl.iter_free().all(|p| fl.contains(p)));
    }
}
