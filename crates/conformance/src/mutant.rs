//! Deliberately-broken release schemes.
//!
//! A conformance suite that has never caught anything proves nothing.  The
//! mutants here are injected through [`SchemeSeed::scheme_override`] — they
//! are *not* registry entries, so experiments, caches and serving never see
//! them — and the test suite asserts the harness catches them and that the
//! minimizer shrinks the failure to a small reproducer.
//!
//! [`SchemeSeed::scheme_override`]: earlyreg_core::SchemeSeed

use earlyreg_core::{DestPlan, DestQuery, ReleasePolicy, ReleaseScheme};

/// The canonical unsafe scheme: release the previous version of every
/// redefined register **at rename time** ([`DestPlan::ReleaseNow`]),
/// unconditionally.  This is exactly the naive "the redefinition makes the
/// old version dead" argument the paper spends Section 3 dismantling — it
/// ignores both in-flight consumers (readers of the old version that have
/// not issued yet) and speculation (a squashed redefinition resurrects the
/// old version, whose register has already been handed out).
///
/// The harness catches it through several independent channels, whichever
/// trips first for a given program: the engine's post-recovery invariant
/// check (a restored map names a freed register with no stale flag), a
/// free-list double-release panic, a committed-value divergence from the
/// emulator, or the commit-time oracle check.
#[derive(Debug, Clone, Default)]
pub struct ReleaseAtRenameMutant;

impl ReleaseScheme for ReleaseAtRenameMutant {
    fn policy(&self) -> ReleasePolicy {
        // Reported id only; this scheme never lives in the registry.
        ReleasePolicy::Conventional
    }

    fn box_clone(&self) -> Box<dyn ReleaseScheme> {
        Box::new(self.clone())
    }

    fn plan_dest(&self, _query: &DestQuery) -> DestPlan {
        DestPlan::ReleaseNow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_core::{InstrId, PhysReg};
    use earlyreg_isa::ArchReg;

    #[test]
    fn mutant_always_releases_at_rename() {
        let mutant = ReleaseAtRenameMutant;
        let query = DestQuery {
            dst: ArchReg::int(5),
            old_pd: PhysReg(7),
            own_use: None,
            pending_branches: 3,
            newest_branch: Some(InstrId(9)),
            reuse_on_committed_lu: false,
            old_is_settled_arch: false,
        };
        assert_eq!(mutant.plan_dest(&query), DestPlan::ReleaseNow);
    }
}
