//! Deliberately-broken release schemes.
//!
//! A conformance suite that has never caught anything proves nothing.  The
//! mutants here are injected through [`SchemeSeed::scheme_override`] — they
//! are *not* registry entries, so experiments, caches and serving never see
//! them — and the test suite asserts the harness catches them and that the
//! minimizer shrinks the failure to a small reproducer.
//!
//! [`SchemeSeed::scheme_override`]: earlyreg_core::SchemeSeed

use earlyreg_core::{DestPlan, DestQuery, ReleasePolicy, ReleaseScheme};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The canonical unsafe scheme: release the previous version of every
/// redefined register **at rename time** ([`DestPlan::ReleaseNow`]),
/// unconditionally.  This is exactly the naive "the redefinition makes the
/// old version dead" argument the paper spends Section 3 dismantling — it
/// ignores both in-flight consumers (readers of the old version that have
/// not issued yet) and speculation (a squashed redefinition resurrects the
/// old version, whose register has already been handed out).
///
/// The harness catches it through several independent channels, whichever
/// trips first for a given program: the engine's post-recovery invariant
/// check (a restored map names a freed register with no stale flag), a
/// free-list double-release panic, a committed-value divergence from the
/// emulator, or the commit-time oracle check.
#[derive(Debug, Clone, Default)]
pub struct ReleaseAtRenameMutant;

impl ReleaseScheme for ReleaseAtRenameMutant {
    fn policy(&self) -> ReleasePolicy {
        // Reported id only; this scheme never lives in the registry.
        ReleasePolicy::Conventional
    }

    fn box_clone(&self) -> Box<dyn ReleaseScheme> {
        Box::new(self.clone())
    }

    fn plan_dest(&self, _query: &DestQuery) -> DestPlan {
        DestPlan::ReleaseNow
    }
}

/// A **lane cross-contamination** mutant: every clone of this scheme shares
/// one cell recording which instance most recently planned a destination.
/// An instance that observes another instance's calls interleaved with its
/// own — which only happens when two lanes holding sibling clones are
/// stepped concurrently, as the lane engine does — permanently degrades into
/// the unsafe release-at-rename behaviour of [`ReleaseAtRenameMutant`].
///
/// Run sequentially (each lane to completion before the next starts), the
/// shared cell is only ever handed from a finished instance to a starting
/// one, no interleaving is observed, and the scheme stays a conformant
/// conventional scheme.  Lane-stepped, the first round boundary that resumes
/// a different lane poisons it, so the lane-stepped harness **must** report
/// a violation through its existing checks — proving it detects state that
/// leaks between lanes, not just per-lane bugs.
#[derive(Debug)]
pub struct CrossLaneReleaseMutant {
    /// Instance that most recently planned a destination (0 = nobody yet).
    shared_last: Arc<AtomicU64>,
    /// Instance-id allocator shared by the whole clone family.
    next_id: Arc<AtomicU64>,
    /// This instance's id.
    id: u64,
    /// Destinations this instance has planned.
    calls: AtomicU64,
    /// Sticky: this instance observed interleaving and went rogue.
    poisoned: AtomicBool,
}

impl CrossLaneReleaseMutant {
    /// A fresh clone family: the returned template is instance 1.
    pub fn new() -> Self {
        CrossLaneReleaseMutant {
            shared_last: Arc::new(AtomicU64::new(0)),
            next_id: Arc::new(AtomicU64::new(2)),
            id: 1,
            calls: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        }
    }
}

impl Default for CrossLaneReleaseMutant {
    fn default() -> Self {
        Self::new()
    }
}

impl ReleaseScheme for CrossLaneReleaseMutant {
    fn policy(&self) -> ReleasePolicy {
        // Reported id only; this scheme never lives in the registry.
        ReleasePolicy::Conventional
    }

    fn box_clone(&self) -> Box<dyn ReleaseScheme> {
        Box::new(CrossLaneReleaseMutant {
            shared_last: Arc::clone(&self.shared_last),
            next_id: Arc::clone(&self.next_id),
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            calls: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
        })
    }

    fn plan_dest(&self, _query: &DestQuery) -> DestPlan {
        let prev = self.shared_last.swap(self.id, Ordering::Relaxed);
        let called_before = self.calls.fetch_add(1, Ordering::Relaxed) > 0;
        if called_before && prev != self.id && prev != 0 {
            self.poisoned.store(true, Ordering::Relaxed);
        }
        if self.poisoned.load(Ordering::Relaxed) {
            DestPlan::ReleaseNow
        } else {
            DestPlan::ReleaseAtCommit { fallback: false }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_core::{InstrId, PhysReg};
    use earlyreg_isa::ArchReg;

    fn sample_query() -> DestQuery {
        DestQuery {
            dst: ArchReg::int(5),
            old_pd: PhysReg(7),
            own_use: None,
            pending_branches: 3,
            newest_branch: Some(InstrId(9)),
            reuse_on_committed_lu: false,
            old_is_settled_arch: false,
        }
    }

    #[test]
    fn cross_lane_mutant_is_safe_until_interleaved() {
        let template = CrossLaneReleaseMutant::new();
        let a = template.box_clone();
        let b = template.box_clone();
        let q = sample_query();

        // Lane A alone: conventional plans throughout.
        for _ in 0..3 {
            assert_eq!(
                a.plan_dest(&q),
                DestPlan::ReleaseAtCommit { fallback: false }
            );
        }
        // Lane B starts after A finished: its first call sees A's residue but
        // has no history of its own — still safe.
        assert_eq!(
            b.plan_dest(&q),
            DestPlan::ReleaseAtCommit { fallback: false }
        );
        // Interleave: A resumes after B planned — A is now contaminated and
        // goes rogue.
        assert_eq!(a.plan_dest(&q), DestPlan::ReleaseNow);
        // ...permanently.
        assert_eq!(a.plan_dest(&q), DestPlan::ReleaseNow);
    }

    #[test]
    fn mutant_always_releases_at_rename() {
        let mutant = ReleaseAtRenameMutant;
        let query = DestQuery {
            dst: ArchReg::int(5),
            old_pd: PhysReg(7),
            own_use: None,
            pending_branches: 3,
            newest_branch: Some(InstrId(9)),
            reuse_on_committed_lu: false,
            old_is_settled_arch: false,
        };
        assert_eq!(mutant.plan_dest(&query), DestPlan::ReleaseNow);
    }
}
