//! Failure minimization (ddmin-lite).
//!
//! Once the harness finds a violating `(HazardConfig, blocks)` pair, the
//! raw reproducer is usually noisy: a dozen hazard blocks, many iterations,
//! most of it irrelevant.  [`minimize`] shrinks it along three axes, each a
//! classic delta-debugging move, re-running the caller's check after every
//! candidate edit:
//!
//! 1. **Iterations** — try 1 first, then binary descent from the current
//!    count.  Most release bugs reproduce in a single loop trip.
//! 2. **Block removal** — ddmin over the block list: try dropping chunks of
//!    size n/2, n/4, ... 1 until no single block can be removed.
//! 3. **Parameter shrinking** — ask each surviving block for smaller
//!    versions of itself ([`HazardBlock::shrunk`]) and keep any that still
//!    fails.
//!
//! "Still fails" means *any* violation, not the identical one: an unsafe
//! scheme often surfaces differently as the program shrinks (a value
//! divergence becomes an invariant failure), and any violation is a valid
//! regression fixture.  The whole search is budget-bounded so minimization
//! of an expensive failure cannot run away.

use crate::generator::{HazardBlock, HazardConfig};
use crate::harness::Violation;

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The shrunk configuration (iterations possibly reduced).
    pub config: HazardConfig,
    /// The shrunk block list.
    pub blocks: Vec<HazardBlock>,
    /// The violation the shrunk reproducer still triggers.
    pub violation: Violation,
    /// Candidate programs tried (accepted + rejected).
    pub attempts: usize,
}

/// Shrink a failing reproducer.  `check` compiles and runs a candidate,
/// returning `Some(violation)` when it still fails; `budget` bounds the
/// total number of candidate runs.  `violation` is the failure observed on
/// the unshrunk input (returned unchanged if nothing smaller still fails).
pub fn minimize(
    config: HazardConfig,
    blocks: Vec<HazardBlock>,
    violation: Violation,
    budget: usize,
    mut check: impl FnMut(&HazardConfig, &[HazardBlock]) -> Option<Violation>,
) -> Minimized {
    let mut best = Minimized {
        config,
        blocks,
        violation,
        attempts: 0,
    };

    fn try_candidate(
        best: &mut Minimized,
        budget: usize,
        check: &mut impl FnMut(&HazardConfig, &[HazardBlock]) -> Option<Violation>,
        config: HazardConfig,
        blocks: Vec<HazardBlock>,
    ) -> bool {
        if best.attempts >= budget {
            return false;
        }
        best.attempts += 1;
        if let Some(v) = check(&config, &blocks) {
            best.config = config;
            best.blocks = blocks;
            best.violation = v;
            true
        } else {
            false
        }
    }

    // Pass 1: iteration count — try 1, then halve toward it.
    if best.config.iterations > 1 {
        let one = HazardConfig {
            iterations: 1,
            ..best.config
        };
        let blocks = best.blocks.clone();
        if !try_candidate(&mut best, budget, &mut check, one, blocks) {
            let mut iters = best.config.iterations / 2;
            while iters > 1 && best.attempts < budget {
                let candidate = HazardConfig {
                    iterations: iters,
                    ..best.config
                };
                let blocks = best.blocks.clone();
                if try_candidate(&mut best, budget, &mut check, candidate, blocks) {
                    iters = best.config.iterations / 2;
                } else {
                    break;
                }
            }
        }
    }

    // Pass 2: ddmin block removal — drop chunks, halving the chunk size
    // every time a full sweep removes nothing.
    let mut chunk = best.blocks.len().div_ceil(2).max(1);
    while best.blocks.len() > 1 && best.attempts < budget {
        let mut removed_any = false;
        let mut start = 0;
        while start < best.blocks.len() && best.attempts < budget {
            let end = (start + chunk).min(best.blocks.len());
            let mut candidate = best.blocks.clone();
            candidate.drain(start..end);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            let config = best.config;
            if try_candidate(&mut best, budget, &mut check, config, candidate) {
                removed_any = true;
                // The list shrank in place; retry the same start index.
            } else {
                start = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        } else {
            chunk = chunk.min(best.blocks.len()).max(1);
        }
    }

    // Pass 3: shrink surviving blocks' parameters to their floors.
    let mut progress = true;
    while progress && best.attempts < budget {
        progress = false;
        for index in 0..best.blocks.len() {
            for smaller in best.blocks[index].shrunk() {
                let mut candidate = best.blocks.clone();
                candidate[index] = smaller;
                let config = best.config;
                if try_candidate(&mut best, budget, &mut check, config, candidate) {
                    progress = true;
                    break;
                }
                if best.attempts >= budget {
                    break;
                }
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic failure: any input containing a `DeadDefs` block with
    /// count >= 2 "fails".  The minimizer must strip everything else.
    fn fake_check(_config: &HazardConfig, blocks: &[HazardBlock]) -> Option<Violation> {
        blocks
            .iter()
            .any(|b| matches!(b, HazardBlock::DeadDefs(n) if *n >= 2))
            .then_some(Violation::OracleViolations(1))
    }

    #[test]
    fn minimizer_isolates_the_failing_block() {
        let config = HazardConfig {
            iterations: 16,
            ..HazardConfig::default()
        };
        let blocks = vec![
            HazardBlock::RotatingDefs(3),
            HazardBlock::BranchStorm(4),
            HazardBlock::DeadDefs(4),
            HazardBlock::AntiDepChain(2, 5),
            HazardBlock::MemTraffic(3, 3),
        ];
        let out = minimize(
            config,
            blocks,
            Violation::OracleViolations(1),
            500,
            fake_check,
        );
        assert_eq!(out.config.iterations, 1);
        assert_eq!(out.blocks, vec![HazardBlock::DeadDefs(2)]);
        assert!(out.attempts <= 500);
    }

    #[test]
    fn minimizer_respects_budget() {
        let config = HazardConfig::default();
        let blocks = vec![HazardBlock::DeadDefs(4); 8];
        let out = minimize(
            config,
            blocks,
            Violation::OracleViolations(1),
            3,
            fake_check,
        );
        assert_eq!(out.attempts, 3);
        assert!(!out.blocks.is_empty());
    }
}
