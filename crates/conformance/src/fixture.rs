//! Regression fixtures: minimized reproducers serialized as JSON.
//!
//! A fixture stores the *recipe* for a failing check — the hazard
//! configuration, the (minimized) block list and the machine knobs — rather
//! than the compiled program: generation is deterministic, so the recipe
//! rebuilds bit-identical programs forever, stays human-readable, and
//! survives ISA encoding changes that would invalidate a raw instruction
//! dump.
//!
//! Checked-in fixtures live under `tests/fixtures/*.json`.  CI replays every
//! one of them against **every registered policy** (not just the policy that
//! originally failed): a fixture is a distilled hazard scenario, and a
//! future scheme must survive all of them.

use crate::generator::{compile, HazardBlock, HazardConfig};
use crate::harness::{check_program, CheckConfig, CheckReport, Violation};
use earlyreg_core::{registry, ReleasePolicy};
use earlyreg_isa::Program;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A serialized reproducer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fixture {
    /// What this fixture reproduces (free text, shown on failure).
    pub description: String,
    /// Registry id of the policy the failure was found under ("conventional",
    /// "oracle", ...).  Replays still cover every registered policy; this
    /// records provenance and picks the policy for [`Fixture::check_origin`].
    pub policy: String,
    /// Integer physical register file size of the failing machine.
    pub phys_int: usize,
    /// FP physical register file size of the failing machine.
    pub phys_fp: usize,
    /// Exception injection interval of the failing machine.
    pub exception_interval: Option<u64>,
    /// Generator knobs (iteration count, working sets, data seed).
    pub config: HazardConfig,
    /// The (minimized) hazard block list; compiled with `config`.
    pub blocks: Vec<HazardBlock>,
}

impl Fixture {
    /// Rebuild the reproducer program.
    pub fn program(&self) -> Arc<Program> {
        Arc::new(compile(&self.config, &self.blocks))
    }

    /// The check configuration for `policy` on this fixture's machine.
    pub fn check_config(&self, policy: ReleasePolicy) -> CheckConfig {
        CheckConfig {
            policy,
            phys_int: self.phys_int,
            phys_fp: self.phys_fp,
            exception_interval: self.exception_interval,
            ..CheckConfig::new(policy)
        }
    }

    /// Re-run the check under the policy the fixture was recorded against.
    /// Fails with the fixture's provenance string when the recorded policy
    /// id is no longer in the registry.
    pub fn check_origin(&self) -> Result<Result<CheckReport, Violation>, String> {
        let policy = registry::parse(&self.policy)
            .map_err(|e| format!("fixture '{}': {e}", self.description))?;
        let program = self.program();
        Ok(check_program(&self.check_config(policy), &program))
    }

    /// Replay against every registered policy; returns per-policy results.
    pub fn replay_all(&self) -> Vec<(ReleasePolicy, Result<CheckReport, Violation>)> {
        let program = self.program();
        registry::registered()
            .map(|policy| (policy, check_program(&self.check_config(policy), &program)))
            .collect()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Fixture, String> {
        serde::json::from_str(text).map_err(|e| format!("invalid fixture JSON: {e}"))
    }

    /// Load one fixture file.
    pub fn load(path: &Path) -> Result<Fixture, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Write the fixture to `path` as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json() + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// Load every `*.json` fixture in `dir`, sorted by file name for
/// deterministic replay order.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Fixture)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read fixture directory {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| Fixture::load(&p).map(|f| (p, f)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fixture {
        Fixture {
            description: "round-trip sample".into(),
            policy: "conventional".into(),
            phys_int: 40,
            phys_fp: 40,
            exception_interval: Some(97),
            config: HazardConfig {
                seed: 12345,
                iterations: 1,
                blocks: 2,
                int_ws: 3,
                fp_ws: 1,
            },
            blocks: vec![
                HazardBlock::BranchShadow(2, 3),
                HazardBlock::AntiDepChain(0, 2),
            ],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let fixture = sample();
        let parsed = Fixture::from_json(&fixture.to_json()).expect("round trip");
        assert_eq!(parsed, fixture);
    }

    #[test]
    fn fixture_programs_are_reproducible() {
        let fixture = sample();
        let a = fixture.program();
        let b = fixture.program();
        assert_eq!(a.instrs.len(), b.instrs.len());
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn unknown_policy_id_is_reported() {
        let mut fixture = sample();
        fixture.policy = "no-such-scheme".into();
        let err = fixture.check_origin().unwrap_err();
        assert!(err.contains("no-such-scheme"), "got: {err}");
    }
}
