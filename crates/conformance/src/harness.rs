//! The differential lockstep checker.
//!
//! One check runs one program through the cycle-level simulator while an
//! architectural [`Emulator`] shadows it: every simulator cycle that commits
//! instructions, the emulator is advanced by exactly that many and the two
//! machines are compared.  On top of the value comparison, the rename unit's
//! structural invariants (free-list conservation, front-map coherence,
//! scheme-side invariants) and the checkpoint-coherence probe run every
//! cycle, so a violation is reported at the first cycle it is observable —
//! not thousands of cycles later when a corrupted value finally reaches a
//! store.
//!
//! The checks, in the order they can fire:
//!
//! 1. **Panic** — the simulator panicked (e.g. the free list rejecting a
//!    double release).  Caught with `catch_unwind` and converted into a
//!    violation so the fuzzer can minimize it like any other failure.
//! 2. **Invariant** — [`RenameUnit::check_invariants`] failed: a register
//!    leaked or was double-freed, the front map names a freed register
//!    without a stale flag, occupancy counters drifted, or the scheme's own
//!    `check_invariants` rejected its state.
//! 3. **CheckpointCoherence** — a branch checkpoint holds a mapping to a
//!    freed register without the skip-release flag that makes restoring it
//!    safe ([`RenameUnit::check_checkpoint_coherence`]).
//! 4. **CommitStream** — the simulator committed more instructions than the
//!    architectural execution contains (it ran past the halt, or committed a
//!    squashed path).
//! 5. **Register/Memory lockstep** — a committed architectural register (not
//!    flagged dead-value-unreliable) or a memory word touched this step
//!    differs between simulator and emulator.
//! 6. **Hang** — the cycle budget ran out before the program halted
//!    (deadlocked free list, livelocked recovery, ...).
//! 7. **FinalState / OracleViolations** — after halt, the full-state
//!    [`verify_against_emulator`] pass and the commit-time oracle check
//!    (`stats.oracle_violations`, which compares every committed destination
//!    value against the emulator inside the simulator) must both be clean.

use earlyreg_core::{registry, ReleasePolicy, ReleaseScheme, SchemeSeed};
use earlyreg_isa::{ArchReg, Emulator, Program, RegClass};
use earlyreg_sim::{verify_against_emulator, MachineConfig, Simulator, VerifyOutcome};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// How one conformance check is configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Release policy under test (ignored when a scheme override is
    /// injected, except as the registry id recorded in reports).
    pub policy: ReleasePolicy,
    /// Integer physical register file size (kept tight so free-list pressure
    /// is real).
    pub phys_int: usize,
    /// FP physical register file size.
    pub phys_fp: usize,
    /// Inject a precise exception every N committed instructions.
    pub exception_interval: Option<u64>,
    /// Cycle budget before the run counts as hung.
    pub max_cycles: u64,
}

impl CheckConfig {
    /// Default stress configuration for `policy`: small machine, 40+40
    /// physical registers, no exceptions, generous cycle budget.
    pub fn new(policy: ReleasePolicy) -> Self {
        CheckConfig {
            policy,
            phys_int: 40,
            phys_fp: 40,
            exception_interval: None,
            max_cycles: 2_000_000,
        }
    }

    fn machine(&self) -> MachineConfig {
        let mut cfg = MachineConfig::small(self.policy, self.phys_int, self.phys_fp);
        cfg.exceptions.interval = self.exception_interval;
        cfg
    }
}

/// A conformance violation: the first point where the simulator's behaviour
/// under the scheme is provably wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The simulator panicked (free-list double release, hook assertion, ...).
    Panic(String),
    /// [`RenameUnit::check_invariants`] failed at `cycle`.
    Invariant { cycle: u64, detail: String },
    /// [`RenameUnit::check_checkpoint_coherence`] failed at `cycle`.
    CheckpointCoherence { cycle: u64, detail: String },
    /// The simulator committed past the architectural execution.
    CommitStream { cycle: u64, committed: u64 },
    /// A committed architectural register differs from the emulator.
    LockstepRegister {
        cycle: u64,
        committed: u64,
        reg: ArchReg,
        sim: u64,
        emu: u64,
    },
    /// A memory word touched by a committed access differs from the emulator.
    LockstepMemory {
        cycle: u64,
        committed: u64,
        addr: usize,
        sim: u64,
        emu: u64,
    },
    /// The cycle budget ran out before the program halted.
    Hang { cycles: u64, committed: u64 },
    /// The final full-state comparison failed after halt.
    FinalState(String),
    /// The simulator's commit-time oracle check flagged wrong values.
    OracleViolations(u64),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Panic(msg) => write!(f, "simulator panicked: {msg}"),
            Violation::Invariant { cycle, detail } => {
                write!(f, "invariant violation at cycle {cycle}: {detail}")
            }
            Violation::CheckpointCoherence { cycle, detail } => {
                write!(f, "checkpoint incoherence at cycle {cycle}: {detail}")
            }
            Violation::CommitStream { cycle, committed } => write!(
                f,
                "commit stream ran past the architectural execution at cycle {cycle} \
                 (committed {committed})"
            ),
            Violation::LockstepRegister {
                cycle,
                committed,
                reg,
                sim,
                emu,
            } => write!(
                f,
                "register {reg} diverged at cycle {cycle} (committed {committed}): \
                 simulator {sim:#x}, emulator {emu:#x}"
            ),
            Violation::LockstepMemory {
                cycle,
                committed,
                addr,
                sim,
                emu,
            } => write!(
                f,
                "memory word {addr} diverged at cycle {cycle} (committed {committed}): \
                 simulator {sim:#x}, emulator {emu:#x}"
            ),
            Violation::Hang { cycles, committed } => write!(
                f,
                "no halt within {cycles} cycles ({committed} instructions committed)"
            ),
            Violation::FinalState(desc) => write!(f, "final state mismatch: {desc}"),
            Violation::OracleViolations(n) => {
                write!(
                    f,
                    "{n} commit-time oracle violations (wrong committed values)"
                )
            }
        }
    }
}

/// Summary of a clean check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckReport {
    /// Simulated cycles until halt.
    pub cycles: u64,
    /// Committed (architectural) instructions.
    pub committed: u64,
}

/// Check `program` under `config`'s registry policy.  `Ok` carries run
/// statistics; `Err` carries the first violation observed.
pub fn check_program(
    config: &CheckConfig,
    program: &Arc<Program>,
) -> Result<CheckReport, Violation> {
    check_with_seed(config, program, SchemeSeed::default())
}

/// Check `program` with an injected scheme replacing the registry-built one.
/// This is how deliberately-broken mutants are proven catchable; the scheme
/// runs against the policy-independent engine exactly like a real one.
pub fn check_with_scheme(
    config: &CheckConfig,
    program: &Arc<Program>,
    scheme: Box<dyn ReleaseScheme>,
) -> Result<CheckReport, Violation> {
    check_with_seed(
        config,
        program,
        SchemeSeed {
            kill_plan: None,
            scheme_override: Some(scheme),
        },
    )
}

fn check_with_seed(
    config: &CheckConfig,
    program: &Arc<Program>,
    seed: SchemeSeed,
) -> Result<CheckReport, Violation> {
    let machine = config.machine();
    let program = Arc::clone(program);
    // The simulator is not unwind-unsafe in any way that matters here: on
    // panic the whole machine state is dropped and the failure is reported,
    // never reused.
    catch_unwind(AssertUnwindSafe(move || {
        run_lockstep(machine, config.max_cycles, &program, seed)
    }))
    .unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(Violation::Panic(msg))
    })
}

fn run_lockstep(
    machine: MachineConfig,
    max_cycles: u64,
    program: &Arc<Program>,
    seed: SchemeSeed,
) -> Result<CheckReport, Violation> {
    let mut sim = Simulator::with_scheme_seed(machine, Arc::clone(program), seed);
    let mut emu = Emulator::new(program);
    let mut emu_committed: u64 = 0;
    // Memory words touched by the instructions committed this cycle.
    let mut touched: Vec<usize> = Vec::new();

    while !sim.halted() {
        if sim.cycle() >= max_cycles {
            return Err(Violation::Hang {
                cycles: sim.cycle(),
                committed: sim.stats().committed,
            });
        }
        sim.step();
        let cycle = sim.cycle();

        let rename = sim.rename_unit();
        if let Err(detail) = rename.check_invariants() {
            return Err(Violation::Invariant { cycle, detail });
        }
        if let Err(detail) = rename.check_checkpoint_coherence() {
            return Err(Violation::CheckpointCoherence { cycle, detail });
        }

        let committed = sim.stats().committed;
        if committed == emu_committed {
            continue;
        }
        touched.clear();
        while emu_committed < committed {
            match emu.step() {
                Some(outcome) => {
                    if let Some(addr) = outcome.mem_addr {
                        touched.push(addr);
                    }
                }
                None => {
                    return Err(Violation::CommitStream { cycle, committed });
                }
            }
            emu_committed += 1;
        }
        // Committed architectural state must agree wherever the value is
        // reliable (early release may legitimately discard dead values; the
        // engine tracks exactly which logical registers those are).
        for class in RegClass::ALL {
            for index in 0..class.num_logical() {
                let reg = ArchReg::new(class, index);
                if sim.arch_value_unreliable(reg) {
                    continue;
                }
                let sim_bits = sim.arch_reg_bits(reg);
                let emu_bits = emu.state.read_raw(reg);
                if sim_bits != emu_bits {
                    return Err(Violation::LockstepRegister {
                        cycle,
                        committed,
                        reg,
                        sim: sim_bits,
                        emu: emu_bits,
                    });
                }
            }
        }
        // Memory is never dead-value-exempt: every word a committed access
        // touched must already agree.
        for &addr in &touched {
            let sim_word = sim.committed_memory()[addr];
            let emu_word = emu.state.memory[addr];
            if sim_word != emu_word {
                return Err(Violation::LockstepMemory {
                    cycle,
                    committed,
                    addr,
                    sim: sim_word,
                    emu: emu_word,
                });
            }
        }
    }

    let stats = sim.stats();
    if stats.oracle_violations > 0 {
        return Err(Violation::OracleViolations(stats.oracle_violations));
    }
    if let VerifyOutcome::Mismatch { description } = verify_against_emulator(&sim, program) {
        return Err(Violation::FinalState(description));
    }
    if let Err(detail) = sim.rename_unit().check_invariants() {
        return Err(Violation::Invariant {
            cycle: sim.cycle(),
            detail,
        });
    }
    Ok(CheckReport {
        cycles: stats.cycles,
        committed: stats.committed,
    })
}

/// Check `program` under **every** registered policy, returning the per-policy
/// results in registry order.
pub fn check_all_policies(
    base: &CheckConfig,
    program: &Arc<Program>,
) -> Vec<(ReleasePolicy, Result<CheckReport, Violation>)> {
    registry::registered()
        .map(|policy| {
            let config = CheckConfig { policy, ..*base };
            (policy, check_program(&config, program))
        })
        .collect()
}

/// One lane of the lane-stepped lockstep check: a simulator shadowed by its
/// own architectural emulator.
struct LaneCheck<'p> {
    config: CheckConfig,
    sim: Simulator,
    emu: Emulator<'p>,
    emu_committed: u64,
    result: Option<Result<CheckReport, Violation>>,
}

/// The same differential check as [`check_program`], but **lane-stepped**:
/// every `(config, seed)` pair becomes one lane, and all lanes advance
/// through the shared program in chunked round-robin — exactly the stepping
/// discipline of the sweep path's `LaneGroup` — each shadowed by its own
/// emulator.  Every structural and lockstep check runs at round boundaries,
/// so state leaking from one lane into another (a scheme smuggling shared
/// state across clones, a mis-reset pooled buffer) is caught by the same
/// [`Violation`] variants as sequential checking, in whichever lane the
/// contamination first becomes architecturally visible.
pub fn check_lane_stepped(
    lanes: Vec<(CheckConfig, SchemeSeed)>,
    program: &Arc<Program>,
    chunk: u64,
) -> Vec<Result<CheckReport, Violation>> {
    assert!(chunk > 0, "lane chunk must be positive");
    let mut group: Vec<LaneCheck> = lanes
        .into_iter()
        .map(|(config, seed)| LaneCheck {
            config,
            sim: Simulator::with_scheme_seed(config.machine(), Arc::clone(program), seed),
            emu: Emulator::new(program),
            emu_committed: 0,
            result: None,
        })
        .collect();

    loop {
        let mut live = false;
        for lane in &mut group {
            if lane.result.is_some() {
                continue;
            }
            live = true;
            let step = catch_unwind(AssertUnwindSafe(|| step_lane_check(lane, program, chunk)));
            lane.result = match step {
                Ok(resolved) => resolved,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Some(Err(Violation::Panic(msg)))
                }
            };
        }
        if !live {
            break;
        }
    }
    group
        .into_iter()
        .map(|lane| lane.result.expect("every lane resolved"))
        .collect()
}

/// Advance one lane by `chunk` cycles and run the full check battery at the
/// round boundary.  Returns `Some` once the lane's fate is decided.
fn step_lane_check(
    lane: &mut LaneCheck<'_>,
    program: &Arc<Program>,
    chunk: u64,
) -> Option<Result<CheckReport, Violation>> {
    let done = lane
        .sim
        .run_slice(earlyreg_sim::RunLimits::default(), chunk);
    let cycle = lane.sim.cycle();

    let rename = lane.sim.rename_unit();
    if let Err(detail) = rename.check_invariants() {
        return Some(Err(Violation::Invariant { cycle, detail }));
    }
    if let Err(detail) = rename.check_checkpoint_coherence() {
        return Some(Err(Violation::CheckpointCoherence { cycle, detail }));
    }

    let committed = lane.sim.stats().committed;
    let mut touched: Vec<usize> = Vec::new();
    while lane.emu_committed < committed {
        match lane.emu.step() {
            Some(outcome) => {
                if let Some(addr) = outcome.mem_addr {
                    touched.push(addr);
                }
            }
            None => return Some(Err(Violation::CommitStream { cycle, committed })),
        }
        lane.emu_committed += 1;
    }
    for class in RegClass::ALL {
        for index in 0..class.num_logical() {
            let reg = ArchReg::new(class, index);
            if lane.sim.arch_value_unreliable(reg) {
                continue;
            }
            let sim_bits = lane.sim.arch_reg_bits(reg);
            let emu_bits = lane.emu.state.read_raw(reg);
            if sim_bits != emu_bits {
                return Some(Err(Violation::LockstepRegister {
                    cycle,
                    committed,
                    reg,
                    sim: sim_bits,
                    emu: emu_bits,
                }));
            }
        }
    }
    for &addr in &touched {
        let sim_word = lane.sim.committed_memory()[addr];
        let emu_word = lane.emu.state.memory[addr];
        if sim_word != emu_word {
            return Some(Err(Violation::LockstepMemory {
                cycle,
                committed,
                addr,
                sim: sim_word,
                emu: emu_word,
            }));
        }
    }

    if done {
        let stats = lane.sim.stats();
        if stats.oracle_violations > 0 {
            return Some(Err(Violation::OracleViolations(stats.oracle_violations)));
        }
        if let VerifyOutcome::Mismatch { description } = verify_against_emulator(&lane.sim, program)
        {
            return Some(Err(Violation::FinalState(description)));
        }
        return Some(Ok(CheckReport {
            cycles: stats.cycles,
            committed: stats.committed,
        }));
    }
    if cycle >= lane.config.max_cycles {
        return Some(Err(Violation::Hang {
            cycles: cycle,
            committed,
        }));
    }
    None
}

/// Lane-stepped variant of [`check_all_policies`]: one lane per registered
/// policy, stepped together over the shared program.
pub fn check_lanes_all_policies(
    base: &CheckConfig,
    program: &Arc<Program>,
    chunk: u64,
) -> Vec<(ReleasePolicy, Result<CheckReport, Violation>)> {
    let policies: Vec<ReleasePolicy> = registry::registered().collect();
    let lanes = policies
        .iter()
        .map(|&policy| (CheckConfig { policy, ..*base }, SchemeSeed::default()))
        .collect();
    policies
        .into_iter()
        .zip(check_lane_stepped(lanes, program, chunk))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{compile, plan_blocks, HazardConfig};

    #[test]
    fn all_policies_pass_a_sample_program() {
        let cfg = HazardConfig::from_case_seed(42);
        let program = Arc::new(compile(&cfg, &plan_blocks(&cfg)));
        let base = CheckConfig::new(ReleasePolicy::Conventional);
        for (policy, result) in check_all_policies(&base, &program) {
            let report = result.unwrap_or_else(|v| panic!("policy {policy} violated: {v}"));
            assert!(report.committed > 0);
        }
    }

    #[test]
    fn exception_injection_stays_conformant() {
        let cfg = HazardConfig::from_case_seed(11);
        let program = Arc::new(compile(&cfg, &plan_blocks(&cfg)));
        let base = CheckConfig {
            exception_interval: Some(97),
            ..CheckConfig::new(ReleasePolicy::Extended)
        };
        for (policy, result) in check_all_policies(&base, &program) {
            result.unwrap_or_else(|v| panic!("policy {policy} violated under exceptions: {v}"));
        }
    }

    #[test]
    fn lane_stepped_check_passes_all_policies() {
        let cfg = HazardConfig::from_case_seed(42);
        let program = Arc::new(compile(&cfg, &plan_blocks(&cfg)));
        let base = CheckConfig::new(ReleasePolicy::Conventional);
        let sequential = check_all_policies(&base, &program);
        for ((policy, result), (_, seq)) in check_lanes_all_policies(&base, &program, 64)
            .into_iter()
            .zip(sequential)
        {
            let report =
                result.unwrap_or_else(|v| panic!("policy {policy} violated lane-stepped: {v}"));
            assert_eq!(
                Ok(report),
                seq.map_err(|v| v.to_string()),
                "{policy}: lane-stepped report must match sequential"
            );
        }
    }

    /// The lane-stepped harness must catch state leaking *between* lanes:
    /// sibling clones of [`CrossLaneReleaseMutant`] are individually
    /// conformant when each lane runs to completion alone, but stepping two
    /// of them in lockstep rounds contaminates whichever lane resumes after
    /// the other planned a destination — and the existing violation checks
    /// must fire.
    #[test]
    fn cross_lane_contamination_mutant_is_caught_when_lane_stepped() {
        use crate::mutant::CrossLaneReleaseMutant;
        use earlyreg_core::SchemeSeed;

        let cfg = HazardConfig::from_case_seed(7);
        let program = Arc::new(compile(&cfg, &plan_blocks(&cfg)));
        let check = CheckConfig::new(ReleasePolicy::Conventional);

        // Sequential control: one clone family, each lane run to completion
        // before the next starts — conformant.
        let family = CrossLaneReleaseMutant::new();
        for _ in 0..2 {
            crate::harness::check_with_scheme(&check, &program, family.box_clone())
                .unwrap_or_else(|v| panic!("sequential sibling clones must be clean: {v}"));
        }

        // Lane-stepped: the same family across two lockstep lanes must be
        // caught by an existing violation check.
        let family = CrossLaneReleaseMutant::new();
        let lanes = (0..2)
            .map(|_| {
                (
                    check,
                    SchemeSeed {
                        kill_plan: None,
                        scheme_override: Some(family.box_clone()),
                    },
                )
            })
            .collect();
        let results = check_lane_stepped(lanes, &program, 64);
        assert!(
            results.iter().any(|r| r.is_err()),
            "cross-lane contamination survived the lane-stepped harness: {results:?}"
        );
    }
}
