//! Shared property-test configuration.
//!
//! Every proptest suite in the workspace sizes itself through [`cases`] so
//! the `PROPTEST_CASES` budget knob behaves identically everywhere: the
//! suite declares its *full-depth* case count here, and the environment
//! variable (set to 64 in CI, or lower for a quick local run) can only
//! lower it — the clamping itself lives in
//! `ProptestConfig::effective_cases`, so there is exactly one interpretation
//! of the variable in the tree.

use proptest::test_runner::ProptestConfig;

/// Shrink-budget default shared by every suite.  The vendored proptest does
/// not shrink, but the field is honoured so the suites keep working
/// unchanged against the real crate.
pub const MAX_SHRINK_ITERS: u32 = 200;

/// Build the workspace-standard property-test configuration with `n`
/// full-depth cases.  `PROPTEST_CASES` (when set) caps the count at run
/// time; it never raises it.
pub fn cases(n: u32) -> ProptestConfig {
    ProptestConfig {
        cases: n,
        max_shrink_iters: MAX_SHRINK_ITERS,
        ..ProptestConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_sets_count_and_shrink_budget() {
        let config = cases(24);
        assert_eq!(config.cases, 24);
        assert_eq!(config.max_shrink_iters, MAX_SHRINK_ITERS);
        assert!(!config.fork);
    }
}
