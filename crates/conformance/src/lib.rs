//! # earlyreg-conformance — differential scheme-conformance fuzzing
//!
//! PR 5 made release schemes pluggable; this crate makes them *provable*.
//! A registered [`ReleaseScheme`](earlyreg_core::ReleaseScheme) must be more
//! than plausible — it must preserve architectural semantics under the full
//! hazard protocol: anti-dependence races between a last use and its
//! redefinition, map rollbacks over branch-shadowed redefinitions, precise
//! exceptions that squash the whole window, free-list conservation under
//! pressure.  The crate turns that contract into an executable check:
//!
//! * [`generator`] — random hazard-stress programs, described by a
//!   deterministic `(HazardConfig, Vec<HazardBlock>)` recipe.
//! * [`corpus`] — the second corpus: every assembled kernel from the
//!   workload registry, checked through the same lockstep harness.
//! * [`harness`] — per-cycle lockstep of the cycle-level simulator against
//!   the architectural emulator, plus the rename unit's structural and
//!   checkpoint-coherence probes, producing a typed [`harness::Violation`].
//! * [`minimize`] — ddmin-style shrinking of failing recipes to minimal
//!   reproducers.
//! * [`fixture`] — minimized reproducers as JSON regression fixtures,
//!   replayed in CI against every registered policy.
//! * [`mutant`] — deliberately-broken schemes (injected via
//!   `SchemeSeed::scheme_override`, never registered) proving the harness
//!   actually catches unsafe release behaviour.
//! * [`test_support`] — the workspace-wide `PROPTEST_CASES` helper shared by
//!   every property-test suite.
//!
//! The `earlyreg-fuzz` binary drives the whole loop from the command line;
//! `docs/FUZZING.md` documents the methodology and
//! `docs/POLICIES.md` § "Proving a new scheme" the workflow for new
//! policies.

pub mod corpus;
pub mod fixture;
pub mod generator;
pub mod harness;
pub mod minimize;
pub mod mutant;
pub mod test_support;

pub use corpus::asm_corpus;
pub use fixture::{load_dir, Fixture};
pub use generator::{compile, plan_blocks, HazardBlock, HazardConfig};
pub use harness::{
    check_all_policies, check_lane_stepped, check_lanes_all_policies, check_program,
    check_with_scheme, CheckConfig, CheckReport, Violation,
};
pub use minimize::{minimize, Minimized};
pub use mutant::{CrossLaneReleaseMutant, ReleaseAtRenameMutant};
