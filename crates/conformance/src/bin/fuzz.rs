//! `earlyreg-fuzz` — differential scheme-conformance fuzzer.
//!
//! Generates random hazard-stress programs and checks every registered
//! release policy against the architectural emulator in lockstep.  On a
//! violation, the failing recipe is minimized and written out as a JSON
//! regression fixture.
//!
//! ```text
//! earlyreg-fuzz [--seed N] [--programs N] [--policies a,b,...]
//!               [--exception-interval N] [--fixture-out DIR]
//!               [--mutant] [--replay PATH] [--asm-corpus [--reps N]]
//!               [--lanes]
//! ```
//!
//! `--asm-corpus` checks the second corpus instead of fuzzing: every
//! assembled kernel registered in the workload registry (`--reps` outer
//! iterations each) under every selected policy.  Kernels are not
//! recipe-generated, so violations are reported directly without the
//! minimize/fixture path.
//! `--replay PATH` re-checks one fixture file (or every `*.json` in a
//! directory) against all registered policies instead of fuzzing.
//! `--mutant` injects the release-at-rename mutant instead of the registry
//! scheme — the run *must* find violations (exit 0 iff it did), which makes
//! the fuzzer's own detection power testable from CI.
//! `--lanes` runs every check **lane-stepped**: all selected policies step
//! through each program together in chunked round-robin (the sweep engine's
//! stepping discipline), each shadowed by its own emulator.  Combined with
//! `--mutant`, the injected scheme is the cross-lane contamination mutant —
//! individually conformant clones that go rogue when their calls interleave
//! across lanes — which the lane-stepped harness must catch.

use earlyreg_conformance::{
    asm_corpus, check_lane_stepped, check_program, check_with_scheme, load_dir, minimize,
    plan_blocks, CheckConfig, CrossLaneReleaseMutant, Fixture, HazardConfig, ReleaseAtRenameMutant,
};
use earlyreg_core::{registry, ReleasePolicy, ReleaseScheme, SchemeSeed};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Lockstep chunk for `--lanes` checks: small enough that lanes interleave
/// many times per program.
const LANE_CHUNK: u64 = 256;

struct Options {
    seed: u64,
    programs: u64,
    policies: Vec<ReleasePolicy>,
    exception_interval: Option<u64>,
    fixture_out: PathBuf,
    mutant: bool,
    replay: Option<PathBuf>,
    asm_corpus: bool,
    reps: u64,
    lanes: bool,
}

const USAGE: &str = "usage: earlyreg-fuzz [--seed N] [--programs N] [--policies a,b,...] \
                     [--exception-interval N] [--fixture-out DIR] [--mutant] [--replay PATH] \
                     [--asm-corpus [--reps N]] [--lanes]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 0xC0FFEE,
        programs: 500,
        policies: registry::registered().collect(),
        exception_interval: None,
        fixture_out: PathBuf::from("."),
        mutant: false,
        replay: None,
        asm_corpus: false,
        reps: 1,
        lanes: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = parse_num(&value("--seed")?)?,
            "--programs" => opts.programs = parse_num(&value("--programs")?)?,
            "--policies" => {
                opts.policies = value("--policies")?
                    .split(',')
                    .map(|id| registry::parse(id.trim()))
                    .collect::<Result<_, _>>()?;
            }
            "--exception-interval" => {
                opts.exception_interval = Some(parse_num(&value("--exception-interval")?)?);
            }
            "--fixture-out" => opts.fixture_out = PathBuf::from(value("--fixture-out")?),
            "--mutant" => opts.mutant = true,
            "--replay" => opts.replay = Some(PathBuf::from(value("--replay")?)),
            "--asm-corpus" => opts.asm_corpus = true,
            "--reps" => opts.reps = parse_num(&value("--reps")?)?,
            "--lanes" => opts.lanes = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if opts.policies.is_empty() {
        return Err("at least one policy is required".into());
    }
    Ok(opts)
}

fn parse_num(text: &str) -> Result<u64, String> {
    text.parse::<u64>()
        .map_err(|_| format!("'{text}' is not a non-negative integer"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("earlyreg-fuzz: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.replay {
        return replay(path);
    }
    if opts.mutant {
        return fuzz_mutant(&opts);
    }
    if opts.asm_corpus {
        return check_asm_corpus(&opts);
    }
    fuzz(&opts)
}

/// Check the assembled-kernel corpus: every registered asm workload under
/// every selected policy.  These programs are fixed (not recipe-generated),
/// so a violation is reported directly — there is nothing to minimize.
fn check_asm_corpus(opts: &Options) -> ExitCode {
    let corpus = asm_corpus(opts.reps);
    let ids: Vec<&str> = opts.policies.iter().map(|p| p.descriptor().id).collect();
    println!(
        "asm corpus: {} kernels x {} policies [{}] ({} reps, exceptions {:?})",
        corpus.len(),
        opts.policies.len(),
        ids.join(", "),
        opts.reps,
        opts.exception_interval,
    );
    let mut failed = false;
    for (id, program) in &corpus {
        for (policy, outcome) in check_selected(opts, program) {
            match outcome {
                Ok(report) => println!(
                    "  {id:<10} {:<14} ok ({} instructions, {} cycles)",
                    policy.descriptor().id,
                    report.committed,
                    report.cycles
                ),
                Err(violation) => {
                    eprintln!(
                        "  {id:<10} {:<14} VIOLATION: {violation}",
                        policy.descriptor().id
                    );
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("asm corpus clean");
        ExitCode::SUCCESS
    }
}

/// Fuzz every selected policy; exit non-zero (after minimizing and writing a
/// fixture) on the first violation.
fn fuzz(opts: &Options) -> ExitCode {
    let ids: Vec<&str> = opts.policies.iter().map(|p| p.descriptor().id).collect();
    println!(
        "fuzzing {} programs x {} policies [{}] (seed {:#x}, exceptions {:?})",
        opts.programs,
        opts.policies.len(),
        ids.join(", "),
        opts.seed,
        opts.exception_interval,
    );
    let mut checks: u64 = 0;
    for case in 0..opts.programs {
        let case_seed = opts
            .seed
            .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let hazard = HazardConfig::from_case_seed(case_seed);
        let blocks = plan_blocks(&hazard);
        let program = Arc::new(earlyreg_conformance::compile(&hazard, &blocks));
        for (policy, outcome) in check_selected(opts, &program) {
            let check = base_config(opts, policy);
            checks += 1;
            if let Err(violation) = outcome {
                eprintln!(
                    "VIOLATION: policy {id} on case {case} (case seed {case_seed:#x}): {violation}",
                    id = policy.descriptor().id
                );
                let fixture = if opts.lanes {
                    minimize_lanes_to_fixture(
                        opts,
                        &check,
                        hazard,
                        blocks.clone(),
                        violation,
                        format!(
                            "fuzz case {case} (lane-stepped), policy {}",
                            policy.descriptor().id
                        ),
                    )
                } else {
                    minimize_to_fixture(
                        &check,
                        hazard,
                        blocks.clone(),
                        violation,
                        format!("fuzz case {case}, policy {}", policy.descriptor().id),
                    )
                };
                let path = opts.fixture_out.join(format!(
                    "violation-{}-{case_seed:016x}.json",
                    policy.descriptor().id
                ));
                match fixture.save(&path) {
                    Ok(()) => eprintln!("minimized fixture written to {}", path.display()),
                    Err(e) => eprintln!("could not write fixture: {e}"),
                }
                return ExitCode::FAILURE;
            }
        }
        if (case + 1) % 50 == 0 {
            println!("  {} / {} programs clean", case + 1, opts.programs);
        }
    }
    println!("{checks} checks, zero violations");
    ExitCode::SUCCESS
}

/// Check one program under every selected policy, sequentially or (with
/// `--lanes`) lane-stepped in one lockstep group.
fn check_selected(
    opts: &Options,
    program: &Arc<earlyreg_isa::Program>,
) -> Vec<(
    ReleasePolicy,
    Result<earlyreg_conformance::CheckReport, earlyreg_conformance::Violation>,
)> {
    if opts.lanes {
        let lanes = opts
            .policies
            .iter()
            .map(|&policy| (base_config(opts, policy), SchemeSeed::default()))
            .collect();
        opts.policies
            .iter()
            .copied()
            .zip(check_lane_stepped(lanes, program, LANE_CHUNK))
            .collect()
    } else {
        opts.policies
            .iter()
            .map(|&policy| (policy, check_program(&base_config(opts, policy), program)))
            .collect()
    }
}

/// Self-test mode: inject the release-at-rename mutant; success means the
/// harness caught it.  With `--lanes` the injected scheme is instead the
/// cross-lane contamination mutant, stepped across two lockstep lanes.
fn fuzz_mutant(opts: &Options) -> ExitCode {
    if opts.lanes {
        return fuzz_cross_lane_mutant(opts);
    }
    println!(
        "mutant self-test: release-at-rename over up to {} programs (seed {:#x})",
        opts.programs, opts.seed
    );
    for case in 0..opts.programs {
        let case_seed = opts
            .seed
            .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let hazard = HazardConfig::from_case_seed(case_seed);
        let blocks = plan_blocks(&hazard);
        let program = Arc::new(earlyreg_conformance::compile(&hazard, &blocks));
        let check = base_config(opts, ReleasePolicy::Conventional);
        if let Err(violation) = check_with_scheme(&check, &program, Box::new(ReleaseAtRenameMutant))
        {
            println!("mutant caught on case {case}: {violation}");
            let fixture = minimize_mutant_to_fixture(&check, hazard, blocks, violation);
            println!(
                "minimized to {} blocks, {} iterations: {}",
                fixture.blocks.len(),
                fixture.config.iterations,
                fixture.description
            );
            let path = opts
                .fixture_out
                .join(format!("mutant-release-at-rename-{case_seed:016x}.json"));
            match fixture.save(&path) {
                Ok(()) => println!("minimized fixture written to {}", path.display()),
                Err(e) => eprintln!("could not write fixture: {e}"),
            }
            return ExitCode::SUCCESS;
        }
    }
    eprintln!(
        "mutant SURVIVED {} programs — the harness has lost its teeth",
        opts.programs
    );
    ExitCode::FAILURE
}

/// `--mutant --lanes`: two lanes share a [`CrossLaneReleaseMutant`] clone
/// family — each clone is conformant run alone, but lockstep interleaving
/// contaminates whichever lane resumes after the other, and the lane-stepped
/// harness must catch it through its existing violation checks.
fn fuzz_cross_lane_mutant(opts: &Options) -> ExitCode {
    println!(
        "mutant self-test: cross-lane contamination over up to {} programs (seed {:#x})",
        opts.programs, opts.seed
    );
    for case in 0..opts.programs {
        let case_seed = opts
            .seed
            .wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let hazard = HazardConfig::from_case_seed(case_seed);
        let blocks = plan_blocks(&hazard);
        let program = Arc::new(earlyreg_conformance::compile(&hazard, &blocks));
        let check = base_config(opts, ReleasePolicy::Conventional);
        let family = CrossLaneReleaseMutant::new();
        let lanes = (0..2)
            .map(|_| {
                (
                    check,
                    SchemeSeed {
                        kill_plan: None,
                        scheme_override: Some(family.box_clone()),
                    },
                )
            })
            .collect();
        let results = check_lane_stepped(lanes, &program, LANE_CHUNK);
        if let Some(violation) = results.into_iter().find_map(Result::err) {
            println!("cross-lane mutant caught on case {case}: {violation}");
            return ExitCode::SUCCESS;
        }
    }
    eprintln!(
        "cross-lane mutant SURVIVED {} programs — lane stepping is not being checked",
        opts.programs
    );
    ExitCode::FAILURE
}

fn replay(path: &std::path::Path) -> ExitCode {
    let fixtures = if path.is_dir() {
        match load_dir(path) {
            Ok(list) => list,
            Err(e) => {
                eprintln!("earlyreg-fuzz: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match Fixture::load(path) {
            Ok(f) => vec![(path.to_path_buf(), f)],
            Err(e) => {
                eprintln!("earlyreg-fuzz: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if fixtures.is_empty() {
        eprintln!("earlyreg-fuzz: no fixtures found in {}", path.display());
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for (file, fixture) in &fixtures {
        println!("replaying {} ({})", file.display(), fixture.description);
        for (policy, result) in fixture.replay_all() {
            match result {
                Ok(report) => println!(
                    "  {:<14} ok ({} instructions, {} cycles)",
                    policy.descriptor().id,
                    report.committed,
                    report.cycles
                ),
                Err(violation) => {
                    eprintln!("  {:<14} VIOLATION: {violation}", policy.descriptor().id);
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn base_config(opts: &Options, policy: ReleasePolicy) -> CheckConfig {
    CheckConfig {
        exception_interval: opts.exception_interval,
        ..CheckConfig::new(policy)
    }
}

/// Minimize a lane-stepped failure: the predicate re-runs the whole lane
/// group (a lane-only bug needs the other lanes present to reproduce) and
/// reports the first lane's violation.
fn minimize_lanes_to_fixture(
    opts: &Options,
    check: &CheckConfig,
    hazard: HazardConfig,
    blocks: Vec<earlyreg_conformance::HazardBlock>,
    violation: earlyreg_conformance::Violation,
    provenance: String,
) -> Fixture {
    let check = *check;
    let configs: Vec<CheckConfig> = opts
        .policies
        .iter()
        .map(|&policy| base_config(opts, policy))
        .collect();
    let min = minimize(hazard, blocks, violation, 400, |cfg, bl| {
        let program = Arc::new(earlyreg_conformance::compile(cfg, bl));
        let lanes = configs
            .iter()
            .map(|&config| (config, SchemeSeed::default()))
            .collect();
        check_lane_stepped(lanes, &program, LANE_CHUNK)
            .into_iter()
            .find_map(Result::err)
    });
    Fixture {
        description: format!("{provenance}: {}", min.violation),
        policy: check.policy.descriptor().id.to_string(),
        phys_int: check.phys_int,
        phys_fp: check.phys_fp,
        exception_interval: check.exception_interval,
        config: min.config,
        blocks: min.blocks,
    }
}

fn minimize_to_fixture(
    check: &CheckConfig,
    hazard: HazardConfig,
    blocks: Vec<earlyreg_conformance::HazardBlock>,
    violation: earlyreg_conformance::Violation,
    provenance: String,
) -> Fixture {
    let check = *check;
    let min = minimize(hazard, blocks, violation, 400, |cfg, bl| {
        let program = Arc::new(earlyreg_conformance::compile(cfg, bl));
        check_program(&check, &program).err()
    });
    Fixture {
        description: format!("{provenance}: {}", min.violation),
        policy: check.policy.descriptor().id.to_string(),
        phys_int: check.phys_int,
        phys_fp: check.phys_fp,
        exception_interval: check.exception_interval,
        config: min.config,
        blocks: min.blocks,
    }
}

fn minimize_mutant_to_fixture(
    check: &CheckConfig,
    hazard: HazardConfig,
    blocks: Vec<earlyreg_conformance::HazardBlock>,
    violation: earlyreg_conformance::Violation,
) -> Fixture {
    let check = *check;
    let min = minimize(hazard, blocks, violation, 400, |cfg, bl| {
        let program = Arc::new(earlyreg_conformance::compile(cfg, bl));
        check_with_scheme(&check, &program, Box::new(ReleaseAtRenameMutant)).err()
    });
    Fixture {
        description: format!("release-at-rename mutant: {}", min.violation),
        policy: check.policy.descriptor().id.to_string(),
        phys_int: check.phys_int,
        phys_fp: check.phys_fp,
        exception_interval: check.exception_interval,
        config: min.config,
        blocks: min.blocks,
    }
}
