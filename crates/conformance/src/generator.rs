//! Hazard-stress program generation.
//!
//! The differential harness needs programs that concentrate exactly the
//! situations in which an unsafe release scheme goes wrong: tight
//! anti-dependence chains (the redefinition chases the last use), rotating
//! working sets under register pressure, redefinitions in the shadow of
//! hard-to-predict branches (so mispredictions roll the map back over them),
//! long-latency FP chains that keep consumers in flight for many cycles,
//! never-read definitions (the paper's Figure 4.b own-def kills), memory
//! traffic (so divergence shows up in committed memory, which is never
//! dead-value-exempt), and branch storms that squash windows down to empty.
//!
//! A program is described by a [`HazardConfig`] (the random-generation knobs)
//! which deterministically expands into a list of [`HazardBlock`]s; the same
//! block list always compiles to the same [`Program`].  The failure minimizer
//! works on the block list — dropping blocks and shrinking their parameters —
//! and recompiles after every edit, so a minimized reproducer is still a
//! well-formed, halting program.

use earlyreg_isa::{ArchReg, BranchCond, Opcode, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Words of steering data (power of two, indexed by iteration counter).
const STEER_WORDS: usize = 256;

/// Generation knobs for one random hazard-stress program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HazardConfig {
    /// Seed for block selection, block parameters and the data image.
    pub seed: u64,
    /// Outer-loop iterations (each iteration replays every block).
    pub iterations: u32,
    /// Hazard blocks in the loop body.
    pub blocks: u32,
    /// Integer working-set registers kept live across the loop (2..=8).
    pub int_ws: u32,
    /// FP working-set registers kept live across the loop (0..=8).
    pub fp_ws: u32,
}

impl Default for HazardConfig {
    fn default() -> Self {
        HazardConfig {
            seed: 0,
            iterations: 4,
            blocks: 6,
            int_ws: 4,
            fp_ws: 3,
        }
    }
}

impl HazardConfig {
    /// Clamp every knob into its supported range.
    pub fn clamped(mut self) -> Self {
        self.iterations = self.iterations.clamp(1, 64);
        self.blocks = self.blocks.clamp(1, 16);
        self.int_ws = self.int_ws.clamp(2, 8);
        self.fp_ws = self.fp_ws.min(8);
        self
    }

    /// Derive a random configuration from a single case seed (used by the
    /// fuzzer's outer loop; every knob is a function of the seed alone).
    pub fn from_case_seed(seed: u64) -> Self {
        let mut r = StdRng::seed_from_u64(seed);
        HazardConfig {
            seed: r.next_u64(),
            iterations: r.gen_range(1..12),
            blocks: r.gen_range(2..12),
            int_ws: r.gen_range(2..8),
            fp_ws: r.gen_range(0..7),
        }
        .clamped()
    }
}

/// One hazard motif in the loop body.  Parameters are kept small (`u8`) so
/// the minimizer can shrink them; the meaning of each field is documented on
/// the variant.  Serialized into regression fixtures, so variants follow the
/// vendored serde derive's subset (unit and tuple variants only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HazardBlock {
    /// `AntiDepChain(reg, len)`: `len` self-redefinitions of working
    /// register `reg` — every instruction is both the last use and the
    /// redefinition of the previous version (the `EarlyOnSelf` path).
    AntiDepChain(u8, u8),
    /// `RotatingDefs(rounds)`: each round reads and redefines every integer
    /// working-set register with a rotating source, creating dense WAR
    /// chains whose last use is one instruction before the redefinition.
    RotatingDefs(u8),
    /// `BranchShadow(bit, redefs)`: a data-dependent forward branch (steered
    /// by bit `bit` of the iteration's steering word) whose shadow redefines
    /// `redefs` working registers — a misprediction rolls the map back over
    /// the redefinitions.
    BranchShadow(u8, u8),
    /// `FpChain(len, divides)`: an FP dependence chain, `divides` of its
    /// steps long-latency divides, keeping consumers in flight while the
    /// scheme decides about their source registers.
    FpChain(u8, u8),
    /// `MemTraffic(stores, loads)`: stores of working registers followed by
    /// loads back into them — committed-memory divergence is never excused
    /// as a dead value.
    MemTraffic(u8, u8),
    /// `DeadDefs(count)`: definitions of the scratch register that are never
    /// read before the next definition (Figure 4.b: the version dies at its
    /// own definition's commit).
    DeadDefs(u8),
    /// `BranchStorm(branches)`: back-to-back data-dependent branches with
    /// one-instruction bodies — mispredictions arrive in bursts and can
    /// squash the window down to (almost) empty.
    BranchStorm(u8),
}

/// Expand a configuration into its deterministic block list.
pub fn plan_blocks(config: &HazardConfig) -> Vec<HazardBlock> {
    let cfg = config.clamped();
    let mut r = StdRng::seed_from_u64(cfg.seed ^ 0x48415a41_52440001);
    (0..cfg.blocks)
        .map(|_| match r.gen_range(0..7) {
            0 => HazardBlock::AntiDepChain(r.gen_range(0..8), r.gen_range(1..6)),
            1 => HazardBlock::RotatingDefs(r.gen_range(1..4)),
            2 => HazardBlock::BranchShadow(r.gen_range(0..8), r.gen_range(1..5)),
            3 => HazardBlock::FpChain(r.gen_range(1..7), r.gen_range(0..3)),
            4 => HazardBlock::MemTraffic(r.gen_range(1..4), r.gen_range(0..4)),
            5 => HazardBlock::DeadDefs(r.gen_range(1..5)),
            _ => HazardBlock::BranchStorm(r.gen_range(1..5)),
        })
        .collect()
}

/// Compile a block list into a halting program.  `config` supplies the
/// working-set sizes, the iteration count and the data-image seed; the block
/// list is usually `plan_blocks(&config)` but the minimizer passes edited
/// lists.
pub fn compile(config: &HazardConfig, blocks: &[HazardBlock]) -> Program {
    let cfg = config.clamped();
    let mut b = ProgramBuilder::new("hazard");
    b.set_memory_words(1 << 13);
    let mut r = StdRng::seed_from_u64(cfg.seed ^ 0x48415a41_52440002);

    let ints: Vec<i64> = (0..STEER_WORDS).map(|_| r.gen_range(-500..500)).collect();
    let fps: Vec<f64> = (0..STEER_WORDS).map(|_| r.gen_range(0.5..2.0)).collect();
    // Uniformly random steering words make every data-dependent branch
    // essentially unpredictable to the gshare predictor.
    let steer: Vec<i64> = (0..STEER_WORDS).map(|_| r.gen_range(0..256)).collect();
    let int_base = b.data_i64(&ints);
    let fp_base = b.data_f64(&fps);
    let steer_base = b.data_i64(&steer);
    let out_base = b.data_zeroed(64);

    let i = ArchReg::int(1);
    let ib = ArchReg::int(2);
    let fb = ArchReg::int(3);
    let stb = ArchReg::int(4);
    let ob = ArchReg::int(5);
    let idx = ArchReg::int(6);
    let addr = ArchReg::int(7);
    let steer_v = ArchReg::int(8);
    let tmp = ArchReg::int(9);
    let int_ws: Vec<ArchReg> = (10..10 + cfg.int_ws as usize).map(ArchReg::int).collect();
    let fp_ws: Vec<ArchReg> = (0..cfg.fp_ws as usize).map(ArchReg::fp).collect();
    let fp_tmp = ArchReg::fp(30);
    let fp_one = ArchReg::fp(31);

    b.li(i, i64::from(cfg.iterations));
    b.li(ib, int_base);
    b.li(fb, fp_base);
    b.li(stb, steer_base);
    b.li(ob, out_base);
    for (k, reg) in int_ws.iter().enumerate() {
        b.li(*reg, k as i64 + 1);
    }
    for (k, reg) in fp_ws.iter().enumerate() {
        b.fli(*reg, 1.0 + k as f64 * 0.25);
    }
    b.fli(fp_one, 1.0);
    b.fli(fp_tmp, 0.0);

    let top = b.here();
    b.iopi(Opcode::IAndImm, idx, i, (STEER_WORDS - 1) as i64);
    b.add(addr, stb, idx);
    b.load_int(steer_v, addr, 0);

    for block in blocks {
        emit_block(
            &mut b,
            *block,
            &int_ws,
            &fp_ws,
            Regs {
                ib,
                fb,
                ob,
                idx,
                addr,
                steer_v,
                tmp,
                fp_tmp,
                fp_one,
            },
        );
    }

    b.addi(i, i, -1);
    b.branch(BranchCond::Gt, i, None, top);

    for (k, reg) in int_ws.iter().enumerate() {
        b.store_int(ob, k as i64, *reg);
    }
    for (k, reg) in fp_ws.iter().enumerate() {
        b.store_fp(ob, 16 + k as i64, *reg);
    }
    b.halt();
    b.build().expect("hazard programs must be valid")
}

/// The fixed helper registers `emit_block` works with.
#[derive(Clone, Copy)]
struct Regs {
    ib: ArchReg,
    fb: ArchReg,
    ob: ArchReg,
    idx: ArchReg,
    addr: ArchReg,
    steer_v: ArchReg,
    tmp: ArchReg,
    fp_tmp: ArchReg,
    fp_one: ArchReg,
}

fn emit_block(
    b: &mut ProgramBuilder,
    block: HazardBlock,
    int_ws: &[ArchReg],
    fp_ws: &[ArchReg],
    regs: Regs,
) {
    match block {
        HazardBlock::AntiDepChain(reg, len) => {
            let d = int_ws[reg as usize % int_ws.len()];
            let other = int_ws[(reg as usize + 1) % int_ws.len()];
            for k in 0..len {
                if k % 2 == 0 {
                    b.addi(d, d, 1);
                } else {
                    b.add(d, d, other);
                }
            }
        }
        HazardBlock::RotatingDefs(rounds) => {
            for round in 0..rounds as usize {
                for k in 0..int_ws.len() {
                    let dst = int_ws[k];
                    let src = int_ws[(k + 1 + round) % int_ws.len()];
                    b.add(dst, dst, src);
                }
            }
        }
        HazardBlock::BranchShadow(bit, redefs) => {
            let skip = b.new_label();
            b.iopi(Opcode::IAndImm, regs.tmp, regs.steer_v, 1 << (bit % 8));
            b.branch(BranchCond::Eq, regs.tmp, None, skip);
            for k in 0..redefs as usize {
                let dst = int_ws[k % int_ws.len()];
                let src = int_ws[(k + 1) % int_ws.len()];
                b.add(dst, dst, src);
                if let Some(f) = fp_ws.get(k % fp_ws.len().max(1)) {
                    b.fadd(*f, *f, regs.fp_one);
                }
            }
            b.bind(skip);
        }
        HazardBlock::FpChain(len, divides) => {
            if fp_ws.is_empty() {
                // Degrade to an integer chain so the block still stresses
                // something when the FP working set is empty.
                let d = int_ws[0];
                for _ in 0..len {
                    b.addi(d, d, 3);
                }
                return;
            }
            for k in 0..len as usize {
                let dst = fp_ws[k % fp_ws.len()];
                let src = fp_ws[(k + 1) % fp_ws.len()];
                if (k as u8) < divides {
                    b.fdiv(dst, dst, regs.fp_one);
                } else if k % 2 == 0 {
                    b.fmul(dst, dst, src);
                } else {
                    b.fadd(dst, dst, src);
                }
            }
        }
        HazardBlock::MemTraffic(stores, loads) => {
            for s in 0..stores as usize {
                b.add(regs.addr, regs.ob, regs.idx);
                b.store_int(regs.addr, 32 + s as i64 % 16, int_ws[s % int_ws.len()]);
            }
            for l in 0..loads as usize {
                b.add(regs.addr, regs.ib, regs.idx);
                if !fp_ws.is_empty() && l % 2 == 1 {
                    b.add(regs.addr, regs.fb, regs.idx);
                    b.load_fp(fp_ws[l % fp_ws.len()], regs.addr, l as i64);
                } else {
                    b.load_int(int_ws[l % int_ws.len()], regs.addr, l as i64);
                }
            }
        }
        HazardBlock::DeadDefs(count) => {
            for k in 0..count {
                b.li(regs.tmp, i64::from(k) + 7);
                if k % 2 == 1 {
                    b.fli(regs.fp_tmp, f64::from(k));
                }
            }
        }
        HazardBlock::BranchStorm(branches) => {
            for k in 0..branches {
                let skip = b.new_label();
                b.iopi(Opcode::IAndImm, regs.tmp, regs.steer_v, 1 << (k % 8));
                b.branch(BranchCond::Ne, regs.tmp, None, skip);
                b.addi(
                    int_ws[k as usize % int_ws.len()],
                    int_ws[k as usize % int_ws.len()],
                    1,
                );
                b.bind(skip);
            }
        }
    }
}

impl HazardBlock {
    /// Smaller candidate replacements for this block, for the minimizer:
    /// every numeric parameter halved (dropping to the smallest useful
    /// value), largest reductions first.  Empty when the block is already
    /// minimal.
    pub fn shrunk(&self) -> Vec<HazardBlock> {
        fn halve(v: u8, floor: u8) -> Option<u8> {
            (v > floor).then_some((v / 2).max(floor))
        }
        match *self {
            HazardBlock::AntiDepChain(reg, len) => halve(len, 1)
                .map(|l| HazardBlock::AntiDepChain(reg, l))
                .into_iter()
                .collect(),
            HazardBlock::RotatingDefs(rounds) => halve(rounds, 1)
                .map(HazardBlock::RotatingDefs)
                .into_iter()
                .collect(),
            HazardBlock::BranchShadow(bit, redefs) => halve(redefs, 1)
                .map(|n| HazardBlock::BranchShadow(bit, n))
                .into_iter()
                .collect(),
            HazardBlock::FpChain(len, divides) => {
                let mut out = Vec::new();
                if let Some(l) = halve(len, 1) {
                    out.push(HazardBlock::FpChain(l, divides.min(l)));
                }
                if divides > 0 {
                    out.push(HazardBlock::FpChain(len, 0));
                }
                out
            }
            HazardBlock::MemTraffic(stores, loads) => {
                let mut out = Vec::new();
                if let Some(s) = halve(stores, 1) {
                    out.push(HazardBlock::MemTraffic(s, loads));
                }
                if loads > 0 {
                    out.push(HazardBlock::MemTraffic(stores, 0));
                }
                out
            }
            HazardBlock::DeadDefs(count) => halve(count, 1)
                .map(HazardBlock::DeadDefs)
                .into_iter()
                .collect(),
            HazardBlock::BranchStorm(branches) => halve(branches, 1)
                .map(HazardBlock::BranchStorm)
                .into_iter()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_isa::Emulator;

    #[test]
    fn generated_programs_are_valid_and_halt() {
        for seed in 0..20 {
            let cfg = HazardConfig::from_case_seed(seed);
            let blocks = plan_blocks(&cfg);
            let program = compile(&cfg, &blocks);
            program.validate().expect("hazard program must validate");
            let mut emu = Emulator::new(&program);
            let result = emu.run(1_000_000);
            assert!(result.halted, "seed {seed} did not halt");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = HazardConfig::from_case_seed(7);
        let a = compile(&cfg, &plan_blocks(&cfg));
        let b = compile(&cfg, &plan_blocks(&cfg));
        assert_eq!(a.instrs.len(), b.instrs.len());
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn shrunk_blocks_are_strictly_smaller_or_absent() {
        let cfg = HazardConfig::from_case_seed(3);
        for block in plan_blocks(&cfg) {
            for candidate in block.shrunk() {
                assert_ne!(candidate, block);
            }
        }
    }

    #[test]
    fn every_motif_compiles_alone() {
        let cfg = HazardConfig::default();
        let motifs = [
            HazardBlock::AntiDepChain(0, 4),
            HazardBlock::RotatingDefs(2),
            HazardBlock::BranchShadow(1, 3),
            HazardBlock::FpChain(4, 1),
            HazardBlock::MemTraffic(2, 2),
            HazardBlock::DeadDefs(3),
            HazardBlock::BranchStorm(3),
        ];
        for motif in motifs {
            let program = compile(&cfg, &[motif]);
            program
                .validate()
                .expect("single-motif program must validate");
            let mut emu = Emulator::new(&program);
            assert!(emu.run(200_000).halted);
        }
    }
}
