//! The assembled-kernel corpus: real programs as a second conformance
//! corpus next to the random hazard-stress generator.
//!
//! Every `Asm`-kind workload in the string-keyed workload registry is built
//! at a small rep count and checked through the same lockstep harness the
//! fuzzer uses.  Random programs maximise hazard density; the asm kernels
//! bring the *shapes* random generation rarely produces — nested loop
//! triangles, an explicit in-memory work stack, stencils with negative load
//! offsets — and because the corpus is registry-driven, registering a new
//! kernel automatically adds it to the conformance surface with zero edits
//! here.

use earlyreg_isa::Program;
use earlyreg_workloads::registry;
use earlyreg_workloads::WorkloadKind;
use std::sync::Arc;

/// Every assembled kernel from the workload registry, built at `reps`
/// outer iterations, as `(id, program)` pairs in registry order.
pub fn asm_corpus(reps: u64) -> Vec<(&'static str, Arc<Program>)> {
    registry::descriptors()
        .iter()
        .filter(|d| d.kind() == WorkloadKind::Asm)
        .map(|d| (d.id, Arc::new(d.build_program(reps))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{check_all_policies, CheckConfig};
    use earlyreg_core::ReleasePolicy;

    #[test]
    fn corpus_covers_every_registered_asm_kernel() {
        let corpus = asm_corpus(1);
        assert!(
            corpus.len() >= 5,
            "expected at least the five shipped kernels"
        );
        let ids: Vec<&str> = corpus.iter().map(|(id, _)| *id).collect();
        for id in ["matmul", "quicksort", "sieve", "box_blur", "hazard"] {
            assert!(ids.contains(&id), "missing {id}");
        }
    }

    #[test]
    fn asm_kernels_are_conformant_under_every_policy() {
        // One rep per kernel keeps the per-cycle lockstep affordable in
        // debug builds while still covering every kernel's full control
        // structure (fills, nested loops, stack discipline, counting pass).
        let base = CheckConfig::new(ReleasePolicy::Conventional);
        for (id, program) in asm_corpus(1) {
            for (policy, result) in check_all_policies(&base, &program) {
                let report =
                    result.unwrap_or_else(|v| panic!("{id} under policy {policy} violated: {v}"));
                assert!(report.committed > 0, "{id}: nothing committed");
            }
        }
    }

    #[test]
    fn asm_kernels_stay_conformant_under_exceptions() {
        // Precise-exception squashes interact with early release; drive them
        // through one int and one fp kernel at a non-trivial interval.
        let base = CheckConfig {
            exception_interval: Some(97),
            ..CheckConfig::new(ReleasePolicy::Extended)
        };
        for (id, program) in asm_corpus(1) {
            if id != "quicksort" && id != "box_blur" {
                continue;
            }
            for (policy, result) in check_all_policies(&base, &program) {
                result.unwrap_or_else(|v| {
                    panic!("{id} under policy {policy} with exceptions violated: {v}")
                });
            }
        }
    }
}
