//! Ablation study of the reproduction's design choices:
//!
//! 1. **Register reuse** (Section 3.2): when the last use has already
//!    committed, the mechanisms may either release-and-reallocate or keep the
//!    mapping and reuse the register.  Reuse avoids touching the free list
//!    and is what the paper recommends.
//! 2. **Speculation depth**: the number of unverified branches supported
//!    bounds both the checkpoint stack and the Release Queue; shrinking it
//!    saves hardware but stalls the front end earlier.
//! 3. **Conditional releases** (the Release Queue itself): the extended
//!    mechanism versus the basic mechanism's fallback to conventional release
//!    under speculation — this isolates the contribution of Section 4.

use crate::config::ExperimentOptions;
use crate::metrics::harmonic_mean;
use crate::report::{fmt, fmt_pct, TextTable};
use earlyreg_core::ReleasePolicy;
use earlyreg_sim::{MachineConfig, RunLimits, Simulator};
use earlyreg_workloads::{suite, WorkloadClass};
use serde::Serialize;

/// Register-file size used by the ablation (tight enough for every knob to
/// matter).
pub const ABLATION_REGISTERS: usize = 48;

/// One ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Variant {
    /// Human-readable name.
    pub name: &'static str,
    /// Release policy.
    pub policy: ReleasePolicy,
    /// Whether the reuse optimisation is enabled.
    pub reuse: bool,
    /// Maximum unverified branches (checkpoints / Release Queue depth).
    pub max_pending_branches: usize,
}

/// The variants examined.
pub const VARIANTS: [Variant; 6] = [
    Variant {
        name: "conventional",
        policy: ReleasePolicy::Conventional,
        reuse: true,
        max_pending_branches: 20,
    },
    Variant {
        name: "basic (no reuse)",
        policy: ReleasePolicy::Basic,
        reuse: false,
        max_pending_branches: 20,
    },
    Variant {
        name: "basic",
        policy: ReleasePolicy::Basic,
        reuse: true,
        max_pending_branches: 20,
    },
    Variant {
        name: "extended (no reuse)",
        policy: ReleasePolicy::Extended,
        reuse: false,
        max_pending_branches: 20,
    },
    Variant {
        name: "extended (4 branches)",
        policy: ReleasePolicy::Extended,
        reuse: true,
        max_pending_branches: 4,
    },
    Variant {
        name: "extended",
        policy: ReleasePolicy::Extended,
        reuse: true,
        max_pending_branches: 20,
    },
];

/// Harmonic-mean IPC of each group under each variant.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// (variant, int hmean IPC, fp hmean IPC) triples in [`VARIANTS`] order.
    pub rows: Vec<(Variant, f64, f64)>,
}

/// Run the ablation.
pub fn run(options: &ExperimentOptions) -> AblationResult {
    let workloads = suite(options.scale);
    let mut rows = Vec::new();
    for variant in VARIANTS {
        let mut int_ipcs = Vec::new();
        let mut fp_ipcs = Vec::new();
        for workload in &workloads {
            let mut config =
                MachineConfig::icpp02(variant.policy, ABLATION_REGISTERS, ABLATION_REGISTERS);
            config.rename.reuse_on_committed_lu = variant.reuse;
            config.rename.max_pending_branches = variant.max_pending_branches;
            let mut sim = Simulator::new(config, workload.program.clone());
            let stats = sim.run(RunLimits::instructions(options.max_instructions));
            match workload.class() {
                WorkloadClass::Int => int_ipcs.push(stats.ipc()),
                WorkloadClass::Fp => fp_ipcs.push(stats.ipc()),
            }
        }
        rows.push((variant, harmonic_mean(&int_ipcs), harmonic_mean(&fp_ipcs)));
    }
    AblationResult { rows }
}

/// Render the ablation table.
pub fn render(result: &AblationResult) -> String {
    let baseline = result
        .rows
        .iter()
        .find(|(v, _, _)| v.policy == ReleasePolicy::Conventional)
        .map(|&(_, int, fp)| (int, fp))
        .unwrap_or((1.0, 1.0));
    let mut out = String::new();
    out.push_str(&format!(
        "Ablation — design choices at {ABLATION_REGISTERS}int+{ABLATION_REGISTERS}fp registers\n\n"
    ));
    let mut table = TextTable::new([
        "variant",
        "int Hm IPC",
        "fp Hm IPC",
        "int vs conv",
        "fp vs conv",
    ]);
    for &(variant, int_ipc, fp_ipc) in &result.rows {
        table.row([
            variant.name.to_string(),
            fmt(int_ipc, 3),
            fmt(fp_ipc, 3),
            fmt_pct(int_ipc / baseline.0 - 1.0),
            fmt_pct(fp_ipc / baseline.1 - 1.0),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nnotes: the reuse optimisation mainly saves free-list traffic; a 4-deep speculation \
         window throttles the branchy integer codes; the Release Queue (extended vs basic) is \
         what recovers the early releases lost to unresolved branches\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlyreg_workloads::Scale;

    #[test]
    fn ablation_smoke_run_orders_variants_sensibly() {
        let options = ExperimentOptions {
            scale: Scale::Smoke,
            threads: 2,
            max_instructions: 15_000,
        };
        let result = run(&options);
        assert_eq!(result.rows.len(), VARIANTS.len());
        let ipc_of = |name: &str| {
            result
                .rows
                .iter()
                .find(|(v, _, _)| v.name == name)
                .map(|&(_, int, fp)| (int, fp))
                .unwrap()
        };
        let conv = ipc_of("conventional");
        let extended = ipc_of("extended");
        // The full extended mechanism must not lose to conventional release.
        assert!(extended.0 >= conv.0 * 0.97);
        assert!(extended.1 >= conv.1 * 0.97);
        let text = render(&result);
        assert!(text.contains("extended (4 branches)"));
    }
}
